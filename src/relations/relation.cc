#include "relations/relation.h"

#include <algorithm>

#include "automata/operations.h"

namespace ecrpq {

Nfa ValidConvolutionNfa(const TupleAlphabet& ta) {
  const int arity = ta.arity();
  const uint32_t num_masks = 1u << arity;
  Nfa nfa(ta.num_symbols());
  nfa.AddStates(static_cast<int>(num_masks));
  nfa.SetInitial(0);
  for (uint32_t m = 0; m < num_masks; ++m) {
    nfa.SetAccepting(static_cast<StateId>(m));
  }
  const uint32_t all_pad = num_masks - 1;
  for (Symbol s = 0; s < ta.num_symbols(); ++s) {
    uint32_t pad = ta.PadMask(s);
    if (pad == all_pad) continue;  // the all-⊥ letter never occurs
    for (uint32_t m = 0; m < num_masks; ++m) {
      // Pads are suffix-closed per tape: once a tape pads it stays padded.
      if ((pad & m) == m) {
        nfa.AddTransition(static_cast<StateId>(m), s,
                          static_cast<StateId>(pad));
      }
    }
  }
  return nfa;
}

RegularRelation::RegularRelation(int base_size, int arity, Nfa nfa,
                                 bool trusted_valid)
    : tuple_alphabet_(base_size, arity), nfa_(Nfa(0)) {
  ECRPQ_DCHECK(nfa.num_symbols() == tuple_alphabet_.num_symbols());
  if (trusted_valid) {
    nfa_ = std::move(nfa);
  } else {
    nfa_ = Trim(IntersectNfa(nfa, ValidConvolutionNfa(tuple_alphabet_)));
  }
}

bool RegularRelation::Contains(const std::vector<Word>& strings) const {
  ECRPQ_DCHECK(static_cast<int>(strings.size()) == arity());
  return nfa_.Accepts(Convolve(tuple_alphabet_, strings));
}

bool RegularRelation::IsEmpty() const { return ecrpq::IsEmpty(nfa_); }

bool RegularRelation::IsInfinite() const { return ecrpq::IsInfinite(nfa_); }

std::optional<std::vector<Word>> RegularRelation::AnyMember() const {
  auto word = ShortestWord(nfa_);
  if (!word.has_value()) return std::nullopt;
  auto tuple = Deconvolve(tuple_alphabet_, *word);
  ECRPQ_DCHECK(tuple.ok());
  return std::move(tuple).value();
}

std::vector<std::vector<Word>> RegularRelation::EnumerateMembers(
    int max_count, int max_len) const {
  std::vector<std::vector<Word>> out;
  for (const Word& w : EnumerateWords(nfa_, max_count, max_len)) {
    auto tuple = Deconvolve(tuple_alphabet_, w);
    ECRPQ_DCHECK(tuple.ok());
    out.push_back(std::move(tuple).value());
  }
  return out;
}

Result<RegularRelation> RegularRelation::Intersect(const RegularRelation& r1,
                                                   const RegularRelation& r2) {
  if (r1.base_size() != r2.base_size() || r1.arity() != r2.arity()) {
    return Status::InvalidArgument(
        "Intersect: relations must share base alphabet and arity");
  }
  return RegularRelation(r1.base_size(), r1.arity(),
                         IntersectNfa(r1.nfa_, r2.nfa_),
                         /*trusted_valid=*/true);
}

Result<RegularRelation> RegularRelation::Union(const RegularRelation& r1,
                                               const RegularRelation& r2) {
  if (r1.base_size() != r2.base_size() || r1.arity() != r2.arity()) {
    return Status::InvalidArgument(
        "Union: relations must share base alphabet and arity");
  }
  return RegularRelation(r1.base_size(), r1.arity(),
                         UnionNfa(r1.nfa_, r2.nfa_), /*trusted_valid=*/true);
}

RegularRelation RegularRelation::Complement() const {
  // Complement over (Σ⊥)ⁿ, then restrict to valid convolutions (done by the
  // untrusted constructor).
  return RegularRelation(base_size(), arity(), ComplementNfa(nfa_),
                         /*trusted_valid=*/false);
}

Result<RegularRelation> RegularRelation::PermuteTapes(
    const std::vector<int>& tape_map) const {
  const int new_arity = static_cast<int>(tape_map.size());
  std::vector<bool> used(arity(), false);
  for (int src : tape_map) {
    if (src < 0 || src >= arity()) {
      return Status::InvalidArgument("PermuteTapes: tape index out of range");
    }
    if (used[src]) {
      return Status::InvalidArgument("PermuteTapes: duplicate tape index");
    }
    used[src] = true;
  }
  if (new_arity != arity()) {
    return Status::InvalidArgument(
        "PermuteTapes: must be a permutation (use Project to drop tapes)");
  }
  TupleAlphabet out_ta(base_size(), new_arity);
  Nfa out(out_ta.num_symbols());
  out.AddStates(nfa_.num_states());
  for (StateId s = 0; s < nfa_.num_states(); ++s) {
    if (nfa_.IsInitial(s)) out.SetInitial(s);
    if (nfa_.IsAccepting(s)) out.SetAccepting(s);
    for (const Nfa::Arc& arc : nfa_.ArcsFrom(s)) {
      if (arc.first == kEpsilon) {
        out.AddTransition(s, kEpsilon, arc.second);
        continue;
      }
      TupleLetter src = tuple_alphabet_.Decode(arc.first);
      TupleLetter dst(new_arity);
      for (int t = 0; t < new_arity; ++t) dst[t] = src[tape_map[t]];
      out.AddTransition(s, out_ta.Encode(dst), arc.second);
    }
  }
  return RegularRelation(base_size(), new_arity, std::move(out),
                         /*trusted_valid=*/true);
}

Result<RegularRelation> RegularRelation::Cylindrify(
    int new_arity, const std::vector<int>& positions) const {
  if (static_cast<int>(positions.size()) != arity()) {
    return Status::InvalidArgument(
        "Cylindrify: need one position per existing tape");
  }
  std::vector<bool> used(new_arity, false);
  for (int pos : positions) {
    if (pos < 0 || pos >= new_arity) {
      return Status::InvalidArgument("Cylindrify: position out of range");
    }
    if (used[pos]) {
      return Status::InvalidArgument("Cylindrify: duplicate position");
    }
    used[pos] = true;
  }

  const Nfa base = RemoveEpsilons(nfa_);
  TupleAlphabet out_ta(base_size(), new_arity);
  Nfa out(out_ta.num_symbols());
  // States of `base` plus one "done" state (own tapes exhausted, other
  // tapes may continue).
  out.AddStates(base.num_states() + 1);
  const StateId done = base.num_states();
  out.SetAccepting(done);
  for (StateId s = 0; s < base.num_states(); ++s) {
    if (base.IsInitial(s)) out.SetInitial(s);
    if (base.IsAccepting(s)) {
      out.SetAccepting(s);
      // Own tapes may end while others continue: accepting states flow to
      // `done` on letters that pad every own tape.
      out.AddTransition(s, kEpsilon, done);
    }
  }

  // Enumerate output letters; for each, find the projected own-letter and
  // translate transitions. Output alphabet size is (|Σ|+1)^new_arity; this
  // is only materialized for small arities (callers keep new_arity small).
  TupleAlphabet own_ta(base_size(), arity());
  for (Symbol letter = 0; letter < out_ta.num_symbols(); ++letter) {
    TupleLetter full = out_ta.Decode(letter);
    TupleLetter own(arity());
    bool own_all_pad = true;
    for (int t = 0; t < arity(); ++t) {
      own[t] = full[positions[t]];
      if (own[t] != kPad) own_all_pad = false;
    }
    if (own_all_pad) {
      // Own tapes silent; stay in done.
      out.AddTransition(done, letter, done);
      continue;
    }
    Symbol own_id = own_ta.Encode(own);
    for (StateId s = 0; s < base.num_states(); ++s) {
      for (const Nfa::Arc& arc : base.ArcsFrom(s)) {
        if (arc.first == own_id) out.AddTransition(s, letter, arc.second);
      }
    }
  }
  // Untrusted: restrict to valid convolutions of the larger arity (also
  // prunes pads-then-letters on the free tapes).
  return RegularRelation(base_size(), new_arity, std::move(out),
                         /*trusted_valid=*/false);
}

Result<RegularRelation> RegularRelation::Project(
    const std::vector<int>& tapes) const {
  if (tapes.empty()) {
    return Status::InvalidArgument("Project: need at least one tape");
  }
  std::vector<bool> used(arity(), false);
  for (int t : tapes) {
    if (t < 0 || t >= arity()) {
      return Status::InvalidArgument("Project: tape index out of range");
    }
    if (used[t]) {
      return Status::InvalidArgument("Project: duplicate tape index");
    }
    used[t] = true;
  }
  const int new_arity = static_cast<int>(tapes.size());
  TupleAlphabet out_ta(base_size(), new_arity);
  const Nfa base = RemoveEpsilons(nfa_);
  Nfa out(out_ta.num_symbols());
  out.AddStates(base.num_states());
  for (StateId s = 0; s < base.num_states(); ++s) {
    if (base.IsInitial(s)) out.SetInitial(s);
    if (base.IsAccepting(s)) out.SetAccepting(s);
    for (const Nfa::Arc& arc : base.ArcsFrom(s)) {
      TupleLetter src = tuple_alphabet_.Decode(arc.first);
      TupleLetter dst(new_arity);
      bool all_pad = true;
      for (int t = 0; t < new_arity; ++t) {
        dst[t] = src[tapes[t]];
        if (dst[t] != kPad) all_pad = false;
      }
      if (all_pad) {
        // Dropped tapes were longer: invisible on kept tapes.
        out.AddTransition(s, kEpsilon, arc.second);
      } else {
        out.AddTransition(s, out_ta.Encode(dst), arc.second);
      }
    }
  }
  return RegularRelation(base_size(), new_arity,
                         Trim(RemoveEpsilons(std::move(out))),
                         /*trusted_valid=*/true);
}

Result<RegularRelation> RegularRelation::Join(const RegularRelation& r1,
                                              int tape1,
                                              const RegularRelation& r2,
                                              int tape2) {
  if (r1.base_size() != r2.base_size()) {
    return Status::InvalidArgument("Join: base alphabets differ");
  }
  if (tape1 < 0 || tape1 >= r1.arity() || tape2 < 0 || tape2 >= r2.arity()) {
    return Status::InvalidArgument("Join: tape index out of range");
  }
  // Layout: tapes of r1 as-is, then tapes of r2 except tape2, with r2's
  // tape2 identified with r1's tape1.
  const int total = r1.arity() + r2.arity() - 1;
  std::vector<int> pos1(r1.arity());
  for (int t = 0; t < r1.arity(); ++t) pos1[t] = t;
  std::vector<int> pos2(r2.arity());
  int next = r1.arity();
  for (int t = 0; t < r2.arity(); ++t) {
    pos2[t] = (t == tape2) ? tape1 : next++;
  }
  auto c1 = r1.Cylindrify(total, pos1);
  if (!c1.ok()) return c1.status();
  auto c2 = r2.Cylindrify(total, pos2);
  if (!c2.ok()) return c2.status();
  return Intersect(c1.value(), c2.value());
}

Result<RegularRelation> RegularRelation::Compose(const RegularRelation& r1,
                                                 const RegularRelation& r2) {
  if (r1.arity() != 2 || r2.arity() != 2) {
    return Status::InvalidArgument("Compose: both relations must be binary");
  }
  auto joined = Join(r1, /*tape1=*/1, r2, /*tape2=*/0);
  if (!joined.ok()) return joined.status();
  // Joined layout: (x, y, z); project to (x, z).
  return joined.value().Project({0, 2});
}

RegularRelation RegularRelation::FromLanguage(int base_size,
                                              const Nfa& language_nfa) {
  ECRPQ_DCHECK(language_nfa.num_symbols() == base_size);
  // A unary relation's tuple alphabet has ids 0..|Σ| with |Σ| = ⊥; base ids
  // coincide, so the NFA carries over unchanged (⊥ never appears in words
  // of a unary convolution).
  TupleAlphabet ta(base_size, 1);
  Nfa out(ta.num_symbols());
  const Nfa base = RemoveEpsilons(language_nfa);
  out.AddStates(base.num_states());
  for (StateId s = 0; s < base.num_states(); ++s) {
    if (base.IsInitial(s)) out.SetInitial(s);
    if (base.IsAccepting(s)) out.SetAccepting(s);
    for (const Nfa::Arc& arc : base.ArcsFrom(s)) {
      out.AddTransition(s, arc.first, arc.second);
    }
  }
  return RegularRelation(base_size, 1, std::move(out),
                         /*trusted_valid=*/true);
}

Result<Nfa> RegularRelation::ToLanguageNfa() const {
  if (arity() != 1) {
    return Status::InvalidArgument("ToLanguageNfa: relation is not unary");
  }
  Nfa out(base_size());
  out.AddStates(nfa_.num_states());
  for (StateId s = 0; s < nfa_.num_states(); ++s) {
    if (nfa_.IsInitial(s)) out.SetInitial(s);
    if (nfa_.IsAccepting(s)) out.SetAccepting(s);
    for (const Nfa::Arc& arc : nfa_.ArcsFrom(s)) {
      if (arc.first == kEpsilon) {
        out.AddTransition(s, kEpsilon, arc.second);
        continue;
      }
      Symbol c = tuple_alphabet_.Component(arc.first, 0);
      ECRPQ_DCHECK(c != kPad);  // invariant: no all-pad letters
      out.AddTransition(s, c, arc.second);
    }
  }
  return out;
}

RegularRelation RegularRelation::LengthAbstraction() const {
  // Map every non-pad component to letter 0: the accepted convolutions then
  // depend only on the pad profile, i.e. on component lengths (Lemma 6.6).
  // The result is over the same tuple alphabet; each original transition is
  // replayed with every letter sharing its pad mask.
  Nfa out(tuple_alphabet_.num_symbols());
  const Nfa base = RemoveEpsilons(nfa_);
  out.AddStates(base.num_states());

  // Group output letters by pad mask once.
  std::vector<std::vector<Symbol>> by_mask(1u << arity());
  for (Symbol s = 0; s < tuple_alphabet_.num_symbols(); ++s) {
    by_mask[tuple_alphabet_.PadMask(s)].push_back(s);
  }
  // Transition pad masks seen per (state, target) are deduplicated to avoid
  // quadratic duplicate arcs.
  for (StateId s = 0; s < base.num_states(); ++s) {
    if (base.IsInitial(s)) out.SetInitial(s);
    if (base.IsAccepting(s)) out.SetAccepting(s);
    std::vector<std::pair<uint32_t, StateId>> seen;
    for (const Nfa::Arc& arc : base.ArcsFrom(s)) {
      uint32_t mask = tuple_alphabet_.PadMask(arc.first);
      std::pair<uint32_t, StateId> key{mask, arc.second};
      if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
      seen.push_back(key);
      for (Symbol letter : by_mask[mask]) {
        out.AddTransition(s, letter, arc.second);
      }
    }
  }
  return RegularRelation(base_size(), arity(), std::move(out),
                         /*trusted_valid=*/true);
}

std::string RegularRelation::Describe() const {
  return "RegularRelation(arity=" + std::to_string(arity()) +
         ", base=" + std::to_string(base_size()) +
         ", states=" + std::to_string(nfa_.num_states()) +
         ", transitions=" + std::to_string(nfa_.num_transitions()) + ")";
}

}  // namespace ecrpq
