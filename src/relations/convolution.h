// Convolution encoding of string tuples (Section 2 of the paper).
//
// An n-tuple of strings s̄ = (s1,...,sn) over Σ is encoded as the string [s̄]
// over (Σ⊥)ⁿ whose length is max |si|; shorter strings are padded with ⊥ at
// the end. TupleAlphabet assigns dense ids to the letters of (Σ⊥)ⁿ via
// mixed-radix encoding with ⊥ as digit |Σ|. The all-⊥ letter has an id but
// never occurs in a valid convolution.

#ifndef ECRPQ_RELATIONS_CONVOLUTION_H_
#define ECRPQ_RELATIONS_CONVOLUTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "automata/alphabet.h"
#include "util/status.h"

namespace ecrpq {

/// The padding symbol ⊥ within a tuple component.
constexpr Symbol kPad = -2;

/// A single letter of (Σ⊥)ⁿ: one component per tape (kPad for ⊥).
using TupleLetter = std::vector<Symbol>;

/// Dense ids for the letters of (Σ⊥)ⁿ over a base alphabet of fixed size.
///
/// The base alphabet size is captured at construction; ids are mixed-radix
/// numbers in base (|Σ|+1). Total symbol count is (|Σ|+1)ⁿ, so arity and
/// alphabet size must satisfy (|Σ|+1)ⁿ <= 2³¹ (checked).
class TupleAlphabet {
 public:
  TupleAlphabet(int base_size, int arity);

  int base_size() const { return base_size_; }
  int arity() const { return arity_; }

  /// Total number of tuple-letter ids, including the all-⊥ letter.
  int num_symbols() const { return num_symbols_; }

  /// Encodes a tuple letter (components in [0,|Σ|) or kPad) to its id.
  Symbol Encode(const TupleLetter& letter) const;

  /// Decodes an id back to components.
  TupleLetter Decode(Symbol id) const;

  /// Component `tape` of letter `id` (kPad or a base symbol).
  Symbol Component(Symbol id, int tape) const;

  /// Bitmask of padded tapes of letter `id` (bit t set iff tape t is ⊥).
  uint32_t PadMask(Symbol id) const;

  /// Id of the all-⊥ letter (never part of a valid convolution).
  Symbol AllPadId() const { return num_symbols_ - 1; }

  /// Human-readable rendering, e.g. "(a,⊥)".
  std::string Format(Symbol id, const Alphabet& base) const;

 private:
  int base_size_;
  int arity_;
  int num_symbols_;
};

/// Computes [s̄]: the convolution of `strings` as a word of tuple-letter ids.
Word Convolve(const TupleAlphabet& ta, const std::vector<Word>& strings);

/// Inverse of Convolve. Fails if `word` is not a valid convolution (pad in
/// the middle of a tape, or the all-⊥ letter occurs).
Result<std::vector<Word>> Deconvolve(const TupleAlphabet& ta,
                                     const Word& word);

/// True iff `word` is a valid convolution image.
bool IsValidConvolution(const TupleAlphabet& ta, const Word& word);

}  // namespace ecrpq

#endif  // ECRPQ_RELATIONS_CONVOLUTION_H_
