#include "relations/tuple_regex.h"

#include <cctype>

#include "automata/regex.h"

namespace ecrpq {

namespace {

class TupleRegexParser {
 public:
  TupleRegexParser(std::string_view text, const Alphabet& alphabet,
                   int expected_arity)
      : text_(text), alphabet_(alphabet), arity_(expected_arity) {}

  Result<RegularRelation> Parse() {
    auto expr = ParseUnion();
    if (!expr.ok()) return expr.status();
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(
          "unexpected character at offset " + std::to_string(pos_) +
          " in tuple regex: " + std::string(text_));
    }
    if (arity_ < 0) {
      return Status::InvalidArgument(
          "tuple regex contains no tuple letter; arity cannot be inferred");
    }
    TupleAlphabet ta(alphabet_.size(), arity_);
    Nfa nfa = std::move(expr).value()->ToNfa(ta.num_symbols());
    return RegularRelation(alphabet_.size(), arity_, std::move(nfa),
                           /*trusted_valid=*/false);
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtAtomStart() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    return c == '[' || c == '(' || c == '\\';
  }

  Result<RegexPtr> ParseUnion() {
    auto left = ParseConcat();
    if (!left.ok()) return left;
    RegexPtr out = std::move(left).value();
    SkipSpace();
    while (pos_ < text_.size() && text_[pos_] == '|') {
      ++pos_;
      auto right = ParseConcat();
      if (!right.ok()) return right;
      out = Regex::Union(out, std::move(right).value());
      SkipSpace();
    }
    return out;
  }

  Result<RegexPtr> ParseConcat() {
    std::vector<RegexPtr> parts;
    while (AtAtomStart()) {
      auto factor = ParseFactor();
      if (!factor.ok()) return factor;
      parts.push_back(std::move(factor).value());
    }
    return Regex::ConcatAll(parts);
  }

  Result<RegexPtr> ParseFactor() {
    auto atom = ParseAtom();
    if (!atom.ok()) return atom;
    RegexPtr out = std::move(atom).value();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '*') {
        out = Regex::Star(out);
        ++pos_;
      } else if (c == '+') {
        out = Regex::Plus(out);
        ++pos_;
      } else if (c == '?') {
        out = Regex::Optional(out);
        ++pos_;
      } else {
        break;
      }
    }
    return out;
  }

  // One tuple component: a letter or '_'.
  Result<Symbol> ParseComponent() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("tuple letter ended unexpectedly");
    }
    char c = text_[pos_];
    if (c == '_') {
      ++pos_;
      return kPad;
    }
    if (c == '\'') {
      size_t end = text_.find('\'', pos_ + 1);
      if (end == std::string_view::npos) {
        return Status::InvalidArgument("unterminated quoted label");
      }
      std::string_view label = text_.substr(pos_ + 1, end - pos_ - 1);
      pos_ = end + 1;
      auto sym = alphabet_.Find(label);
      if (!sym.has_value()) {
        return Status::NotFound("letter '" + std::string(label) +
                                "' not in alphabet");
      }
      return *sym;
    }
    if (std::isalnum(static_cast<unsigned char>(c))) {
      ++pos_;
      auto sym = alphabet_.Find(text_.substr(pos_ - 1, 1));
      if (!sym.has_value()) {
        return Status::NotFound(std::string("letter '") + c +
                                "' not in alphabet");
      }
      return *sym;
    }
    return Status::InvalidArgument(
        std::string("unexpected character '") + c + "' in tuple letter");
  }

  Result<RegexPtr> ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("tuple regex ended unexpectedly");
    }
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      auto inner = ParseUnion();
      if (!inner.ok()) return inner;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return Status::InvalidArgument("missing ')' in tuple regex");
      }
      ++pos_;
      return inner;
    }
    if (c == '\\') {
      if (pos_ + 1 >= text_.size()) {
        return Status::InvalidArgument("dangling '\\' in tuple regex");
      }
      char e = text_[pos_ + 1];
      pos_ += 2;
      if (e == 'e') return Regex::Epsilon();
      if (e == '0') return Regex::EmptySet();
      return Status::InvalidArgument(std::string("unknown escape '\\") + e +
                                     "'");
    }
    if (c == '[') {
      ++pos_;
      TupleLetter letter;
      while (true) {
        auto comp = ParseComponent();
        if (!comp.ok()) return comp.status();
        letter.push_back(comp.value());
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      if (pos_ >= text_.size() || text_[pos_] != ']') {
        return Status::InvalidArgument("missing ']' in tuple letter");
      }
      ++pos_;
      if (arity_ < 0) {
        arity_ = static_cast<int>(letter.size());
        tuple_alphabet_.emplace(alphabet_.size(), arity_);
      } else if (static_cast<int>(letter.size()) != arity_) {
        return Status::InvalidArgument(
            "tuple letter arity mismatch: expected " + std::to_string(arity_) +
            ", got " + std::to_string(letter.size()));
      }
      if (!tuple_alphabet_.has_value()) {
        tuple_alphabet_.emplace(alphabet_.size(), arity_);
      }
      bool all_pad = true;
      for (Symbol s : letter) all_pad = all_pad && (s == kPad);
      if (all_pad) {
        return Status::InvalidArgument(
            "the all-⊥ tuple letter cannot occur in a convolution");
      }
      return Regex::Letter(tuple_alphabet_->Encode(letter));
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' in tuple regex");
  }

  std::string_view text_;
  const Alphabet& alphabet_;
  int arity_;
  std::optional<TupleAlphabet> tuple_alphabet_;
  size_t pos_ = 0;
};

}  // namespace

Result<RegularRelation> ParseTupleRegex(std::string_view text,
                                        const Alphabet& alphabet,
                                        int expected_arity) {
  return TupleRegexParser(text, alphabet, expected_arity).Parse();
}

}  // namespace ecrpq
