#include "relations/transducer.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "automata/operations.h"

namespace ecrpq {

StateId Transducer::AddState() { return num_states_++; }

void Transducer::AddRule(StateId from, Word input, Word output, StateId to) {
  ECRPQ_DCHECK(from >= 0 && from < num_states_);
  ECRPQ_DCHECK(to >= 0 && to < num_states_);
  rules_.push_back({from, std::move(input), std::move(output), to});
}

Nfa Transducer::Apply(const Nfa& input_in) const {
  const Nfa input = RemoveEpsilons(input_in);
  // Product states (transducer state, input-NFA state). A rule
  // (q, u, v, q') yields transitions that consume u through the input NFA
  // and emit v into the output NFA, using intermediate chain states.
  Nfa out(base_size_);
  std::map<std::pair<StateId, StateId>, StateId> ids;
  std::queue<std::pair<StateId, StateId>> work;
  auto get = [&](StateId t, StateId n) {
    auto [it, inserted] = ids.emplace(std::make_pair(t, n), 0);
    if (inserted) {
      it->second = out.AddState();
      work.emplace(t, n);
    }
    return it->second;
  };
  for (StateId t : initial_) {
    for (StateId n : input.InitialStates()) {
      out.SetInitial(get(t, n));
    }
  }
  std::set<StateId> accepting_set(accepting_.begin(), accepting_.end());
  while (!work.empty()) {
    auto [t, n] = work.front();
    work.pop();
    StateId from = ids[{t, n}];
    if (accepting_set.count(t) && input.IsAccepting(n)) {
      out.SetAccepting(from);
    }
    for (const Rule& rule : rules_) {
      if (rule.from != t) continue;
      // All input-NFA states reachable from n by reading rule.input.
      std::vector<StateId> current = {n};
      for (Symbol a : rule.input) {
        std::vector<StateId> next;
        for (StateId s : current) {
          for (const Nfa::Arc& arc : input.ArcsFrom(s)) {
            if (arc.first == a) next.push_back(arc.second);
          }
        }
        std::sort(next.begin(), next.end());
        next.erase(std::unique(next.begin(), next.end()), next.end());
        current = std::move(next);
        if (current.empty()) break;
      }
      for (StateId n2 : current) {
        StateId target = get(rule.to, n2);
        // Emit rule.output through chain states.
        if (rule.output.empty()) {
          out.AddTransition(from, kEpsilon, target);
        } else {
          StateId at = from;
          for (size_t i = 0; i < rule.output.size(); ++i) {
            StateId next_state = (i + 1 == rule.output.size())
                                     ? target
                                     : out.AddState();
            out.AddTransition(at, rule.output[i], next_state);
            at = next_state;
          }
        }
      }
    }
  }
  return out;
}

bool Transducer::Contains(const Word& x, const Word& y) const {
  // BFS over (state, i, j): consumed x[0..i) and produced y[0..j).
  std::set<std::tuple<StateId, size_t, size_t>> seen;
  std::queue<std::tuple<StateId, size_t, size_t>> work;
  for (StateId s : initial_) {
    if (seen.insert({s, 0, 0}).second) work.push({s, 0, 0});
  }
  std::set<StateId> accepting_set(accepting_.begin(), accepting_.end());
  while (!work.empty()) {
    auto [s, i, j] = work.front();
    work.pop();
    if (i == x.size() && j == y.size() && accepting_set.count(s)) return true;
    for (const Rule& rule : rules_) {
      if (rule.from != s) continue;
      if (i + rule.input.size() > x.size()) continue;
      if (j + rule.output.size() > y.size()) continue;
      bool match = true;
      for (size_t k = 0; k < rule.input.size() && match; ++k) {
        match = (x[i + k] == rule.input[k]);
      }
      for (size_t k = 0; k < rule.output.size() && match; ++k) {
        match = (y[j + k] == rule.output[k]);
      }
      if (!match) continue;
      auto key = std::make_tuple(rule.to, i + rule.input.size(),
                                 j + rule.output.size());
      if (seen.insert(key).second) work.push(key);
    }
  }
  return false;
}

bool Transducer::IsLetterToLetter() const {
  for (const Rule& rule : rules_) {
    if (rule.input.size() != 1 || rule.output.size() != 1) return false;
  }
  return true;
}

Result<RegularRelation> Transducer::ToRegularRelation() const {
  if (!IsLetterToLetter()) {
    return Status::InvalidArgument(
        "transducer is not letter-to-letter; its relation may not be "
        "regular");
  }
  TupleAlphabet ta(base_size_, 2);
  Nfa nfa(ta.num_symbols());
  nfa.AddStates(num_states_);
  for (StateId s : initial_) nfa.SetInitial(s);
  for (StateId s : accepting_) nfa.SetAccepting(s);
  for (const Rule& rule : rules_) {
    nfa.AddTransition(rule.from, ta.Encode({rule.input[0], rule.output[0]}),
                      rule.to);
  }
  return RegularRelation(base_size_, 2, std::move(nfa),
                         /*trusted_valid=*/true);
}

Transducer RestrictionTransducer(int alphabet_size,
                                 const std::vector<bool>& keep) {
  ECRPQ_DCHECK(static_cast<int>(keep.size()) == alphabet_size);
  // Reads a word w2 and outputs its restriction w1 to the kept letters; as
  // a relation this is { (w1, w2) : w1 = restriction of w2 } with roles
  // (output, input) matching the proof of Proposition 8.4.
  Transducer t(alphabet_size);
  StateId s = t.AddState();
  t.SetInitial(s);
  t.SetAccepting(s);
  for (Symbol a = 0; a < alphabet_size; ++a) {
    if (keep[a]) {
      t.AddRule(s, {a}, {a}, s);
    } else {
      t.AddRule(s, {a}, {}, s);
    }
  }
  return t;
}

bool SolvePcpBounded(const PcpInstance& instance, int max_tiles) {
  ECRPQ_DCHECK(instance.a.size() == instance.b.size());
  // BFS over the "overhang": the unmatched suffix of one side. State:
  // (which side is ahead, overhang word). Bounded by tile count.
  struct State {
    int depth;
    bool a_ahead;
    Word overhang;
  };
  std::set<std::pair<bool, Word>> seen;
  std::queue<State> work;
  work.push({0, true, {}});
  seen.insert({true, {}});
  while (!work.empty()) {
    State st = work.front();
    work.pop();
    if (st.depth >= max_tiles) continue;
    for (size_t i = 0; i < instance.a.size(); ++i) {
      // Current words: if a_ahead, a-side = overhang ++ (new a), b-side =
      // (new b); one must be a prefix of the other.
      Word a_side = st.a_ahead ? st.overhang : Word{};
      Word b_side = st.a_ahead ? Word{} : st.overhang;
      a_side.insert(a_side.end(), instance.a[i].begin(), instance.a[i].end());
      b_side.insert(b_side.end(), instance.b[i].begin(), instance.b[i].end());
      size_t common = std::min(a_side.size(), b_side.size());
      bool prefix = std::equal(a_side.begin(), a_side.begin() + common,
                               b_side.begin());
      if (!prefix) continue;
      // Both sides fully matched after >= 1 tile: a PCP solution.
      if (a_side.size() == b_side.size()) return true;
      bool a_ahead = a_side.size() > b_side.size();
      const Word& longer = a_ahead ? a_side : b_side;
      Word overhang(longer.begin() + common, longer.end());
      auto key = std::make_pair(a_ahead, overhang);
      if (seen.insert(key).second) {
        work.push({st.depth + 1, a_ahead, std::move(overhang)});
      }
    }
  }
  return false;
}

}  // namespace ecrpq
