// Regular relations: n-ary relations on Σ* recognized by synchronous
// letter-to-letter automata (Section 2 of the paper).
//
// A RegularRelation wraps an NFA over the tuple alphabet (Σ⊥)ⁿ together with
// the base alphabet size and arity. Class invariant: the NFA accepts only
// *valid* convolutions — pads appear only as a per-tape suffix and the all-⊥
// letter never occurs. Constructors and algebra operations re-establish the
// invariant (MakeValid intersects with the 2ⁿ-state monotone-pad DFA).
//
// The algebra implements exactly the closure properties the paper relies on
// (Section 2 & Theorem 5.1): intersection, union, complement (relative to
// valid convolutions), product, projection/permutation of tapes,
// cylindrification, join, and composition.

#ifndef ECRPQ_RELATIONS_RELATION_H_
#define ECRPQ_RELATIONS_RELATION_H_

#include <memory>
#include <string>
#include <vector>

#include "automata/nfa.h"
#include "relations/convolution.h"
#include "util/status.h"

namespace ecrpq {

/// An n-ary regular relation over a base alphabet of fixed size.
class RegularRelation {
 public:
  /// Wraps `nfa` (over the tuple alphabet ids of (Σ⊥)^arity). The NFA is
  /// intersected with the valid-convolution language unless the caller
  /// guarantees validity via `trusted_valid`.
  RegularRelation(int base_size, int arity, Nfa nfa,
                  bool trusted_valid = false);

  int base_size() const { return tuple_alphabet_.base_size(); }
  int arity() const { return tuple_alphabet_.arity(); }
  const TupleAlphabet& tuple_alphabet() const { return tuple_alphabet_; }
  const Nfa& nfa() const { return nfa_; }

  /// Membership: is the string tuple in the relation?
  bool Contains(const std::vector<Word>& strings) const;

  /// Emptiness / infiniteness of the relation (as a set of tuples).
  bool IsEmpty() const;
  bool IsInfinite() const;

  /// Some member tuple (shortest convolution), or empty optional.
  std::optional<std::vector<Word>> AnyMember() const;

  /// Up to `max_count` member tuples with convolution length <= max_len.
  std::vector<std::vector<Word>> EnumerateMembers(int max_count,
                                                  int max_len) const;

  // ---- Algebra (closure properties) ----

  /// R1 ∩ R2 (same base size and arity required).
  static Result<RegularRelation> Intersect(const RegularRelation& r1,
                                           const RegularRelation& r2);

  /// R1 ∪ R2.
  static Result<RegularRelation> Union(const RegularRelation& r1,
                                       const RegularRelation& r2);

  /// Complement relative to (Σ*)ⁿ.
  RegularRelation Complement() const;

  /// Reorders/duplicates tapes: tape t of the result reads tape
  /// `tape_map[t]` of *this*. Arities: result arity = tape_map.size();
  /// entries index into [0, arity()). Duplicating an entry constrains both
  /// result tapes to carry the same positions of the source tape — use
  /// Cylindrify + equality for that effect instead; here entries must be
  /// distinct (checked).
  Result<RegularRelation> PermuteTapes(const std::vector<int>& tape_map) const;

  /// Embeds this k-ary relation into arity `new_arity`: result accepts an
  /// n-tuple iff the sub-tuple at positions `positions` (distinct, size k)
  /// is in this relation. Unconstrained tapes may be arbitrarily longer or
  /// shorter; the embedded relation only looks at its own tapes and accepts
  /// once they are exhausted (done-state construction).
  Result<RegularRelation> Cylindrify(int new_arity,
                                     const std::vector<int>& positions) const;

  /// Projects onto `tapes` (distinct positions): existentially quantifies
  /// away all other tapes. Handles length mismatches by collapsing
  /// kept-tape-all-pad suffixes (ε-transitions + trim).
  Result<RegularRelation> Project(const std::vector<int>& tapes) const;

  /// Natural join on the last tape of r1 and first tape of r2 is a special
  /// case of Compose; the general join glues tape `tape1` of r1 to tape
  /// `tape2` of r2 and keeps all tapes of both (shared tape once), r1's
  /// tapes first.
  static Result<RegularRelation> Join(const RegularRelation& r1, int tape1,
                                      const RegularRelation& r2, int tape2);

  /// Composition of binary relations: (x,z) ∈ R1∘R2 iff ∃y (x,y) ∈ R1 and
  /// (y,z) ∈ R2. Requires both binary.
  static Result<RegularRelation> Compose(const RegularRelation& r1,
                                         const RegularRelation& r2);

  /// The unary relation (language) of a base-alphabet NFA.
  static RegularRelation FromLanguage(int base_size, const Nfa& language_nfa);

  /// Unary: this relation's language as a base-alphabet NFA (arity 1 only).
  Result<Nfa> ToLanguageNfa() const;

  /// The length abstraction R_len of Section 6.3: tuples whose component
  /// lengths match some member of R. Implemented by mapping every non-pad
  /// component to a canonical letter (regularity proof of Lemma 6.6).
  RegularRelation LengthAbstraction() const;

  /// Human-readable summary (states/arity), for logs and tests.
  std::string Describe() const;

 private:
  TupleAlphabet tuple_alphabet_;
  Nfa nfa_;
};

/// DFA-shaped NFA accepting exactly the valid convolutions of (Σ⊥)ⁿ
/// (2ⁿ states tracking the monotone pad mask).
Nfa ValidConvolutionNfa(const TupleAlphabet& ta);

}  // namespace ecrpq

#endif  // ECRPQ_RELATIONS_RELATION_H_
