// The catalogue of regular relations the paper uses as running examples
// (Sections 1, 3 and 4): path equality, length comparisons, prefix,
// bounded edit distance, synchronous transformations (morphisms),
// ρ-isomorphism, and finite relations.
//
// Each builder returns a RegularRelation over a base alphabet of the given
// size; callers share Symbol ids with their GraphDb's Alphabet.

#ifndef ECRPQ_RELATIONS_BUILTIN_H_
#define ECRPQ_RELATIONS_BUILTIN_H_

#include <map>
#include <vector>

#include "relations/relation.h"

namespace ecrpq {

/// π1 = π2 (string equality).
RegularRelation EqualityRelation(int base_size);

/// el(π1, π2): |π1| = |π2|.
RegularRelation EqualLengthRelation(int base_size);

/// |π1| < |π2|.
RegularRelation ShorterRelation(int base_size);

/// |π1| <= |π2|.
RegularRelation ShorterOrEqualRelation(int base_size);

/// π1 ⪯ π2 (π1 is a prefix of π2).
RegularRelation PrefixRelation(int base_size);

/// Strict prefix: π1 ⪯ π2 and π1 ≠ π2.
RegularRelation StrictPrefixRelation(int base_size);

/// Synchronous transformation by h: (a1...an, h(a1)...h(an)).
/// `mapping[a]` is h(a); entries must be valid base symbols.
RegularRelation MorphismRelation(int base_size,
                                 const std::vector<Symbol>& mapping);

/// Position-wise allowed pairs: { (u, v) : |u|=|v|, (u_i, v_i) ∈ pairs }.
/// The ρ-isomorphism relation of Section 4 is this with
/// pairs = { (a,b) : a ≺ b or b ≺ a }.
RegularRelation SynchronousPairsRelation(
    int base_size, const std::vector<std::pair<Symbol, Symbol>>& pairs);

/// ρ-isomorphism from declared subproperty pairs a ≺ b (symmetrized).
RegularRelation RhoIsomorphismRelation(
    int base_size, const std::vector<std::pair<Symbol, Symbol>>& subproperty);

/// Single edit step or equality: pairs (x, y) with edit distance <= 1
/// (substitution, deletion or insertion of one symbol). Letter-to-letter
/// construction with one-symbol lookback (Section 4's D≤k builds on this).
RegularRelation OneEditOrEqualRelation(int base_size);

/// D≤k: pairs with edit distance at most k, built by composing
/// OneEditOrEqualRelation k times (regular because bounded-delay, cf.
/// Frougny & Sakarovitch). k >= 0; k = 0 is equality.
RegularRelation EditDistanceAtMostRelation(int base_size, int k);

/// Hamming distance <= k: equal length and at most k position-wise
/// mismatches (the substitution-only special case of edit distance; a
/// (k+1)-state letter-to-letter automaton).
RegularRelation HammingDistanceAtMostRelation(int base_size, int k);

/// A finite n-ary relation given explicitly.
RegularRelation FiniteRelation(int base_size, int arity,
                               const std::vector<std::vector<Word>>& tuples);

/// The full relation (Σ*)ⁿ.
RegularRelation UniversalRelation(int base_size, int arity);

/// {(s1,...,sn)} with all components equal: generalized equality.
RegularRelation AllEqualRelation(int base_size, int arity);

/// All components have equal length (n-ary el).
RegularRelation AllEqualLengthRelation(int base_size, int arity);

/// Reference edit distance (dynamic programming) for tests.
int EditDistance(const Word& a, const Word& b);

}  // namespace ecrpq

#endif  // ECRPQ_RELATIONS_BUILTIN_H_
