// Regular expressions over tuple alphabets (Σ⊥)ⁿ — the paper's concrete
// syntax for regular relations (Definition 3.1 uses "a regular expression
// that defines a regular relation over Σ").
//
// Grammar extends the base regex grammar; atoms are tuple letters:
//
//   atom  := '[' comp (',' comp)* ']' | '(' expr ')' | '\e' | '\0'
//   comp  := letter | '_'            ('_' is the pad symbol ⊥)
//
// Example (binary prefix relation over {a,b}):  ([a,a]|[b,b])*([_,a]|[_,b])*
// The arity is inferred from the first tuple atom and enforced thereafter.

#ifndef ECRPQ_RELATIONS_TUPLE_REGEX_H_
#define ECRPQ_RELATIONS_TUPLE_REGEX_H_

#include <string_view>

#include "relations/relation.h"

namespace ecrpq {

/// Parses a tuple regex into a RegularRelation over `alphabet` (strict:
/// letters must already be interned). `expected_arity` < 0 infers the arity
/// from the expression.
Result<RegularRelation> ParseTupleRegex(std::string_view text,
                                        const Alphabet& alphabet,
                                        int expected_arity = -1);

}  // namespace ecrpq

#endif  // ECRPQ_RELATIONS_TUPLE_REGEX_H_
