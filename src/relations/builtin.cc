#include "relations/builtin.h"

#include <algorithm>

#include "automata/operations.h"

namespace ecrpq {

namespace {
// Convenience: encode a binary tuple letter.
Symbol Pair(const TupleAlphabet& ta, Symbol x, Symbol y) {
  return ta.Encode({x, y});
}
}  // namespace

RegularRelation EqualityRelation(int base_size) {
  return AllEqualRelation(base_size, 2);
}

RegularRelation EqualLengthRelation(int base_size) {
  return AllEqualLengthRelation(base_size, 2);
}

RegularRelation ShorterRelation(int base_size) {
  TupleAlphabet ta(base_size, 2);
  Nfa nfa(ta.num_symbols());
  StateId both = nfa.AddState();   // equal lengths so far
  StateId tail = nfa.AddState();   // tape 1 exhausted, tape 2 continues
  nfa.SetInitial(both);
  nfa.SetAccepting(tail);
  for (Symbol a = 0; a < base_size; ++a) {
    for (Symbol b = 0; b < base_size; ++b) {
      nfa.AddTransition(both, Pair(ta, a, b), both);
    }
    nfa.AddTransition(both, Pair(ta, kPad, a), tail);
    nfa.AddTransition(tail, Pair(ta, kPad, a), tail);
  }
  return RegularRelation(base_size, 2, std::move(nfa),
                         /*trusted_valid=*/true);
}

RegularRelation ShorterOrEqualRelation(int base_size) {
  auto shorter = ShorterRelation(base_size);
  auto equal_length = EqualLengthRelation(base_size);
  return RegularRelation::Union(shorter, equal_length).ValueOrDie();
}

RegularRelation PrefixRelation(int base_size) {
  TupleAlphabet ta(base_size, 2);
  Nfa nfa(ta.num_symbols());
  StateId match = nfa.AddState();  // reading (a,a)
  StateId tail = nfa.AddState();   // reading (⊥,b)
  nfa.SetInitial(match);
  nfa.SetAccepting(match);
  nfa.SetAccepting(tail);
  for (Symbol a = 0; a < base_size; ++a) {
    nfa.AddTransition(match, Pair(ta, a, a), match);
    nfa.AddTransition(match, Pair(ta, kPad, a), tail);
    nfa.AddTransition(tail, Pair(ta, kPad, a), tail);
  }
  return RegularRelation(base_size, 2, std::move(nfa),
                         /*trusted_valid=*/true);
}

RegularRelation StrictPrefixRelation(int base_size) {
  TupleAlphabet ta(base_size, 2);
  Nfa nfa(ta.num_symbols());
  StateId match = nfa.AddState();
  StateId tail = nfa.AddState();
  nfa.SetInitial(match);
  nfa.SetAccepting(tail);
  for (Symbol a = 0; a < base_size; ++a) {
    nfa.AddTransition(match, Pair(ta, a, a), match);
    nfa.AddTransition(match, Pair(ta, kPad, a), tail);
    nfa.AddTransition(tail, Pair(ta, kPad, a), tail);
  }
  return RegularRelation(base_size, 2, std::move(nfa),
                         /*trusted_valid=*/true);
}

RegularRelation MorphismRelation(int base_size,
                                 const std::vector<Symbol>& mapping) {
  ECRPQ_DCHECK(static_cast<int>(mapping.size()) == base_size);
  TupleAlphabet ta(base_size, 2);
  Nfa nfa(ta.num_symbols());
  StateId s = nfa.AddState();
  nfa.SetInitial(s);
  nfa.SetAccepting(s);
  for (Symbol a = 0; a < base_size; ++a) {
    ECRPQ_DCHECK(mapping[a] >= 0 && mapping[a] < base_size);
    nfa.AddTransition(s, Pair(ta, a, mapping[a]), s);
  }
  return RegularRelation(base_size, 2, std::move(nfa),
                         /*trusted_valid=*/true);
}

RegularRelation SynchronousPairsRelation(
    int base_size, const std::vector<std::pair<Symbol, Symbol>>& pairs) {
  TupleAlphabet ta(base_size, 2);
  Nfa nfa(ta.num_symbols());
  StateId s = nfa.AddState();
  nfa.SetInitial(s);
  nfa.SetAccepting(s);
  std::vector<Symbol> seen;
  for (const auto& [a, b] : pairs) {
    ECRPQ_DCHECK(a >= 0 && a < base_size && b >= 0 && b < base_size);
    Symbol letter = Pair(ta, a, b);
    if (std::find(seen.begin(), seen.end(), letter) != seen.end()) continue;
    seen.push_back(letter);
    nfa.AddTransition(s, letter, s);
  }
  return RegularRelation(base_size, 2, std::move(nfa),
                         /*trusted_valid=*/true);
}

RegularRelation RhoIsomorphismRelation(
    int base_size, const std::vector<std::pair<Symbol, Symbol>>& subproperty) {
  // The paper's relation ( ⋃_{a≺b or b≺a} (a,b) )*. Note a ≺ b contributes
  // both (a,b) and (b,a) since the definition symmetrizes.
  std::vector<std::pair<Symbol, Symbol>> pairs;
  for (const auto& [a, b] : subproperty) {
    pairs.emplace_back(a, b);
    pairs.emplace_back(b, a);
  }
  return SynchronousPairsRelation(base_size, pairs);
}

RegularRelation OneEditOrEqualRelation(int base_size) {
  // States:
  //   eq            both tapes aligned, no edit yet (accepting)
  //   subst         one substitution consumed       (accepting)
  //   ins(a)        tape 2 one ahead; x's pending symbol is a
  //   del(b)        tape 1 one ahead; y's pending symbol is b
  //   done          pad consumed after ins/del      (accepting, no arcs)
  //
  // Insertion (y = u·b·v, x = u·v): after the inserted letter, tape 2
  // replays tape 1 shifted by one; the shift is tracked by remembering the
  // last tape-1 symbol.
  TupleAlphabet ta(base_size, 2);
  Nfa nfa(ta.num_symbols());
  StateId eq = nfa.AddState();
  StateId subst = nfa.AddState();
  StateId done = nfa.AddState();
  StateId ins0 = nfa.AddStates(base_size);
  StateId del0 = nfa.AddStates(base_size);
  nfa.SetInitial(eq);
  nfa.SetAccepting(eq);
  nfa.SetAccepting(subst);
  nfa.SetAccepting(done);

  for (Symbol a = 0; a < base_size; ++a) {
    nfa.AddTransition(eq, Pair(ta, a, a), eq);
    nfa.AddTransition(subst, Pair(ta, a, a), subst);
    // Insertion at the very end of x / deletion of x's last symbol.
    nfa.AddTransition(eq, Pair(ta, kPad, a), done);
    nfa.AddTransition(eq, Pair(ta, a, kPad), done);
    for (Symbol b = 0; b < base_size; ++b) {
      if (a != b) nfa.AddTransition(eq, Pair(ta, a, b), subst);
      // Mid-string insertion: consume (a, b); x's a is now pending.
      nfa.AddTransition(eq, Pair(ta, a, b), ins0 + a);
      // Mid-string deletion: consume (a, b); y's b is now pending.
      nfa.AddTransition(eq, Pair(ta, a, b), del0 + b);
    }
  }
  for (Symbol pending = 0; pending < base_size; ++pending) {
    for (Symbol c = 0; c < base_size; ++c) {
      nfa.AddTransition(ins0 + pending, Pair(ta, c, pending), ins0 + c);
      nfa.AddTransition(del0 + pending, Pair(ta, pending, c), del0 + c);
    }
    nfa.AddTransition(ins0 + pending, Pair(ta, kPad, pending), done);
    nfa.AddTransition(del0 + pending, Pair(ta, pending, kPad), done);
  }
  return RegularRelation(base_size, 2, std::move(nfa),
                         /*trusted_valid=*/true);
}

RegularRelation EditDistanceAtMostRelation(int base_size, int k) {
  ECRPQ_DCHECK(k >= 0);
  if (k == 0) return EqualityRelation(base_size);
  RegularRelation result = OneEditOrEqualRelation(base_size);
  RegularRelation step = result;
  for (int i = 1; i < k; ++i) {
    result = RegularRelation::Compose(result, step).ValueOrDie();
  }
  return result;
}

RegularRelation HammingDistanceAtMostRelation(int base_size, int k) {
  ECRPQ_DCHECK(k >= 0);
  TupleAlphabet ta(base_size, 2);
  Nfa nfa(ta.num_symbols());
  // State i = "i mismatches so far", all accepting.
  StateId first = nfa.AddStates(k + 1);
  nfa.SetInitial(first);
  for (int i = 0; i <= k; ++i) {
    nfa.SetAccepting(first + i);
    for (Symbol a = 0; a < base_size; ++a) {
      nfa.AddTransition(first + i, Pair(ta, a, a), first + i);
      for (Symbol b = 0; b < base_size; ++b) {
        if (a != b && i < k) {
          nfa.AddTransition(first + i, Pair(ta, a, b), first + i + 1);
        }
      }
    }
  }
  return RegularRelation(base_size, 2, std::move(nfa),
                         /*trusted_valid=*/true);
}

RegularRelation FiniteRelation(int base_size, int arity,
                               const std::vector<std::vector<Word>>& tuples) {
  TupleAlphabet ta(base_size, arity);
  std::vector<Word> convolutions;
  convolutions.reserve(tuples.size());
  for (const auto& tuple : tuples) {
    ECRPQ_DCHECK(static_cast<int>(tuple.size()) == arity);
    convolutions.push_back(Convolve(ta, tuple));
  }
  return RegularRelation(base_size, arity,
                         FromWords(ta.num_symbols(), convolutions),
                         /*trusted_valid=*/true);
}

RegularRelation UniversalRelation(int base_size, int arity) {
  TupleAlphabet ta(base_size, arity);
  return RegularRelation(base_size, arity, ValidConvolutionNfa(ta),
                         /*trusted_valid=*/true);
}

RegularRelation AllEqualRelation(int base_size, int arity) {
  TupleAlphabet ta(base_size, arity);
  Nfa nfa(ta.num_symbols());
  StateId s = nfa.AddState();
  nfa.SetInitial(s);
  nfa.SetAccepting(s);
  TupleLetter letter(arity);
  for (Symbol a = 0; a < base_size; ++a) {
    for (int t = 0; t < arity; ++t) letter[t] = a;
    nfa.AddTransition(s, ta.Encode(letter), s);
  }
  return RegularRelation(base_size, arity, std::move(nfa),
                         /*trusted_valid=*/true);
}

RegularRelation AllEqualLengthRelation(int base_size, int arity) {
  TupleAlphabet ta(base_size, arity);
  Nfa nfa(ta.num_symbols());
  StateId s = nfa.AddState();
  nfa.SetInitial(s);
  nfa.SetAccepting(s);
  for (Symbol letter = 0; letter < ta.num_symbols(); ++letter) {
    if (ta.PadMask(letter) == 0) nfa.AddTransition(s, letter, s);
  }
  return RegularRelation(base_size, arity, std::move(nfa),
                         /*trusted_valid=*/true);
}

int EditDistance(const Word& a, const Word& b) {
  const size_t n = a.size(), m = b.size();
  std::vector<int> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      int subst = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace ecrpq
