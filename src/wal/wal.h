// Write-ahead log segments: record framing, the appender, and the
// recovery scan.
//
// On-disk layout (one data dir, managed by DurableLog in durable.h):
//
//   wal-<first-lsn, 20 digits>.log    log segments, oldest first
//   checkpoint-<lsn, 20 digits>.ckpt  graph snapshot covering lsn <= L
//   LOCK                              flock'd by the owning process
//
// Record framing inside a segment (little-endian):
//
//   u32 len | u32 crc32c (masked) | u64 lsn | u8 type | payload
//
// `len` counts lsn + type + payload (so len >= 9); the CRC covers those
// same `len` bytes. LSNs are assigned contiguously starting at 1: record
// n+1 always has lsn(n)+1, and a segment's first record's lsn equals the
// number in its filename. Recovery scans segments in order and stops at
// the first record that is torn (fewer bytes than `len` promises),
// corrupt (CRC mismatch), oversized, or out of LSN sequence — everything
// before that point is the recovered log, everything after is discarded
// by physical truncation.
//
// WalWriter appends records, rotating to a new segment once the current
// one crosses `segment_bytes`. It does NOT fsync on its own — the
// fsync policy (always / interval / never) lives in DurableLog, which
// calls Sync() at the configured durability points. After a failed
// append the on-disk tail may be torn; RepairTail() truncates back to
// the last fully-appended record so the log can continue.

#ifndef ECRPQ_WAL_WAL_H_
#define ECRPQ_WAL_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/io.h"
#include "util/status.h"

namespace ecrpq {

/// When a MUTATE ack implies "on disk".
enum class FsyncPolicy {
  kAlways,    ///< fsync before every ack (group commit per batch)
  kInterval,  ///< a flusher thread fsyncs every fsync_interval_ms
  kNever,     ///< leave durability to the OS page cache
};

/// Parses "always" / "interval" / "never".
Result<FsyncPolicy> ParseFsyncPolicy(std::string_view text);
const char* FsyncPolicyName(FsyncPolicy policy);

enum class WalRecordType : uint8_t {
  kMutation = 1,   ///< name-level GraphMutation batch (wal_format.h)
  kEdgeDelta = 2,  ///< id-level add/remove edge batch (wal_format.h)
  kNoop = 3,       ///< empty probe record (degraded-mode recovery)
};

/// len + crc.
inline constexpr size_t kWalFrameHeader = 8;
/// lsn + type, the checksummed prefix of every record body.
inline constexpr size_t kWalRecordHeader = 9;
/// Upper bound on `len` — anything larger is corruption, not data.
inline constexpr uint32_t kMaxWalRecordLen = 64u << 20;

/// "wal-<first_lsn>.log" (20-digit zero-padded, lexicographically
/// sortable).
std::string WalSegmentName(uint64_t first_lsn);
/// "checkpoint-<lsn>.ckpt".
std::string CheckpointName(uint64_t lsn);

/// Parses a segment/checkpoint filename; returns false for foreign
/// files.
bool ParseWalSegmentName(const std::string& name, uint64_t* first_lsn);
bool ParseCheckpointName(const std::string& name, uint64_t* lsn);

struct WalSegmentInfo {
  std::string name;
  uint64_t first_lsn = 0;
};

/// Log segments in `dir`, sorted by first LSN.
Result<std::vector<WalSegmentInfo>> ListWalSegments(FileSystem* fs,
                                                    const std::string& dir);

/// How a ScanWal ended.
struct WalScanStats {
  uint64_t last_lsn = 0;   ///< highest valid LSN seen (0 = empty log)
  uint64_t records = 0;    ///< valid records (including skipped ones)
  uint64_t delivered = 0;  ///< records handed to the callback
  uint64_t segments = 0;   ///< segments scanned
  uint64_t bytes = 0;      ///< valid record bytes

  /// True when the scan stopped before the physical end of the log —
  /// the tail from (truncate_segment, truncate_offset) on is garbage
  /// and must be chopped before appending resumes.
  bool truncated = false;
  std::string truncate_segment;
  uint64_t truncate_offset = 0;
  std::string truncate_reason;  ///< "torn-record" | "bad-crc" | "lsn-gap"
  /// Segments after the truncation point (unreachable; to be deleted).
  std::vector<std::string> orphan_segments;
};

using WalRecordFn =
    std::function<Status(uint64_t lsn, WalRecordType type,
                         std::string_view payload)>;

/// Scans the log in `dir`, validating every record and delivering those
/// with lsn > min_lsn to `fn` in order. Stops (and reports a
/// truncation point) at the first invalid record. Segments whose whole
/// range is covered by a later segment's start or by min_lsn are
/// skipped wholesale — stale leftovers from an interrupted prune.
Result<WalScanStats> ScanWal(FileSystem* fs, const std::string& dir,
                             uint64_t min_lsn, const WalRecordFn& fn);

/// The appender. Not thread-safe; DurableLog serializes access.
class WalWriter {
 public:
  /// Resumes appending at `next_lsn`. When `tail_segment` names an
  /// existing segment (the scan's last valid one), appends continue in
  /// it at `tail_bytes`; otherwise the first append creates
  /// wal-<next_lsn>.log.
  static Result<std::unique_ptr<WalWriter>> Open(
      FileSystem* fs, std::string dir, uint64_t segment_bytes,
      uint64_t next_lsn, const std::string& tail_segment,
      uint64_t tail_bytes);

  /// Appends one record, assigning it the next LSN (returned via
  /// `lsn`). Rotates first when the current segment is over budget. On
  /// failure the tail may be torn: no further appends succeed until
  /// RepairTail().
  Status Append(WalRecordType type, std::string_view payload, uint64_t* lsn);

  /// fsyncs the current segment (and the directory, if a segment was
  /// created since the last sync).
  Status Sync();

  /// Truncates the current segment back to the last fully-appended
  /// record and reopens it, clearing the needs-repair state. Safe to
  /// call when healthy (no-op).
  Status RepairTail();

  bool needs_repair() const { return needs_repair_; }
  uint64_t next_lsn() const { return next_lsn_; }
  /// LSN of the last successfully appended record (0 = none).
  uint64_t last_lsn() const { return next_lsn_ - 1; }
  const std::string& segment_name() const { return segment_name_; }
  uint64_t segment_bytes_written() const { return segment_offset_; }

 private:
  WalWriter(FileSystem* fs, std::string dir, uint64_t segment_bytes)
      : fs_(fs), dir_(std::move(dir)), segment_limit_(segment_bytes) {}

  Status EnsureSegment(size_t incoming);
  std::string SegmentPath(const std::string& name) const {
    return dir_ + "/" + name;
  }

  FileSystem* fs_;
  std::string dir_;
  uint64_t segment_limit_;

  std::unique_ptr<WritableFile> file_;  // null until the first append
  std::string segment_name_;
  uint64_t segment_offset_ = 0;  // bytes fully appended to the segment
  uint64_t next_lsn_ = 1;
  bool needs_repair_ = false;
  bool dir_dirty_ = false;  // a segment was created since the last Sync
};

}  // namespace ecrpq

#endif  // ECRPQ_WAL_WAL_H_
