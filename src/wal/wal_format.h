// Serialization of WAL record payloads and checkpoint snapshots.
//
// Two record payloads (see wal.h for the framing):
//
//   kMutation  — a name-level GraphMutation. Replaying it through
//                Database::ApplyDelta re-resolves names against the
//                recovered graph; name resolution is deterministic, so
//                the replayed graph is identical to the original.
//   kEdgeDelta — an id-level add/remove batch (u32 triples). Valid to
//                log because the checkpoint codec below round-trips
//                node ids and symbol ids exactly.
//
// The checkpoint is a line-oriented text snapshot of a GraphDb that —
// unlike graph/io.h's GraphToText — preserves *anonymity*: an
// anonymous node is written as an id, not materialized as a name, so
// replaying a post-checkpoint mutation that mentions "n5" resolves
// exactly as it did originally (creating a node, not aliasing node 5).
// Node ids, symbol ids, names, and the per-node edge order all
// round-trip.

#ifndef ECRPQ_WAL_WAL_FORMAT_H_
#define ECRPQ_WAL_WAL_FORMAT_H_

#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace ecrpq {

std::string EncodeMutationPayload(const GraphMutation& mutation);
Status DecodeMutationPayload(std::string_view payload, GraphMutation* out);

std::string EncodeEdgeDeltaPayload(const std::vector<Edge>& add,
                                   const std::vector<Edge>& remove);
Status DecodeEdgeDeltaPayload(std::string_view payload,
                              std::vector<Edge>* add,
                              std::vector<Edge>* remove);

/// Checkpoint snapshot text:
///
///   ecrpq-checkpoint 1
///   counts <num_nodes> <num_edges> <num_labels>
///   l <label>              (num_labels lines, symbol-id order)
///   n <id> <name>          (named nodes only, id order)
///   e <from> <label> <to>  (num_edges lines, per-node out order)
///
/// Label and name fields run to end-of-line (spaces survive; newlines
/// cannot appear — GraphDb names/labels are single-line tokens in
/// every ingest path, and Decode treats the line structure as
/// authoritative).
std::string EncodeCheckpoint(const GraphDb& graph);
Result<GraphDb> DecodeCheckpoint(std::string_view text);

}  // namespace ecrpq

#endif  // ECRPQ_WAL_WAL_FORMAT_H_
