// DurableLog: the durability manager gluing the WAL (wal.h), payload
// codecs (wal_format.h), and checkpoint snapshots into one data dir.
//
// Lifecycle
// ---------
//   Open(dir)    flocks the dir, loads the newest checkpoint (via
//                callback — the caller parses and installs it), replays
//                the WAL tail through the replay callbacks, physically
//                truncates the first torn/corrupt record and everything
//                after it, and resumes appending at the next LSN.
//   Append*      serializes one committed batch and appends it; with
//                fsync=always the record is on disk when the call
//                returns. Called by Database under the exclusive graph
//                lock, BEFORE the batch is applied — write-ahead.
//   WriteCheckpoint  atomically publishes a snapshot covering lsn <= L
//                (write tmp → fsync → rename → fsync dir), then prunes
//                older checkpoints and fully-covered segments.
//   Flush        fsync now, whatever the policy (SIGTERM drain).
//
// Degraded mode
// -------------
// Any append/fsync failure (ENOSPC, EIO, injected fault) flips the log
// into degraded mode: writes fail fast with kUnavailable ("DEGRADED:
// ..."), reads are unaffected, and Probe() — called on each rejected
// write (throttled) and periodically by the server loop — repairs the
// possibly-torn tail, appends + fsyncs a no-op record, and clears the
// flag once the disk accepts writes again.
//
// Thread safety: all public methods are safe to call concurrently; one
// internal mutex serializes writer access (appends are additionally
// serialized by the caller's graph lock — lock order graph → log).

#ifndef ECRPQ_WAL_DURABLE_H_
#define ECRPQ_WAL_DURABLE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph.h"
#include "util/io.h"
#include "util/status.h"
#include "wal/wal.h"

namespace ecrpq {

struct DurabilityOptions {
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  /// Flusher period for FsyncPolicy::kInterval.
  int fsync_interval_ms = 25;
  /// Segment rotation threshold.
  uint64_t segment_bytes = 64ull << 20;
  /// Minimum spacing between degraded-mode recovery probes.
  int probe_interval_ms = 1000;
  /// Injection point for tests; null = PosixFileSystem().
  FileSystem* fs = nullptr;
};

/// What recovery found in the data dir.
struct WalRecoveryInfo {
  uint64_t checkpoint_lsn = 0;  ///< newest snapshot loaded (0 = none)
  bool checkpoint_loaded = false;
  uint64_t replayed = 0;        ///< records applied on top of it
  uint64_t last_lsn = 0;        ///< head of the recovered log
  bool tail_truncated = false;  ///< a torn/corrupt tail was chopped
  std::string truncate_reason;
};

/// Point-in-time counters for STATS / wal_dump.
struct WalStats {
  bool degraded = false;
  std::string degraded_reason;
  uint64_t last_lsn = 0;
  uint64_t durable_lsn = 0;  ///< highest fsync-confirmed LSN
  uint64_t checkpoint_lsn = 0;
  uint64_t appends = 0;
  uint64_t append_failures = 0;
  uint64_t syncs = 0;
  uint64_t sync_failures = 0;
  uint64_t checkpoints = 0;
  uint64_t checkpoint_failures = 0;
  uint64_t probes = 0;
  uint64_t appended_bytes = 0;  ///< record bytes appended since Open
};

class DurableLog {
 public:
  /// Replay callbacks apply one recovered record to the caller's graph
  /// state; a non-ok return aborts Open.
  using CheckpointLoadFn = std::function<Status(const std::string& text)>;
  using MutationReplayFn = std::function<Status(GraphMutation&&)>;
  using EdgeDeltaReplayFn =
      std::function<Status(std::vector<Edge>&&, std::vector<Edge>&&)>;

  static Result<std::unique_ptr<DurableLog>> Open(
      std::string dir, const DurabilityOptions& options,
      const CheckpointLoadFn& load_checkpoint,
      const MutationReplayFn& replay_mutation,
      const EdgeDeltaReplayFn& replay_edges, WalRecoveryInfo* info);

  ~DurableLog();
  DurableLog(const DurableLog&) = delete;
  DurableLog& operator=(const DurableLog&) = delete;

  /// Appends one batch record; on success `*lsn` is its LSN and the
  /// record is at the configured durability point. On failure the log
  /// is degraded and NOTHING must be applied to the graph.
  Status AppendMutation(const GraphMutation& mutation, uint64_t* lsn);
  Status AppendEdgeDelta(const std::vector<Edge>& add,
                         const std::vector<Edge>& remove, uint64_t* lsn);

  /// Publishes `checkpoint_text` as the snapshot covering
  /// lsn <= applied_lsn, then prunes. The caller guarantees the text
  /// was serialized from a graph with exactly that LSN applied.
  Status WriteCheckpoint(const std::string& checkpoint_text,
                         uint64_t applied_lsn);

  /// fsyncs outstanding records now, regardless of policy.
  Status Flush();

  /// Degraded-recovery attempt, throttled to probe_interval_ms (pass
  /// force=true to bypass). Returns true when the log is healthy after
  /// the call. No-op (true) when not degraded.
  bool Probe(bool force = false);

  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }
  WalStats stats() const;
  const WalRecoveryInfo& recovery_info() const { return recovery_; }
  const std::string& dir() const { return dir_; }
  uint64_t last_lsn() const;

 private:
  DurableLog(std::string dir, const DurabilityOptions& options,
             FileSystem* fs)
      : dir_(std::move(dir)), options_(options), fs_(fs) {}

  Status AppendLocked(WalRecordType type, std::string_view payload,
                      uint64_t* lsn);
  bool ProbeLocked(bool force);
  void EnterDegradedLocked(const Status& cause);
  Status DegradedStatus() const;
  void FlusherLoop();

  const std::string dir_;
  const DurabilityOptions options_;
  FileSystem* const fs_;
  int lock_fd_ = -1;

  mutable std::mutex mutex_;
  std::unique_ptr<WalWriter> writer_;
  uint64_t durable_lsn_ = 0;
  uint64_t checkpoint_lsn_ = 0;
  bool has_checkpoint_ = false;
  std::atomic<bool> degraded_{false};
  std::string degraded_reason_;
  std::chrono::steady_clock::time_point last_probe_{};

  // counters (under mutex_)
  uint64_t appends_ = 0, append_failures_ = 0;
  uint64_t syncs_ = 0, sync_failures_ = 0;
  uint64_t checkpoints_ = 0, checkpoint_failures_ = 0;
  uint64_t probes_ = 0;
  uint64_t appended_bytes_ = 0;

  WalRecoveryInfo recovery_;

  // interval flusher
  std::thread flusher_;
  std::mutex flusher_mutex_;
  std::condition_variable flusher_cv_;
  bool stop_flusher_ = false;
};

}  // namespace ecrpq

#endif  // ECRPQ_WAL_DURABLE_H_
