#include "wal/durable.h"

#include <algorithm>
#include <cstring>

#include "wal/wal_format.h"

namespace ecrpq {

namespace {

bool HasSuffix(const std::string& s, const char* suffix) {
  size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

Result<std::unique_ptr<DurableLog>> DurableLog::Open(
    std::string dir, const DurabilityOptions& options,
    const CheckpointLoadFn& load_checkpoint,
    const MutationReplayFn& replay_mutation,
    const EdgeDeltaReplayFn& replay_edges, WalRecoveryInfo* info) {
  FileSystem* fs = options.fs != nullptr ? options.fs : PosixFileSystem();
  ECRPQ_RETURN_IF_ERROR(fs->CreateDir(dir));

  std::unique_ptr<DurableLog> log(new DurableLog(dir, options, fs));

  auto lock = fs->LockFile(dir + "/LOCK");
  if (!lock.ok()) return lock.status();
  log->lock_fd_ = lock.value();

  // Sweep leftovers of an interrupted checkpoint publish, and find the
  // newest checkpoint.
  auto names = fs->ListDir(dir);
  if (!names.ok()) return names.status();
  uint64_t newest_ckpt = 0;
  bool have_ckpt = false;
  std::vector<std::string> stale_ckpts;
  for (const std::string& name : names.value()) {
    if (HasSuffix(name, ".tmp")) {
      fs->Remove(dir + "/" + name);  // best effort
      continue;
    }
    uint64_t lsn;
    if (ParseCheckpointName(name, &lsn)) {
      if (!have_ckpt || lsn > newest_ckpt) {
        if (have_ckpt) stale_ckpts.push_back(CheckpointName(newest_ckpt));
        newest_ckpt = lsn;
        have_ckpt = true;
      } else {
        stale_ckpts.push_back(name);
      }
    }
  }

  if (have_ckpt) {
    std::string text;
    ECRPQ_RETURN_IF_ERROR(
        fs->ReadFile(dir + "/" + CheckpointName(newest_ckpt), &text));
    ECRPQ_RETURN_IF_ERROR(load_checkpoint(text));
    log->checkpoint_lsn_ = newest_ckpt;
    log->has_checkpoint_ = true;
    log->recovery_.checkpoint_lsn = newest_ckpt;
    log->recovery_.checkpoint_loaded = true;
  }
  for (const std::string& name : stale_ckpts) {
    fs->Remove(dir + "/" + name);  // best effort
  }

  // Replay the tail on top of the checkpoint.
  auto scan = ScanWal(
      fs, dir, /*min_lsn=*/newest_ckpt,
      [&](uint64_t lsn, WalRecordType type, std::string_view payload) {
        (void)lsn;
        switch (type) {
          case WalRecordType::kMutation: {
            GraphMutation mutation;
            ECRPQ_RETURN_IF_ERROR(DecodeMutationPayload(payload, &mutation));
            return replay_mutation(std::move(mutation));
          }
          case WalRecordType::kEdgeDelta: {
            std::vector<Edge> add, remove;
            ECRPQ_RETURN_IF_ERROR(
                DecodeEdgeDeltaPayload(payload, &add, &remove));
            return replay_edges(std::move(add), std::move(remove));
          }
          case WalRecordType::kNoop:
            return Status::OK();
        }
        return Status::InvalidArgument("unknown wal record type");
      });
  if (!scan.ok()) return scan.status();
  const WalScanStats& stats = scan.value();

  // Chop the torn tail so appends resume from a clean end of log. A
  // segment with no valid bytes is removed outright — resuming into it
  // would desynchronize its name from its first record's LSN.
  if (stats.truncated) {
    const std::string bad = dir + "/" + stats.truncate_segment;
    if (stats.truncate_offset == 0) {
      ECRPQ_RETURN_IF_ERROR(fs->Remove(bad));
    } else {
      ECRPQ_RETURN_IF_ERROR(fs->Truncate(bad, stats.truncate_offset));
    }
    for (const std::string& orphan : stats.orphan_segments) {
      if (orphan != stats.truncate_segment) {
        ECRPQ_RETURN_IF_ERROR(fs->Remove(dir + "/" + orphan));
      }
    }
  }

  log->recovery_.replayed = stats.delivered;
  log->recovery_.last_lsn = std::max(stats.last_lsn, newest_ckpt);
  log->recovery_.tail_truncated = stats.truncated;
  log->recovery_.truncate_reason = stats.truncate_reason;

  // Resume the writer after the last surviving record.
  auto segments = ListWalSegments(fs, dir);
  if (!segments.ok()) return segments.status();
  std::string tail_name;
  uint64_t tail_bytes = 0;
  if (!segments.value().empty()) {
    tail_name = segments.value().back().name;
    auto size = fs->FileSize(dir + "/" + tail_name);
    if (!size.ok()) return size.status();
    tail_bytes = size.value();
  }
  const uint64_t next_lsn = log->recovery_.last_lsn + 1;
  auto writer = WalWriter::Open(fs, dir, options.segment_bytes, next_lsn,
                                tail_name, tail_bytes);
  if (!writer.ok()) return writer.status();
  log->writer_ = std::move(writer).value();
  log->durable_lsn_ = log->recovery_.last_lsn;

  if (options.fsync == FsyncPolicy::kInterval) {
    log->flusher_ = std::thread([log = log.get()] { log->FlusherLoop(); });
  }
  if (info != nullptr) *info = log->recovery_;
  return log;
}

DurableLog::~DurableLog() {
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(flusher_mutex_);
      stop_flusher_ = true;
    }
    flusher_cv_.notify_all();
    flusher_.join();
  }
  {
    // Best-effort final flush; a dying process can't act on failure.
    std::lock_guard<std::mutex> lock(mutex_);
    if (writer_ != nullptr && !degraded_.load(std::memory_order_relaxed)) {
      writer_->Sync();
    }
  }
  if (lock_fd_ >= 0) fs_->ReleaseLock(lock_fd_);
}

Status DurableLog::DegradedStatus() const {
  return Status::Unavailable("DEGRADED: " + degraded_reason_);
}

void DurableLog::EnterDegradedLocked(const Status& cause) {
  degraded_.store(true, std::memory_order_relaxed);
  degraded_reason_ = cause.ToString();
}

Status DurableLog::AppendLocked(WalRecordType type, std::string_view payload,
                                uint64_t* lsn) {
  if (degraded_.load(std::memory_order_relaxed) &&
      !ProbeLocked(/*force=*/false)) {
    return DegradedStatus();
  }
  ++appends_;
  Status st = writer_->Append(type, payload, lsn);
  if (!st.ok()) {
    ++append_failures_;
    EnterDegradedLocked(st);
    return DegradedStatus();
  }
  appended_bytes_ += kWalFrameHeader + kWalRecordHeader + payload.size();
  if (options_.fsync == FsyncPolicy::kAlways) {
    ++syncs_;
    st = writer_->Sync();
    if (!st.ok()) {
      ++sync_failures_;
      EnterDegradedLocked(st);
      return DegradedStatus();
    }
    durable_lsn_ = *lsn;
  }
  return Status::OK();
}

Status DurableLog::AppendMutation(const GraphMutation& mutation,
                                  uint64_t* lsn) {
  std::string payload = EncodeMutationPayload(mutation);
  std::lock_guard<std::mutex> lock(mutex_);
  return AppendLocked(WalRecordType::kMutation, payload, lsn);
}

Status DurableLog::AppendEdgeDelta(const std::vector<Edge>& add,
                                   const std::vector<Edge>& remove,
                                   uint64_t* lsn) {
  std::string payload = EncodeEdgeDeltaPayload(add, remove);
  std::lock_guard<std::mutex> lock(mutex_);
  return AppendLocked(WalRecordType::kEdgeDelta, payload, lsn);
}

Status DurableLog::WriteCheckpoint(const std::string& checkpoint_text,
                                   uint64_t applied_lsn) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string final_path = dir_ + "/" + CheckpointName(applied_lsn);
  const std::string tmp_path = final_path + ".tmp";

  Status st = [&]() -> Status {
    auto file = fs_->NewWritableFile(tmp_path, /*truncate=*/true);
    if (!file.ok()) return file.status();
    ECRPQ_RETURN_IF_ERROR(
        file.value()->Append(checkpoint_text.data(), checkpoint_text.size()));
    ECRPQ_RETURN_IF_ERROR(file.value()->Sync());
    ECRPQ_RETURN_IF_ERROR(file.value()->Close());
    // Atomic publish: the snapshot appears under its final name fully
    // written or not at all; the dir fsync makes the rename durable.
    ECRPQ_RETURN_IF_ERROR(fs_->Rename(tmp_path, final_path));
    ECRPQ_RETURN_IF_ERROR(fs_->SyncDir(dir_));
    return Status::OK();
  }();
  if (!st.ok()) {
    ++checkpoint_failures_;
    fs_->Remove(tmp_path);  // best effort
    return st;
  }
  ++checkpoints_;
  const uint64_t old_checkpoint = checkpoint_lsn_;
  const bool had_checkpoint = has_checkpoint_;
  checkpoint_lsn_ = applied_lsn;
  has_checkpoint_ = true;

  // Prune (best effort; a failure leaves extra-but-consistent files
  // and the next checkpoint retries). Old checkpoints first, then
  // segments every record of which the new snapshot covers — oldest
  // first, stopping at the first failure so the surviving segment
  // suffix stays contiguous.
  if (had_checkpoint && old_checkpoint != applied_lsn) {
    fs_->Remove(dir_ + "/" + CheckpointName(old_checkpoint));
  }
  auto segments = ListWalSegments(fs_, dir_);
  if (segments.ok()) {
    const std::vector<WalSegmentInfo>& segs = segments.value();
    for (size_t i = 0; i + 1 < segs.size(); ++i) {
      if (segs[i + 1].first_lsn > applied_lsn + 1) break;
      if (segs[i].name == writer_->segment_name()) break;
      if (!fs_->Remove(dir_ + "/" + segs[i].name).ok()) break;
    }
  }
  return Status::OK();
}

Status DurableLog::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (degraded_.load(std::memory_order_relaxed)) return DegradedStatus();
  ++syncs_;
  Status st = writer_->Sync();
  if (!st.ok()) {
    ++sync_failures_;
    EnterDegradedLocked(st);
    return DegradedStatus();
  }
  durable_lsn_ = writer_->last_lsn();
  return Status::OK();
}

bool DurableLog::Probe(bool force) {
  std::lock_guard<std::mutex> lock(mutex_);
  return ProbeLocked(force);
}

bool DurableLog::ProbeLocked(bool force) {
  if (!degraded_.load(std::memory_order_relaxed)) return true;
  const auto now = std::chrono::steady_clock::now();
  if (!force && last_probe_.time_since_epoch().count() != 0 &&
      now - last_probe_ <
          std::chrono::milliseconds(options_.probe_interval_ms)) {
    return false;
  }
  last_probe_ = now;
  ++probes_;

  // Repair the (possibly torn) tail, then prove the disk accepts and
  // persists writes with a no-op record.
  if (!writer_->RepairTail().ok()) return false;
  uint64_t lsn;
  if (!writer_->Append(WalRecordType::kNoop, {}, &lsn).ok()) return false;
  if (!writer_->Sync().ok()) return false;
  durable_lsn_ = lsn;
  degraded_.store(false, std::memory_order_relaxed);
  degraded_reason_.clear();
  return true;
}

void DurableLog::FlusherLoop() {
  std::unique_lock<std::mutex> lock(flusher_mutex_);
  while (!stop_flusher_) {
    flusher_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.fsync_interval_ms));
    if (stop_flusher_) return;
    lock.unlock();
    {
      std::lock_guard<std::mutex> log_lock(mutex_);
      if (!degraded_.load(std::memory_order_relaxed) &&
          durable_lsn_ < writer_->last_lsn()) {
        ++syncs_;
        Status st = writer_->Sync();
        if (st.ok()) {
          durable_lsn_ = writer_->last_lsn();
        } else {
          ++sync_failures_;
          EnterDegradedLocked(st);
        }
      }
    }
    lock.lock();
  }
}

WalStats DurableLog::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  WalStats out;
  out.degraded = degraded_.load(std::memory_order_relaxed);
  out.degraded_reason = degraded_reason_;
  out.last_lsn = writer_->last_lsn();
  out.durable_lsn = durable_lsn_;
  out.checkpoint_lsn = checkpoint_lsn_;
  out.appends = appends_;
  out.append_failures = append_failures_;
  out.syncs = syncs_;
  out.sync_failures = sync_failures_;
  out.checkpoints = checkpoints_;
  out.checkpoint_failures = checkpoint_failures_;
  out.probes = probes_;
  out.appended_bytes = appended_bytes_;
  return out;
}

uint64_t DurableLog::last_lsn() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return writer_->last_lsn();
}

}  // namespace ecrpq
