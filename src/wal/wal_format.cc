#include "wal/wal_format.h"

#include <charconv>
#include <cstring>
#include <limits>
#include <unordered_map>

namespace ecrpq {

namespace {

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 4);
}

void PutStr(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// Bounds-checked little-endian reader over a payload.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  bool U32(uint32_t* v) {
    if (data_.size() - pos_ < 4) return ok_ = false;
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *v = r;
    return true;
  }

  bool Str(std::string* s) {
    uint32_t n;
    if (!U32(&n)) return false;
    if (data_.size() - pos_ < n) return ok_ = false;
    s->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool ok() const { return ok_; }
  bool done() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

  /// Reads an element count whose elements occupy at least
  /// `min_element_bytes` each. Rejecting counts the remaining bytes
  /// cannot possibly hold keeps a corrupt count from driving a huge
  /// allocation before the per-element reads fail.
  bool Count(size_t min_element_bytes, uint32_t* n) {
    if (!U32(n)) return false;
    if (*n > remaining() / min_element_bytes) return ok_ = false;
    return true;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

Status DecodeError(const char* what) {
  return Status::InvalidArgument(std::string("wal payload decode: ") + what);
}

void PutEdges(std::string* out, const std::vector<Edge>& edges) {
  PutU32(out, static_cast<uint32_t>(edges.size()));
  for (const Edge& e : edges) {
    PutU32(out, static_cast<uint32_t>(e.from));
    PutU32(out, static_cast<uint32_t>(e.label));
    PutU32(out, static_cast<uint32_t>(e.to));
  }
}

bool GetEdges(PayloadReader* reader, std::vector<Edge>* edges) {
  uint32_t n;
  if (!reader->Count(12, &n)) return false;  // 3 x u32 per edge
  edges->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t from, label, to;
    if (!reader->U32(&from) || !reader->U32(&label) || !reader->U32(&to)) {
      return false;
    }
    edges->push_back({static_cast<NodeId>(from), static_cast<Symbol>(label),
                      static_cast<NodeId>(to)});
  }
  return true;
}

}  // namespace

std::string EncodeMutationPayload(const GraphMutation& mutation) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(mutation.add_nodes.size()));
  for (const std::string& name : mutation.add_nodes) PutStr(&out, name);
  PutU32(&out, static_cast<uint32_t>(mutation.add_edges.size()));
  for (const EdgeSpec& spec : mutation.add_edges) {
    PutStr(&out, spec.from);
    PutStr(&out, spec.label);
    PutStr(&out, spec.to);
  }
  PutU32(&out, static_cast<uint32_t>(mutation.remove_edges.size()));
  for (const EdgeSpec& spec : mutation.remove_edges) {
    PutStr(&out, spec.from);
    PutStr(&out, spec.label);
    PutStr(&out, spec.to);
  }
  return out;
}

Status DecodeMutationPayload(std::string_view payload, GraphMutation* out) {
  PayloadReader reader(payload);
  uint32_t n;
  // Counts are cross-checked against the remaining bytes (4-byte
  // length prefix per string, 3 strings per edge spec) before any
  // allocation sized by them.
  if (!reader.Count(4, &n)) return DecodeError("bad add_nodes count");
  out->add_nodes.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!reader.Str(&out->add_nodes[i])) return DecodeError("bad add_node");
  }
  if (!reader.Count(12, &n)) return DecodeError("bad add_edges count");
  out->add_edges.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    EdgeSpec& spec = out->add_edges[i];
    if (!reader.Str(&spec.from) || !reader.Str(&spec.label) ||
        !reader.Str(&spec.to)) {
      return DecodeError("bad add_edge");
    }
  }
  if (!reader.Count(12, &n)) return DecodeError("bad remove_edges count");
  out->remove_edges.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    EdgeSpec& spec = out->remove_edges[i];
    if (!reader.Str(&spec.from) || !reader.Str(&spec.label) ||
        !reader.Str(&spec.to)) {
      return DecodeError("bad remove_edge");
    }
  }
  if (!reader.done()) return DecodeError("trailing bytes");
  return Status::OK();
}

std::string EncodeEdgeDeltaPayload(const std::vector<Edge>& add,
                                   const std::vector<Edge>& remove) {
  std::string out;
  PutEdges(&out, add);
  PutEdges(&out, remove);
  return out;
}

Status DecodeEdgeDeltaPayload(std::string_view payload, std::vector<Edge>* add,
                              std::vector<Edge>* remove) {
  PayloadReader reader(payload);
  if (!GetEdges(&reader, add)) return DecodeError("bad edge-delta adds");
  if (!GetEdges(&reader, remove)) return DecodeError("bad edge-delta removes");
  if (!reader.done()) return DecodeError("trailing bytes");
  return Status::OK();
}

// ---- checkpoint codec ----

std::string EncodeCheckpoint(const GraphDb& graph) {
  std::string out = "ecrpq-checkpoint 1\n";
  out += "counts " + std::to_string(graph.num_nodes()) + " " +
         std::to_string(graph.num_edges()) + " " +
         std::to_string(graph.alphabet().size()) + "\n";
  for (Symbol s = 0; s < graph.alphabet().size(); ++s) {
    out += "l " + graph.alphabet().Label(s) + "\n";
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    // NodeName falls back to "n<id>" for anonymous nodes; FindNode
    // distinguishes a real name from the fallback.
    std::string name = graph.NodeName(v);
    auto found = graph.FindNode(name);
    if (found.has_value() && *found == v) {
      out += "n " + std::to_string(v) + " " + name + "\n";
    }
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const auto& [label, to] : graph.Out(v)) {
      out += "e " + std::to_string(v) + " " + std::to_string(label) + " " +
             std::to_string(to) + "\n";
    }
  }
  return out;
}

namespace {

Status CheckpointError(const char* what) {
  return Status::InvalidArgument(std::string("corrupt checkpoint: ") + what);
}

bool ParseInt(std::string_view token, int64_t* out) {
  auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(),
                                   *out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

// Splits off the next whitespace-delimited token of `line`.
std::string_view NextToken(std::string_view* line) {
  size_t start = line->find_first_not_of(' ');
  if (start == std::string_view::npos) {
    *line = {};
    return {};
  }
  size_t end = line->find(' ', start);
  std::string_view token = line->substr(start, end - start);
  *line = end == std::string_view::npos ? std::string_view{}
                                        : line->substr(end + 1);
  return token;
}

}  // namespace

Result<GraphDb> DecodeCheckpoint(std::string_view text) {
  size_t pos = 0;
  auto next_line = [&](std::string_view* line) {
    if (pos >= text.size()) return false;
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    *line = text.substr(pos, end - pos);
    pos = end + 1;
    return true;
  };

  std::string_view line;
  if (!next_line(&line) || line != "ecrpq-checkpoint 1") {
    return CheckpointError("bad header");
  }
  if (!next_line(&line)) return CheckpointError("missing counts");
  if (NextToken(&line) != "counts") return CheckpointError("missing counts");
  int64_t num_nodes, num_edges, num_labels;
  if (!ParseInt(NextToken(&line), &num_nodes) ||
      !ParseInt(NextToken(&line), &num_edges) ||
      !ParseInt(NextToken(&line), &num_labels) || num_nodes < 0 ||
      num_edges < 0 || num_labels < 0) {
    return CheckpointError("bad counts");
  }
  // Corrupt counts must not drive allocations: ids are NodeId-ranged,
  // and every edge ("e 0 0 0") and label ("l x") costs a line of text.
  if (num_nodes > std::numeric_limits<NodeId>::max() ||
      num_edges > static_cast<int64_t>(text.size() / 8) ||
      num_labels > static_cast<int64_t>(text.size() / 4)) {
    return CheckpointError("bad counts");
  }

  auto alphabet = std::make_shared<Alphabet>();
  for (int64_t i = 0; i < num_labels; ++i) {
    if (!next_line(&line)) return CheckpointError("missing label line");
    if (line.size() < 2 || line[0] != 'l' || line[1] != ' ') {
      return CheckpointError("bad label line");
    }
    alphabet->Intern(line.substr(2));
  }

  // Named nodes, then fill the id space in order (anonymous between).
  std::unordered_map<int64_t, std::string> names;
  while (pos < text.size() && pos + 1 < text.size() && text[pos] == 'n' &&
         text[pos + 1] == ' ') {
    next_line(&line);
    std::string_view rest = line.substr(2);
    int64_t id;
    std::string_view id_token = NextToken(&rest);
    if (!ParseInt(id_token, &id) || id < 0 || id >= num_nodes ||
        rest.empty()) {
      return CheckpointError("bad name line");
    }
    names[id] = std::string(rest);
  }

  GraphDb graph(alphabet);
  for (int64_t v = 0; v < num_nodes; ++v) {
    auto it = names.find(v);
    NodeId assigned =
        it == names.end() ? graph.AddNode() : graph.AddNode(it->second);
    if (assigned != static_cast<NodeId>(v)) {
      return CheckpointError("duplicate node name");
    }
  }

  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(num_edges));
  for (int64_t i = 0; i < num_edges; ++i) {
    if (!next_line(&line)) return CheckpointError("missing edge line");
    if (line.size() < 2 || line[0] != 'e' || line[1] != ' ') {
      return CheckpointError("bad edge line");
    }
    std::string_view rest = line.substr(2);
    int64_t from, label, to;
    if (!ParseInt(NextToken(&rest), &from) ||
        !ParseInt(NextToken(&rest), &label) ||
        !ParseInt(NextToken(&rest), &to) || from < 0 || from >= num_nodes ||
        to < 0 || to >= num_nodes || label < 0 || label >= num_labels) {
      return CheckpointError("bad edge line");
    }
    edges.push_back({static_cast<NodeId>(from), static_cast<Symbol>(label),
                     static_cast<NodeId>(to)});
  }
  if (pos < text.size()) return CheckpointError("trailing lines");
  graph.AddEdges(edges);
  return graph;
}

}  // namespace ecrpq
