#include "wal/wal.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/crc32c.h"

namespace ecrpq {

namespace {

constexpr char kSegmentPrefix[] = "wal-";
constexpr char kSegmentSuffix[] = ".log";
constexpr char kCheckpointPrefix[] = "checkpoint-";
constexpr char kCheckpointSuffix[] = ".ckpt";

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(buf, 8);
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  return v;
}

std::string NumberedName(const char* prefix, uint64_t n, const char* suffix) {
  char buf[21];
  std::snprintf(buf, sizeof buf, "%020llu", static_cast<unsigned long long>(n));
  return std::string(prefix) + buf + suffix;
}

bool ParseNumberedName(const std::string& name, const char* prefix,
                       const char* suffix, uint64_t* n) {
  size_t plen = std::strlen(prefix), slen = std::strlen(suffix);
  if (name.size() != plen + 20 + slen) return false;
  if (name.compare(0, plen, prefix) != 0) return false;
  if (name.compare(plen + 20, slen, suffix) != 0) return false;
  uint64_t v = 0;
  for (size_t i = plen; i < plen + 20; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *n = v;
  return true;
}

}  // namespace

Result<FsyncPolicy> ParseFsyncPolicy(std::string_view text) {
  if (text == "always") return FsyncPolicy::kAlways;
  if (text == "interval") return FsyncPolicy::kInterval;
  if (text == "never" || text == "off") return FsyncPolicy::kNever;
  return Status::InvalidArgument("unknown fsync policy '" + std::string(text) +
                                 "' (want always|interval|never)");
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kInterval:
      return "interval";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "?";
}

std::string WalSegmentName(uint64_t first_lsn) {
  return NumberedName(kSegmentPrefix, first_lsn, kSegmentSuffix);
}

std::string CheckpointName(uint64_t lsn) {
  return NumberedName(kCheckpointPrefix, lsn, kCheckpointSuffix);
}

bool ParseWalSegmentName(const std::string& name, uint64_t* first_lsn) {
  return ParseNumberedName(name, kSegmentPrefix, kSegmentSuffix, first_lsn);
}

bool ParseCheckpointName(const std::string& name, uint64_t* lsn) {
  return ParseNumberedName(name, kCheckpointPrefix, kCheckpointSuffix, lsn);
}

Result<std::vector<WalSegmentInfo>> ListWalSegments(FileSystem* fs,
                                                    const std::string& dir) {
  auto names = fs->ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<WalSegmentInfo> segments;
  for (const std::string& name : names.value()) {
    uint64_t first_lsn;
    if (ParseWalSegmentName(name, &first_lsn)) {
      segments.push_back({name, first_lsn});
    }
  }
  std::sort(segments.begin(), segments.end(),
            [](const WalSegmentInfo& a, const WalSegmentInfo& b) {
              return a.first_lsn < b.first_lsn;
            });
  return segments;
}

Result<WalScanStats> ScanWal(FileSystem* fs, const std::string& dir,
                             uint64_t min_lsn, const WalRecordFn& fn) {
  auto segments_or = ListWalSegments(fs, dir);
  if (!segments_or.ok()) return segments_or.status();
  const std::vector<WalSegmentInfo>& segments = segments_or.value();

  WalScanStats stats;

  // Start at the last segment that can contain min_lsn + 1; earlier
  // segments hold only records a checkpoint already covers (stale
  // leftovers of an interrupted prune).
  size_t start = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].first_lsn <= min_lsn + 1) start = i;
  }

  // The first scanned segment must connect to the checkpoint: a start
  // beyond min_lsn + 1 means records were lost (prune bug, manual
  // deletion) and replaying across the hole would corrupt the graph.
  if (start < segments.size() && segments[start].first_lsn > min_lsn + 1) {
    stats.truncated = true;
    stats.truncate_segment = segments[start].name;
    stats.truncate_offset = 0;
    stats.truncate_reason = "lsn-gap";
    for (size_t i = start; i < segments.size(); ++i) {
      stats.orphan_segments.push_back(segments[i].name);
    }
    return stats;
  }

  uint64_t expected_lsn = 0;  // 0 = take the first segment's first_lsn
  for (size_t i = start; i < segments.size(); ++i) {
    const WalSegmentInfo& seg = segments[i];
    if (stats.truncated) {
      stats.orphan_segments.push_back(seg.name);
      continue;
    }
    if (expected_lsn != 0 && seg.first_lsn != expected_lsn) {
      // A whole segment is missing or misnumbered: the log ends at the
      // previous segment's tail.
      stats.truncated = true;
      stats.truncate_segment = seg.name;
      stats.truncate_offset = 0;
      stats.truncate_reason = "lsn-gap";
      stats.orphan_segments.push_back(seg.name);
      continue;
    }
    if (expected_lsn == 0) expected_lsn = seg.first_lsn;

    std::string data;
    Status st = fs->ReadFile(dir + "/" + seg.name, &data);
    if (!st.ok()) return st;
    ++stats.segments;

    size_t off = 0;
    while (off < data.size()) {
      const size_t remaining = data.size() - off;
      uint32_t len = 0;
      bool bad = false;
      const char* reason = nullptr;
      if (remaining < kWalFrameHeader) {
        bad = true;
        reason = "torn-record";
      } else {
        len = GetU32(data.data() + off);
        if (len < kWalRecordHeader || len > kMaxWalRecordLen) {
          bad = true;
          reason = "bad-length";
        } else if (remaining < kWalFrameHeader + len) {
          bad = true;
          reason = "torn-record";
        }
      }
      if (!bad) {
        const char* body = data.data() + off + kWalFrameHeader;
        uint32_t stored = GetU32(data.data() + off + 4);
        if (crc32c::Unmask(stored) != crc32c::Value(body, len)) {
          bad = true;
          reason = "bad-crc";
        } else {
          uint64_t lsn = GetU64(body);
          if (lsn != expected_lsn) {
            bad = true;
            reason = "lsn-gap";
          } else {
            WalRecordType type =
                static_cast<WalRecordType>(static_cast<uint8_t>(body[8]));
            if (lsn > min_lsn) {
              Status cb = fn(lsn, type,
                             std::string_view(body + kWalRecordHeader,
                                              len - kWalRecordHeader));
              if (!cb.ok()) return cb;
              ++stats.delivered;
            }
            stats.last_lsn = lsn;
            ++stats.records;
            stats.bytes += kWalFrameHeader + len;
            ++expected_lsn;
            off += kWalFrameHeader + len;
            continue;
          }
        }
      }
      stats.truncated = true;
      stats.truncate_segment = seg.name;
      stats.truncate_offset = off;
      stats.truncate_reason = reason;
      break;
    }
  }
  return stats;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    FileSystem* fs, std::string dir, uint64_t segment_bytes,
    uint64_t next_lsn, const std::string& tail_segment, uint64_t tail_bytes) {
  std::unique_ptr<WalWriter> writer(
      new WalWriter(fs, std::move(dir), segment_bytes));
  writer->next_lsn_ = next_lsn == 0 ? 1 : next_lsn;
  if (!tail_segment.empty()) {
    auto file = fs->NewWritableFile(writer->SegmentPath(tail_segment),
                                    /*truncate=*/false);
    if (!file.ok()) return file.status();
    writer->file_ = std::move(file).value();
    writer->segment_name_ = tail_segment;
    writer->segment_offset_ = tail_bytes;
  }
  return writer;
}

Status WalWriter::EnsureSegment(size_t incoming) {
  const bool rotate = file_ != nullptr && segment_offset_ > 0 &&
                      segment_offset_ + incoming > segment_limit_;
  if (file_ != nullptr && !rotate) return Status::OK();
  if (file_ != nullptr) {
    // Seal the full segment: its bytes must be durable before records
    // continue in a successor (a sealed segment is never synced again).
    ECRPQ_RETURN_IF_ERROR(file_->Sync());
    ECRPQ_RETURN_IF_ERROR(file_->Close());
    file_.reset();
  }
  std::string name = WalSegmentName(next_lsn_);
  auto file = fs_->NewWritableFile(SegmentPath(name), /*truncate=*/true);
  if (!file.ok()) return file.status();
  file_ = std::move(file).value();
  segment_name_ = name;
  segment_offset_ = 0;
  dir_dirty_ = true;
  return Status::OK();
}

Status WalWriter::Append(WalRecordType type, std::string_view payload,
                         uint64_t* lsn) {
  if (needs_repair_) {
    return Status::Unavailable("wal tail needs repair after failed append");
  }
  if (payload.size() + kWalRecordHeader > kMaxWalRecordLen) {
    return Status::InvalidArgument("wal record too large: " +
                                   std::to_string(payload.size()) + " bytes");
  }
  std::string record;
  record.reserve(kWalFrameHeader + kWalRecordHeader + payload.size());
  const uint32_t len = static_cast<uint32_t>(kWalRecordHeader + payload.size());
  PutU32(&record, len);
  PutU32(&record, 0);  // crc patched below
  PutU64(&record, next_lsn_);
  record.push_back(static_cast<char>(type));
  record.append(payload.data(), payload.size());
  const uint32_t crc =
      crc32c::Value(record.data() + kWalFrameHeader, len);
  const uint32_t masked = crc32c::Mask(crc);
  for (int i = 0; i < 4; ++i) {
    record[4 + i] = static_cast<char>((masked >> (8 * i)) & 0xff);
  }

  Status st = EnsureSegment(record.size());
  if (!st.ok()) {
    // Rotation failures leave no torn bytes (either the old segment is
    // intact or the new file is empty) but the writer may have no open
    // file; RepairTail reopens.
    needs_repair_ = file_ == nullptr;
    return st;
  }
  st = file_->Append(record.data(), record.size());
  if (!st.ok()) {
    needs_repair_ = true;  // a prefix of the record may be on disk
    return st;
  }
  segment_offset_ += record.size();
  if (lsn != nullptr) *lsn = next_lsn_;
  ++next_lsn_;
  return Status::OK();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::OK();
  ECRPQ_RETURN_IF_ERROR(file_->Sync());
  if (dir_dirty_) {
    ECRPQ_RETURN_IF_ERROR(fs_->SyncDir(dir_));
    dir_dirty_ = false;
  }
  return Status::OK();
}

Status WalWriter::RepairTail() {
  if (!needs_repair_) return Status::OK();
  if (!segment_name_.empty()) {
    if (file_ != nullptr) {
      file_->Close();  // best effort; the fd must go before truncate
      file_.reset();
    }
    const std::string path = SegmentPath(segment_name_);
    if (fs_->FileExists(path)) {
      ECRPQ_RETURN_IF_ERROR(fs_->Truncate(path, segment_offset_));
    }
    auto file = fs_->NewWritableFile(path, /*truncate=*/false);
    if (!file.ok()) return file.status();
    file_ = std::move(file).value();
  }
  needs_repair_ = false;
  return Status::OK();
}

}  // namespace ecrpq
