// wal_dump: offline inspector for an ecrpq durable data directory.
//
//   $ wal_dump <data-dir> [--records]
//
// Prints the newest checkpoint, every WAL segment with its LSN range
// and record count, and whether the log tail is torn/corrupt (and
// where). Never writes — safe to run against a live server's dir (it
// does not take the LOCK). With --records, every record's lsn, type,
// and payload size is listed.
//
// Exit codes: 0 log intact, 1 truncation/corruption detected, 2 usage
// or I/O error.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "util/io.h"
#include "wal/wal.h"

using namespace ecrpq;

namespace {

const char* TypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kMutation:
      return "mutation";
    case WalRecordType::kEdgeDelta:
      return "edge-delta";
    case WalRecordType::kNoop:
      return "noop";
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  bool dump_records = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--records") {
      dump_records = true;
    } else if (dir.empty()) {
      dir = arg;
    } else {
      dir.clear();
      break;
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr, "usage: wal_dump <data-dir> [--records]\n");
    return 2;
  }

  FileSystem* fs = PosixFileSystem();

  // Checkpoints (normally exactly one; stale ones mean an interrupted
  // prune).
  auto entries = fs->ListDir(dir);
  if (!entries.ok()) {
    std::fprintf(stderr, "error: %s\n", entries.status().ToString().c_str());
    return 2;
  }
  uint64_t newest_ckpt = 0;
  bool have_ckpt = false;
  for (const auto& name : entries.value()) {
    uint64_t lsn = 0;
    if (ParseCheckpointName(name, &lsn)) {
      auto size = fs->FileSize(dir + "/" + name);
      std::printf("checkpoint  %s  lsn=%" PRIu64 "  %" PRIu64 " bytes\n",
                  name.c_str(), lsn,
                  size.ok() ? size.value() : uint64_t{0});
      if (!have_ckpt || lsn > newest_ckpt) newest_ckpt = lsn;
      have_ckpt = true;
    }
  }
  if (!have_ckpt) std::printf("checkpoint  (none)\n");

  auto segments = ListWalSegments(fs, dir);
  if (!segments.ok()) {
    std::fprintf(stderr, "error: %s\n", segments.status().ToString().c_str());
    return 2;
  }

  // Scan from lsn 0 so the full log is validated, not just the part a
  // recovery would replay; tally per-segment ranges from the records.
  struct SegmentTally {
    uint64_t first = 0, last = 0, records = 0;
  };
  std::map<std::string, SegmentTally> tallies;
  for (const auto& seg : segments.value()) tallies[seg.name];

  auto scanned = ScanWal(
      fs, dir, /*min_lsn=*/0,
      [&](uint64_t lsn, WalRecordType type, std::string_view payload) {
        // Records sort into segments by filename first-LSN.
        std::string owner;
        for (const auto& seg : segments.value()) {
          if (seg.first_lsn <= lsn) owner = seg.name;
        }
        if (!owner.empty()) {
          auto& tally = tallies[owner];
          if (tally.records == 0) tally.first = lsn;
          tally.last = lsn;
          ++tally.records;
        }
        if (dump_records) {
          std::printf("record      lsn=%" PRIu64 "  %-10s  %zu bytes\n", lsn,
                      TypeName(type), payload.size());
        }
        return Status::OK();
      });
  if (!scanned.ok()) {
    std::fprintf(stderr, "error: %s\n", scanned.status().ToString().c_str());
    return 2;
  }
  const WalScanStats& stats = scanned.value();

  for (const auto& seg : segments.value()) {
    const SegmentTally& tally = tallies[seg.name];
    auto size = fs->FileSize(dir + "/" + seg.name);
    if (tally.records > 0) {
      std::printf("segment     %s  lsn=[%" PRIu64 ", %" PRIu64 "]  %" PRIu64
                  " record(s)  %" PRIu64 " bytes\n",
                  seg.name.c_str(), tally.first, tally.last, tally.records,
                  size.ok() ? size.value() : uint64_t{0});
    } else {
      std::printf("segment     %s  (no valid records)  %" PRIu64 " bytes\n",
                  seg.name.c_str(), size.ok() ? size.value() : uint64_t{0});
    }
  }

  std::printf("log         %" PRIu64 " record(s), last lsn %" PRIu64 ", %" PRIu64
              " byte(s) valid\n",
              stats.records, stats.last_lsn, stats.bytes);
  if (have_ckpt) {
    std::printf("recovery    would replay lsn (%" PRIu64 ", %" PRIu64 "]\n",
                newest_ckpt,
                stats.last_lsn > newest_ckpt ? stats.last_lsn : newest_ckpt);
  }

  if (stats.truncated) {
    std::printf("TRUNCATED   %s at %s+%" PRIu64
                " — recovery will chop the tail here\n",
                stats.truncate_reason.c_str(), stats.truncate_segment.c_str(),
                stats.truncate_offset);
    for (const auto& orphan : stats.orphan_segments) {
      std::printf("ORPHAN      %s (unreachable past the truncation point)\n",
                  orphan.c_str());
    }
    return 1;
  }
  std::printf("intact      no torn or corrupt records\n");
  return 0;
}
