// ecrpq-serverd: stand-alone serving daemon for ECRPQ graph queries.
//
//   $ ecrpq_serverd --port 7687 --graph data.txt --stats-interval 10
//   $ ecrpq_serverd --data-dir /var/lib/ecrpq --fsync interval
//
// Loads a graph (text format of graph/io.h; a small demo graph without
// --graph), binds the serving subsystem of src/server/, and runs until
// SIGINT/SIGTERM, then drains: in-flight queries are cancelled through
// their tokens and every thread is joined before exit. The bound port is
// printed on stdout as "LISTENING <port>" so harnesses using --port 0
// (ephemeral) can discover it.
//
// With --data-dir the server runs on the durable write path (src/wal/):
// the directory is flock'd against double-serving, crash recovery runs
// before the listener binds (checkpoint + WAL-tail replay), MUTATE acks
// imply the --fsync durability point, and the SIGTERM drain flushes and
// fsyncs the log before exit. If the log degrades at runtime (sick
// disk), writes are rejected with a typed DEGRADED error while reads
// keep serving; the main loop probes for recovery each tick.

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "api/api.h"
#include "graph/io.h"
#include "server/server.h"
#include "wal/durable.h"
#include "wal/wal.h"

using namespace ecrpq;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

GraphDb DemoGraph() {
  GraphDb g;
  NodeId ann = g.AddNode("ann");
  NodeId bob = g.AddNode("bob");
  NodeId eva = g.AddNode("eva");
  NodeId leo = g.AddNode("leo");
  g.AddEdge(ann, "advisor", eva);
  g.AddEdge(bob, "advisor", eva);
  g.AddEdge(eva, "advisor", leo);
  g.AddEdge(bob, "coauthor", ann);
  return g;
}

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --port N           TCP port (default 7687; 0 = ephemeral)\n"
      << "  --bind ADDR        bind address (default 127.0.0.1)\n"
      << "  --graph FILE       graph file (default: demo graph)\n"
      << "  --format FMT       graph file format: text (directive format)\n"
      << "                     or edgelist (ecrpq-edgelist bulk format,\n"
      << "                     for multi-million-edge loads)\n"
      << "  --executors N      executor threads (0 = hardware default)\n"
      << "  --max-in-flight N  concurrent executes before queueing\n"
      << "  --max-queue N      queued executes before OVERLOADED\n"
      << "  --cache-capacity N result-cache entries (0 disables)\n"
      << "  --cache-max-rows N largest memoizable result\n"
      << "  --max-result-rows N rows materialized per execute before the\n"
      << "                     result is truncated+flagged (0 = unlimited)\n"
      << "  --query-threads N  worker lanes per query (default 1)\n"
      << "  --stats-interval N periodic serving log line every N seconds\n"
      << "  --data-dir DIR     durable mode: WAL + checkpoints in DIR\n"
      << "                     (recovers on start; --graph seeds only a\n"
      << "                     fresh DIR)\n"
      << "  --fsync POLICY     always|interval|never (default always):\n"
      << "                     when a MUTATE ack implies data on disk\n"
      << "  --fsync-interval-ms N  flusher period for --fsync interval\n"
      << "  --wal-segment-bytes N  WAL segment rotation size\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ServingOptions options;
  options.port = 7687;
  std::string graph_file;
  std::string graph_format = "text";
  std::string data_dir;
  DurabilityOptions durability;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_int = [&](int* out) {
      if (i + 1 >= argc) return false;
      *out = std::atoi(argv[++i]);
      return true;
    };
    int value = 0;
    if (arg == "--port" && next_int(&value)) {
      options.port = value;
    } else if (arg == "--bind" && i + 1 < argc) {
      options.bind_address = argv[++i];
    } else if (arg == "--graph" && i + 1 < argc) {
      graph_file = argv[++i];
    } else if (arg == "--format" && i + 1 < argc) {
      graph_format = argv[++i];
      if (graph_format != "text" && graph_format != "edgelist") {
        return Usage(argv[0]);
      }
    } else if (arg == "--executors" && next_int(&value)) {
      options.executor_threads = value;
    } else if (arg == "--max-in-flight" && next_int(&value)) {
      options.max_in_flight = value;
    } else if (arg == "--max-queue" && next_int(&value)) {
      options.max_queue = value;
    } else if (arg == "--cache-capacity" && next_int(&value)) {
      options.cache_capacity = static_cast<size_t>(value);
    } else if (arg == "--cache-max-rows" && next_int(&value)) {
      options.cache_max_rows = static_cast<size_t>(value);
    } else if (arg == "--max-result-rows" && next_int(&value)) {
      options.max_result_rows = static_cast<uint64_t>(value);
    } else if (arg == "--query-threads" && next_int(&value)) {
      options.query_threads = value;
    } else if (arg == "--stats-interval" && next_int(&value)) {
      options.stats_interval_sec = value;
    } else if (arg == "--data-dir" && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (arg == "--fsync" && i + 1 < argc) {
      auto policy = ParseFsyncPolicy(argv[++i]);
      if (!policy.ok()) {
        std::cerr << policy.status().ToString() << "\n";
        return Usage(argv[0]);
      }
      durability.fsync = policy.value();
    } else if (arg == "--fsync-interval-ms" && next_int(&value)) {
      durability.fsync_interval_ms = value;
    } else if (arg == "--wal-segment-bytes" && next_int(&value)) {
      durability.segment_bytes = static_cast<uint64_t>(value);
    } else {
      return Usage(argv[0]);
    }
  }

  GraphDb graph = DemoGraph();
  if (!graph_file.empty()) {
    std::ifstream in(graph_file);
    if (!in) {
      std::cerr << "cannot open " << graph_file << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto parsed = graph_format == "edgelist"
                      ? ParseEdgeListText(buffer.str())
                      : ParseGraphText(buffer.str());
    if (!parsed.ok()) {
      std::cerr << parsed.status().ToString() << "\n";
      return 1;
    }
    graph = std::move(parsed).value();
  }

  std::unique_ptr<Database> durable_db;
  Database* db_ptr = nullptr;
  if (!data_dir.empty()) {
    WalRecoveryInfo recovery;
    auto opened = Database::OpenDurable(data_dir, durability, {},
                                        std::move(graph), &recovery);
    if (!opened.ok()) {
      std::cerr << "durable open failed: " << opened.status().ToString()
                << "\n";
      return 1;
    }
    durable_db = std::move(opened).value();
    db_ptr = durable_db.get();
    std::cerr << "ecrpq-serverd durable data-dir " << data_dir << " (fsync="
              << FsyncPolicyName(durability.fsync) << "): checkpoint lsn "
              << recovery.checkpoint_lsn << ", replayed " << recovery.replayed
              << " record(s) to lsn " << recovery.last_lsn
              << (recovery.tail_truncated
                      ? ", truncated torn tail (" + recovery.truncate_reason +
                            ")"
                      : "")
              << "\n";
  } else {
    durable_db = std::make_unique<Database>(std::move(graph));
    db_ptr = durable_db.get();
  }
  Database& db = *db_ptr;
  Server server(&db, options);
  Status status = server.Start();
  if (!status.ok()) {
    std::cerr << "start failed: " << status.ToString() << "\n";
    return 1;
  }
  std::cerr << "ecrpq-serverd serving " << db.graph().num_nodes()
            << " nodes / " << db.graph().num_edges() << " edges on "
            << options.bind_address << ":" << server.port() << " ("
            << server.options().executor_threads << " executors, "
            << server.admission().max_in_flight() << "+"
            << server.admission().max_queue() << " admission)\n";
  std::cout << "LISTENING " << server.port() << std::endl;

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  bool was_degraded = false;
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (db.durable()) {
      // Cheap when healthy; when degraded this retries tail repair and
      // any pending checkpoint so the write path heals without a
      // restart.
      bool healthy = db.ProbeDurability();
      if (!healthy && !was_degraded) {
        std::cerr << "ecrpq-serverd WAL degraded: rejecting writes, "
                     "probing for recovery\n";
      } else if (healthy && was_degraded) {
        std::cerr << "ecrpq-serverd WAL recovered: accepting writes\n";
      }
      was_degraded = !healthy;
    }
  }
  std::cerr << "ecrpq-serverd draining...\n";
  server.Stop();
  if (db.durable()) {
    // Drain the log: anything acked under fsync=interval/never becomes
    // durable before the process exits.
    Status flushed = db.FlushDurable();
    if (flushed.ok()) {
      std::cerr << "ecrpq-serverd WAL flushed to lsn " << db.applied_lsn()
                << "\n";
    } else {
      std::cerr << "ecrpq-serverd WAL flush failed: " << flushed.ToString()
                << "\n";
    }
  }
  std::cerr << "ecrpq-serverd stopped cleanly\n";
  return 0;
}
