// ecrpq_client: command-line driver for ecrpq-serverd.
//
//   ecrpq_client [--host H] [--port P] [--retries N] <command> [args]
//
//   --retries N  retry connect-refused and OVERLOADED sheds up to N
//                times with capped exponential backoff + jitter
//                (default 0: fail fast). Terminal ERROR replies —
//                including DEGRADED write rejections — always exit
//                nonzero, never retry.
//
//   query "<text>" [--param name=value]... [--deadline MS] [--limit N]
//                  [--page N] [--nocache]
//       prepare + execute + fetch every page, print the rows
//   stats            print the server's key=value counters
//   mutate F L T [F L T ...]
//       append edges (from label to; unknown node names are created)
//   mutate --edgelist FILE [--batch N]
//       bulk ingest: parse FILE in the ecrpq-edgelist format (graph/io.h)
//       client-side and stream its edges as mutate batches of N edges
//       (default 50000). Node id i lands on the server as node "n<i>"
//   cancel-test "<text>"
//       pipeline an execute, cancel it out-of-band, and report whether
//       the server answered Cancelled (exit 0) or completed first
//   malformed
//       send an unframeable byte stream and verify the server replies
//       ERROR and closes the connection (exit 0 when it does)
//
// Exit codes: 0 success, 1 server/protocol error, 2 usage.

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/io.h"
#include "server/client.h"

using namespace ecrpq;

namespace {

int Usage() {
  std::cerr << "usage: ecrpq_client [--host H] [--port P] [--retries N] "
               "query|stats|mutate|cancel-test|malformed ...\n";
  return 2;
}

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

void PrintPage(const Client::RowsPage& page) {
  for (const auto& row : page.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      std::cout << (i ? "\t" : "") << row[i];
    }
    std::cout << "\n";
  }
}

int RunQuery(Client& client, const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  Client::ExecuteSpec spec;
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--param" && i + 1 < args.size()) {
      const std::string& kv = args[++i];
      size_t eq = kv.find('=');
      if (eq == std::string::npos) return Usage();
      spec.params.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (args[i] == "--deadline" && i + 1 < args.size()) {
      spec.deadline_ms = static_cast<uint32_t>(std::atoi(args[++i].c_str()));
    } else if (args[i] == "--limit" && i + 1 < args.size()) {
      spec.row_limit = static_cast<uint64_t>(std::atoll(args[++i].c_str()));
    } else if (args[i] == "--page" && i + 1 < args.size()) {
      spec.page_size = static_cast<uint32_t>(std::atoi(args[++i].c_str()));
    } else if (args[i] == "--nocache") {
      spec.bypass_cache = true;
    } else {
      return Usage();
    }
  }
  uint32_t stmt_id = 0;
  Status status = client.Prepare(args[0], &stmt_id);
  if (!status.ok()) return Fail(status);
  Client::RowsPage page;
  status = client.Execute(stmt_id, spec, &page);
  if (!status.ok()) return Fail(status);
  size_t total = page.rows.size();
  // Only the execute's first page carries the from-cache flag; fetched
  // continuation pages come out of the cursor either way.
  const bool from_cache = page.from_cache;
  const bool truncated = page.truncated;
  PrintPage(page);
  while (!page.done && page.cursor_id != 0) {
    status = client.Fetch(page.cursor_id, spec.page_size, &page);
    if (!status.ok()) return Fail(status);
    total += page.rows.size();
    PrintPage(page);
  }
  std::cerr << total << " row(s)" << (from_cache ? " [cached]" : "")
            << (truncated ? " [truncated by server max-result-rows]" : "")
            << "\n";
  return 0;
}

int RunStats(Client& client) {
  std::string text;
  Status status = client.Stats(&text);
  if (!status.ok()) return Fail(status);
  std::cout << text;
  return 0;
}

// Streams an ecrpq-edgelist file as mutate batches. The file's anonymous
// node ids become server node names "n<i>" (the server creates unknown
// names), so ingest into a fresh server reproduces the file's topology;
// labels travel by name and are interned server-side. Batching keeps
// each frame far under kMaxFrameBody and bounds the writer's exclusive
// section per batch.
int RunMutateEdgeList(Client& client, const std::string& file,
                      size_t batch_size) {
  std::ifstream in(file);
  if (!in) {
    std::cerr << "cannot open " << file << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = ParseEdgeListText(buffer.str());
  if (!parsed.ok()) return Fail(parsed.status());
  const GraphDb& graph = parsed.value();

  auto name = [](NodeId id) { return "n" + std::to_string(id); };
  std::vector<std::array<std::string, 3>> edges;
  edges.reserve(batch_size);
  uint64_t nodes = 0, count = 0, sent = 0, batches = 0;
  auto flush = [&]() -> Status {
    if (edges.empty()) return Status::OK();
    Status status = client.Mutate(edges, &nodes, &count);
    sent += edges.size();
    ++batches;
    edges.clear();
    return status;
  };
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const auto& [label, to] : graph.Out(v)) {
      edges.push_back({name(v), graph.alphabet().Label(label), name(to)});
      if (edges.size() >= batch_size) {
        Status status = flush();
        if (!status.ok()) return Fail(status);
      }
    }
  }
  Status status = flush();
  if (!status.ok()) return Fail(status);
  std::cerr << "sent " << sent << " edge(s) in " << batches
            << " batch(es)\n";
  std::cout << "graph now " << nodes << " nodes / " << count << " edges\n";
  return 0;
}

int RunMutate(Client& client, const std::vector<std::string>& args) {
  if (!args.empty() && args[0] == "--edgelist") {
    if (args.size() < 2) return Usage();
    size_t batch_size = 50000;
    if (args.size() >= 4 && args[2] == "--batch") {
      batch_size = static_cast<size_t>(std::atoll(args[3].c_str()));
      if (batch_size == 0) return Usage();
    } else if (args.size() != 2) {
      return Usage();
    }
    return RunMutateEdgeList(client, args[1], batch_size);
  }
  if (args.empty() || args.size() % 3 != 0) return Usage();
  std::vector<std::array<std::string, 3>> edges;
  for (size_t i = 0; i < args.size(); i += 3) {
    edges.push_back({args[i], args[i + 1], args[i + 2]});
  }
  uint64_t nodes = 0;
  uint64_t count = 0;
  Status status = client.Mutate(edges, &nodes, &count);
  if (!status.ok()) return Fail(status);
  std::cout << "graph now " << nodes << " nodes / " << count << " edges\n";
  return 0;
}

int RunCancelTest(Client& client, const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  uint32_t stmt_id = 0;
  Status status = client.Prepare(args[0], &stmt_id);
  if (!status.ok()) return Fail(status);
  Client::ExecuteSpec spec;
  spec.bypass_cache = true;
  uint32_t request_id = 0;
  status = client.SendExecute(stmt_id, spec, &request_id);
  if (!status.ok()) return Fail(status);
  status = client.Cancel(request_id);
  if (!status.ok()) return Fail(status);
  Client::RowsPage page;
  status = client.AwaitRows(request_id, &page);
  if (status.code() == StatusCode::kCancelled) {
    std::cout << "cancelled as requested\n";
    return 0;
  }
  if (status.ok()) {
    // Legal race: the execute finished before the cancel landed.
    std::cout << "completed before cancel (" << page.rows.size()
              << " rows)\n";
    return 0;
  }
  return Fail(status);
}

int RunMalformed(Client& client) {
  // A length prefix far beyond kMaxFrameBody: unframeable, so the server
  // must answer one ERROR frame and close the connection.
  const uint8_t lying[8] = {0xff, 0xff, 0xff, 0x7f, 0x01, 0x02, 0x03, 0x04};
  Status status = client.SendRaw(lying, sizeof(lying));
  if (!status.ok()) return Fail(status);
  Frame reply;
  status = client.ReadFrame(&reply);
  if (!status.ok()) return Fail(status);
  if (reply.type != MsgType::kError) {
    std::cerr << "expected ERROR, got type "
              << static_cast<int>(reply.type) << "\n";
    return 1;
  }
  status = client.ReadFrame(&reply);
  if (status.ok()) {
    std::cerr << "expected the server to close the connection\n";
    return 1;
  }
  std::cout << "malformed stream rejected and connection closed\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 7687;
  int retries = 0;
  int i = 1;
  for (; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--retries" && i + 1 < argc) {
      retries = std::atoi(argv[++i]);
      if (retries < 0) return Usage();
    } else {
      break;
    }
  }
  if (i >= argc) return Usage();
  std::string command = argv[i++];
  std::vector<std::string> args(argv + i, argv + argc);

  Client client;
  if (retries > 0) {
    Client::RetryPolicy policy;
    policy.retries = retries;
    // Seed jitter per process so parallel clients (the CI mutate storm)
    // don't retry in lockstep.
    policy.jitter_seed = static_cast<uint64_t>(getpid());
    client.set_retry_policy(policy);
  }
  Status status = client.Connect(host, port);
  if (!status.ok()) return Fail(status);

  if (command == "query") return RunQuery(client, args);
  if (command == "stats") return RunStats(client);
  if (command == "mutate") return RunMutate(client, args);
  if (command == "cancel-test") return RunCancelTest(client, args);
  if (command == "malformed") return RunMalformed(client);
  return Usage();
}
