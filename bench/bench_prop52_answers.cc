// Proposition 5.2: the answer automaton representing all output path
// tuples for a fixed head binding is constructible in time polynomial in
// |E|. Measured shape: construction time and automaton size grow
// polynomially with the graph.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/eval_product.h"

namespace {

using namespace ecrpq;
using namespace ecrpq_bench;

void BM_Prop52_BuildAnswerAutomaton(benchmark::State& state) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  Rng rng(29);
  int nodes = static_cast<int>(state.range(0));
  GraphDb g = RandomGraph(alphabet, nodes, 3 * nodes, &rng);
  Query query = MustParse(g, "Ans(x, y, p) <- (x, p, y), (ab)*a(p)");
  EvalOptions options;
  options.max_configs = 50000000;
  int states = 0;
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto answers = BuildPathAnswerSet(g, query, options, {0, 1});
    timer.End();
    if (!answers.ok()) {
      state.SkipWithError(answers.status().ToString().c_str());
      break;
    }
    states = answers.value().num_states();
    benchmark::DoNotOptimize(states);
  }
  state.counters["edges"] = g.num_edges();
  state.counters["automaton_states"] = static_cast<double>(states);
  RecordBenchCase("Prop52_BuildAnswerAutomaton/" + std::to_string(nodes),
                  timer,
                  {{"nodes", static_cast<double>(nodes)},
                   {"edges", static_cast<double>(g.num_edges())},
                   {"states", static_cast<double>(states)}});
}
BENCHMARK(BM_Prop52_BuildAnswerAutomaton)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

// Representation operations on a fixed (infinite) answer set.
void BM_Prop52_CountAndEnumerate(benchmark::State& state) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g = CycleGraph(alphabet, 6, "a");
  Query query = MustParse(g, "Ans(x, p) <- (x, p, x), a+(p)");
  EvalOptions options;
  Evaluator evaluator(&g, options);
  auto result = evaluator.Evaluate(query);
  if (!result.ok()) {
    state.SkipWithError(result.status().ToString().c_str());
    return;
  }
  const PathAnswerSet& answers = result.value().path_answers(0);
  const int max_len = static_cast<int>(state.range(0));
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    benchmark::DoNotOptimize(answers.IsInfinite());
    benchmark::DoNotOptimize(answers.CountTuples(max_len));
    benchmark::DoNotOptimize(answers.Enumerate(16, max_len).size());
    timer.End();
  }
  state.counters["max_len"] = static_cast<double>(max_len);
  RecordBenchCase("Prop52_CountAndEnumerate/" + std::to_string(max_len),
                  timer, {{"max_len", static_cast<double>(max_len)}});
}
BENCHMARK(BM_Prop52_CountAndEnumerate)
    ->Arg(6)
    ->Arg(12)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond);

}  // namespace
