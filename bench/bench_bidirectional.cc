// Bidirectional meet-in-the-middle search vs. forward-only evaluation on
// anchored high-fan-out workloads.
//
// The workload family is a deep layered DAG (every node fans out to
// `fanout` random nodes of the next layer), where the classical forward
// search must sweep the full downstream cone of the source anchor while
// the meet-in-the-middle search only explores two small balls that touch
// near the target's layer:
//
//   AnchoredScan     ("s", p, "t") with a regular language: the
//                    ReachabilityScan leaf anchored on both sides —
//                    forward explores every layer, bidirectional stops
//                    at the meet
//   AnchoredProduct  two eq-synchronized anchored atoms: the
//                    ProductExpand leaf (subset-tracking convolution
//                    search) under the same anchoring
//   ConstTarget      (x, p, "t"): free source, constant target — one
//                    backward search over the reversed tape instead of
//                    |V| forward searches
//
// Each case runs the same query with EvalOptions::direction forced to
// forward (the pre-direction engine behavior) and to the direction the
// planner would pick; BENCH_bench_bidirectional.json records the
// medians, and the writer prints bidirectional-vs-forward and
// backward-vs-forward speedups at exit, so CI measures the win instead
// of asserting it (the smoke step gates on >= 1.5x for the anchored
// scan).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace ecrpq;
using namespace ecrpq_bench;

// Layered DAG with NAMED nodes ("L<layer>_<i>") so queries can anchor
// constants on specific layers.
GraphDb NamedLayeredGraph(int layers, int width, int fanout,
                          uint64_t seed = 42) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  Rng rng(seed);
  GraphDb g(alphabet);
  for (int l = 0; l < layers; ++l) {
    for (int i = 0; i < width; ++i) {
      g.AddNode("L" + std::to_string(l) + "_" + std::to_string(i));
    }
  }
  for (int l = 0; l + 1 < layers; ++l) {
    for (int i = 0; i < width; ++i) {
      NodeId from = static_cast<NodeId>(l * width + i);
      for (int e = 0; e < fanout; ++e) {
        NodeId to =
            static_cast<NodeId>((l + 1) * width + rng.Below(width));
        g.AddEdge(from, rng.Chance(0.5) ? "a" : "b", to);
      }
    }
  }
  return g;
}

const char* DirName(SearchDirection dir) {
  switch (dir) {
    case SearchDirection::kForward:
      return "fwd";
    case SearchDirection::kBackward:
      return "bwd";
    case SearchDirection::kBidirectional:
      return "bidir";
    default:
      return "auto";
  }
}

void RunCase(benchmark::State& state, const std::string& family,
             const GraphDb& g, const std::string& query_text,
             SearchDirection dir, int arg) {
  Query query = MustParse(g, query_text);
  EvalOptions options;
  options.engine = Engine::kProduct;
  options.direction = dir;
  options.build_path_answers = false;
  options.max_configs = 500000000;
  Evaluator evaluator(&g, options);
  size_t answers = 0;
  double configs = 0;
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    answers = result.value().tuples().size();
    configs = static_cast<double>(result.value().stats().configs_explored);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["configs"] = configs;
  RecordBenchCase(family + "/" + DirName(dir) + "/" + std::to_string(arg),
                  timer,
                  {{"nodes", static_cast<double>(g.num_nodes())},
                   {"edges", static_cast<double>(g.num_edges())},
                   {"answers", static_cast<double>(answers)},
                   {"configs", configs}});
}

// ---- AnchoredScan: both endpoints constant, ReachabilityScan leaf ----
//
// The target sits at layer 10 of a `layers`-deep DAG: the forward sweep
// pays for every layer below the source, the meet-in-the-middle probe
// only for the ten layers between the anchors.
void AnchoredScan(benchmark::State& state, SearchDirection dir) {
  const int layers = static_cast<int>(state.range(0));
  GraphDb g = NamedLayeredGraph(layers, /*width=*/48, /*fanout=*/4);
  RunCase(state, "Bidirectional_AnchoredScan", g,
          R"(Ans() <- ("L0_0", p, "L10_7"), (a|b)*(p))", dir, layers);
}
BENCHMARK_CAPTURE(AnchoredScan, fwd, SearchDirection::kForward)
    ->Arg(64)
    ->Arg(96)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(AnchoredScan, bidir, SearchDirection::kBidirectional)
    ->Arg(64)
    ->Arg(96)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(AnchoredScan, auto, SearchDirection::kAuto)
    ->Arg(64)
    ->Arg(96)
    ->Unit(benchmark::kMillisecond);

// ---- AnchoredProduct: eq-synchronized anchored pair, ProductExpand ----
//
// Both tracks advance in lockstep (eq forces identical label sequences),
// so the forward cone is width² per layer; anchoring both ends lets the
// half-searches meet after ~8 layers instead of sweeping all of them.
void AnchoredProduct(benchmark::State& state, SearchDirection dir) {
  const int layers = static_cast<int>(state.range(0));
  GraphDb g = NamedLayeredGraph(layers, /*width=*/12, /*fanout=*/3);
  RunCase(state, "Bidirectional_AnchoredProduct", g,
          R"(Ans() <- ("L0_0", p, "L8_5"), ("L0_1", q, "L8_9"), eq(p, q))",
          dir, layers);
}
BENCHMARK_CAPTURE(AnchoredProduct, fwd, SearchDirection::kForward)
    ->Arg(40)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(AnchoredProduct, bidir, SearchDirection::kBidirectional)
    ->Arg(40)
    ->Unit(benchmark::kMillisecond);

// ---- ConstTarget: free source, constant target ----
//
// Forward-only evaluation enumerates every node as a candidate source
// (|V| scans); the backward direction runs ONE reversed-tape search from
// the target and reads the sources off its cone.
void ConstTarget(benchmark::State& state, SearchDirection dir) {
  const int layers = static_cast<int>(state.range(0));
  GraphDb g = NamedLayeredGraph(layers, /*width=*/24, /*fanout=*/3);
  RunCase(state, "Bidirectional_ConstTarget", g,
          R"(Ans(x) <- (x, p, "L12_3"), (a|b)*(p))", dir, layers);
}
BENCHMARK_CAPTURE(ConstTarget, fwd, SearchDirection::kForward)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(ConstTarget, bwd, SearchDirection::kBackward)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond);

}  // namespace
