// Section 4 application: ρ-isoAssociation over RDF/S-style graphs
// (Anyanwu & Sheth). Fixed query, growing synthetic property graphs — the
// data-complexity shape for a realistic workload.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "relations/builtin.h"

namespace {

using namespace ecrpq;
using namespace ecrpq_bench;

void BM_SemWeb_RhoIsoAssociation(benchmark::State& state) {
  Rng rng(37);
  std::vector<std::pair<std::string, std::string>> subs;
  GraphDb g = RdfPropertyGraph(static_cast<int>(state.range(0)), 4, 2, &rng,
                               &subs);
  std::vector<std::pair<Symbol, Symbol>> pairs;
  for (const auto& [child, parent] : subs) {
    pairs.emplace_back(*g.alphabet().Find(child),
                       *g.alphabet().Find(parent));
  }
  RelationRegistry registry = RelationRegistry::Default();
  registry.Register("rho",
                    std::make_shared<RegularRelation>(RhoIsomorphismRelation(
                        g.alphabet().size(), pairs)));
  auto query = ParseQuery(
      "Ans() <- (x, pi1, z1), (y, pi2, z2), rho(pi1, pi2), .+(pi1)",
      g.alphabet(), registry);
  if (!query.ok()) {
    state.SkipWithError(query.status().ToString().c_str());
    return;
  }
  EvalOptions options;
  options.build_path_answers = false;
  options.max_configs = 100000000;
  Evaluator evaluator(&g, options);
  uint64_t configs = 0;
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query.value());
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    configs = result.value().stats().configs_explored;
  }
  state.counters["resources"] = static_cast<double>(state.range(0));
  state.counters["configs"] = static_cast<double>(configs);
  RecordBenchCase("SemWeb_RhoIsoAssociation/" +
                      std::to_string(state.range(0)),
                  timer,
                  {{"resources", static_cast<double>(state.range(0))},
                   {"nodes", static_cast<double>(g.num_nodes())},
                   {"configs", static_cast<double>(configs)}});
}
BENCHMARK(BM_SemWeb_RhoIsoAssociation)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Returning the witnessing property sequences (path outputs) for one
// association (the ρ-query of Section 4 with head path variables).
void BM_SemWeb_PropertySequenceOutput(benchmark::State& state) {
  Rng rng(41);
  std::vector<std::pair<std::string, std::string>> subs;
  GraphDb g = RdfPropertyGraph(static_cast<int>(state.range(0)), 3, 2, &rng,
                               &subs);
  std::vector<std::pair<Symbol, Symbol>> pairs;
  for (const auto& [child, parent] : subs) {
    pairs.emplace_back(*g.alphabet().Find(child),
                       *g.alphabet().Find(parent));
  }
  RelationRegistry registry = RelationRegistry::Default();
  registry.Register("rho",
                    std::make_shared<RegularRelation>(RhoIsomorphismRelation(
                        g.alphabet().size(), pairs)));
  auto query = ParseQuery(
      R"(Ans(pi1, pi2) <- ("r0", pi1, z1), ("r1", pi2, z2), rho(pi1, pi2))",
      g.alphabet(), registry);
  if (!query.ok()) {
    state.SkipWithError(query.status().ToString().c_str());
    return;
  }
  EvalOptions options;
  options.max_configs = 100000000;
  Evaluator evaluator(&g, options);
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query.value());
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    if (!result.value().tuples().empty()) {
      benchmark::DoNotOptimize(
          result.value().path_answers(0).CountTuples(4));
    }
  }
  state.counters["resources"] = static_cast<double>(state.range(0));
  RecordBenchCase("SemWeb_PropertySequenceOutput/" +
                      std::to_string(state.range(0)),
                  timer,
                  {{"resources", static_cast<double>(state.range(0))},
                   {"nodes", static_cast<double>(g.num_nodes())}});
}
BENCHMARK(BM_SemWeb_PropertySequenceOutput)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace
