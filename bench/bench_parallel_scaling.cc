// Morsel-driven parallel execution: thread-count scaling on the hottest
// engine paths, measured by the bench itself (BENCH json + twin-speedup
// lines at exit; CI greps the 1→4 speedup).
//
// Two tiers at num_threads ∈ {1, 2, 4, 8}:
//
// tiny/ — the original 72/40-node cases. Too small to show scaling by
// design (the adaptive grain keeps most of their work serial); they are
// kept as SERIAL-REGRESSION GUARDS: their threads/1 medians are diffed
// against the committed baselines to prove the parallel machinery costs
// the legacy path nothing.
//
//   tiny/ProductSearch  an eq-synchronized two-track component with one
//                       free start variable — V independent product
//                       searches, morsel-partitioned over the seeds
//   tiny/PlannerJoin    the cross-component planner workload of
//                       bench_planner_join (selective scan seeding an
//                       expensive eq component)
//
// large/ — the scaling tier (10^5–10^6 nodes, >10^6 edges; the CI gate
// reads the parallel-1to{4,8} lines of these cases):
//
//   large/GridProduct   ONE anchored product search on a 1000x1000
//                       labeled grid (10^6 nodes, ~3M edges): two
//                       eq-synchronized tracks from the corner under a
//                       24-step length bound — a single shared frontier
//                       growing to tens of thousands of configurations
//                       per level, i.e. exactly the level-synchronous
//                       lock-free expansion path
//   large/PowerLawScan  reachability scan over a 2^17-node / 1.3M-edge
//                       preferential-attachment graph (one bounded BFS
//                       per source node, morsel-partitioned)
//
// num_threads=1 is the exact legacy serial path, so the t1 cases double
// as the regression guard against prior-PR medians.
//
// ConcurrentClients is tier-free: 16 client threads sharing ONE Database
// and ONE prepared query (plan-cache + snapshot protocol), measuring the
// api layer's inter-query parallelism.

#include <benchmark/benchmark.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/api.h"
#include "bench_util.h"
#include "graph/generators.h"

namespace {

using namespace ecrpq;
using namespace ecrpq_bench;

// Dense {a, b} random graph with `rare` additional c-edges (the planner
// workload of bench_planner_join).
GraphDb CrossComponentGraph(int nodes, int rare, uint64_t seed = 42) {
  auto alphabet = Alphabet::FromLabels({"a", "b", "c"});
  Rng rng(seed);
  GraphDb g(alphabet);
  for (int i = 0; i < nodes; ++i) g.AddNode("n" + std::to_string(i));
  for (int e = 0; e < 3 * nodes; ++e) {
    g.AddEdge(static_cast<NodeId>(rng.Below(nodes)),
              rng.Chance(0.5) ? "a" : "b",
              static_cast<NodeId>(rng.Below(nodes)));
  }
  for (int i = 0; i < rare; ++i) {
    g.AddEdge(static_cast<NodeId>(rng.Below(nodes)), "c",
              static_cast<NodeId>(rng.Below(nodes)));
  }
  return g;
}

// One shared start variable, two synchronized tracks: V start
// assignments, each an independent product search (Thm 6.1 machinery).
const char* kProductQuery =
    "Ans(y, z) <- (x, p, y), (x, q, z), eq(p, q)";

// Selective scan component + expensive eq component joined on x.
const char* kPlannerJoinQuery =
    "Ans(x, w) <- (x, p, u), c(p), (x, q, v), (v, r, w), eq(q, r)";

void RunScaling(benchmark::State& state, const char* case_name,
                const GraphDb& g, const std::string& query_text) {
  const int threads = static_cast<int>(state.range(0));
  Query query = MustParse(g, query_text);
  EvalOptions options;
  options.engine = Engine::kProduct;
  options.build_path_answers = false;
  options.max_configs = 500000000;
  options.num_threads = threads;
  Evaluator evaluator(&g, options);
  size_t answers = 0;
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    answers = result.value().tuples().size();
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
  RecordBenchCase(std::string(case_name) + "/threads/" +
                      std::to_string(threads),
                  timer,
                  {{"nodes", static_cast<double>(g.num_nodes())},
                   {"edges", static_cast<double>(g.num_edges())},
                   {"threads", static_cast<double>(threads)},
                   {"answers", static_cast<double>(answers)}});
}

void TinyProductSearch(benchmark::State& state) {
  GraphDb g = MakeRandomGraph(72);
  RunScaling(state, "tiny/ProductSearch", g, kProductQuery);
}
BENCHMARK(TinyProductSearch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void TinyPlannerJoin(benchmark::State& state) {
  GraphDb g = CrossComponentGraph(40, /*rare=*/3);
  RunScaling(state, "tiny/PlannerJoin", g, kPlannerJoinQuery);
}
BENCHMARK(TinyPlannerJoin)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// 1000x1000 labeled grid (right/down/diagonal edges, 4 labels): one
// anchored two-track eq search from the corner. The 24-fold letter group
// bounds the word length, so the branching factor (~outdeg^2 / labels =
// 2.25 per level) grows the shared frontier to the distinct-pair cap of
// each level (~10^5 configurations) and the search cuts off at level 24
// when the length automaton runs dry — a single large product search,
// the workload the level-synchronous expansion exists for.
void LargeGridProduct(benchmark::State& state) {
  static const GraphDb& g = *[] {
    auto alphabet = Alphabet::FromLabels({"a", "b", "c", "d"});
    Rng rng(42);
    return new GraphDb(GridGraph(alphabet, 1000, 1000, &rng));
  }();
  std::string letter = "(a|b|c|d)";
  std::string bounded;
  for (int i = 0; i < 24; ++i) bounded += letter;
  RunScaling(state, "large/GridProduct", g,
             "Ans(y, z) <- (\"g0_0\", p, y), (\"g0_0\", q, z), eq(p, q), " +
                 bounded + "(p)");
}
BENCHMARK(LargeGridProduct)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// 2^17-node preferential-attachment graph, 10 edges per node: one
// bounded reachability BFS per source node (aaaa = exactly four a-steps),
// morsel-partitioned over the sources.
void LargePowerLawScan(benchmark::State& state) {
  static const GraphDb& g = *[] {
    auto alphabet = Alphabet::FromLabels({"a", "b", "c", "d"});
    Rng rng(42);
    return new GraphDb(
        PowerLawGraph(alphabet, 1 << 17, 10 * (1 << 17), &rng));
  }();
  RunScaling(state, "large/PowerLawScan", g,
             "Ans(x) <- (x, p, y), aaaa(p)");
}
BENCHMARK(LargePowerLawScan)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// 16 clients × one shared Database: each iteration runs every client
// through `kPerClient` prepared executions (serial engines — this case
// measures the api layer's inter-query parallelism, not intra-query
// lanes). threads = OS client threads.
void ConcurrentClients(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  constexpr int kPerClient = 4;
  DatabaseOptions options;
  options.eval.num_threads = 1;
  options.eval.build_path_answers = false;
  Database db(MakeRandomGraph(56), options);
  auto prepared = db.Prepare("Ans(x, y) <- (x, p, y), (a|b)*(p)");
  if (!prepared.ok()) {
    state.SkipWithError(prepared.status().ToString().c_str());
    return;
  }
  MedianTimer timer;
  std::atomic<int> failures{0};
  for (auto _ : state) {
    timer.Begin();
    std::vector<std::thread> workers;
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&] {
        for (int i = 0; i < kPerClient; ++i) {
          auto result = prepared.value().ExecuteAll();
          if (!result.ok()) failures.fetch_add(1);
        }
      });
    }
    for (std::thread& t : workers) t.join();
    timer.End();
  }
  if (failures.load() > 0) {
    state.SkipWithError("concurrent execution failed");
    return;
  }
  RecordBenchCase("ConcurrentClients/clients/" + std::to_string(clients),
                  timer,
                  {{"clients", static_cast<double>(clients)},
                   {"per_client", static_cast<double>(kPerClient)}});
}
BENCHMARK(ConcurrentClients)
    ->Arg(1)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
