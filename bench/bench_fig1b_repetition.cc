// Figure 1(b), repetition columns (Proposition 6.8): allowing a repeated
// path variable makes CRPQ evaluation PSPACE-complete. Measured shape: the
// one-variable REI family (relational repetition) tracks the exponential
// ECRPQ curve, while the same languages on independent variables (a plain
// CRPQ) stay polynomial.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace ecrpq;
using namespace ecrpq_bench;

void RunQuery(benchmark::State& state, const std::string& case_name,
              const std::string& text) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = UniversalWordGraph(alphabet);
  Query query = MustParse(g, text);
  EvalOptions options;
  options.build_path_answers = false;
  options.max_configs = 100000000;
  Evaluator evaluator(&g, options);
  uint64_t configs = 0;
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    configs = result.value().stats().configs_explored;
  }
  state.counters["configs"] = static_cast<double>(configs);
  RecordBenchCase(case_name + "/" + std::to_string(state.range(0)), timer,
                  {{"expressions", static_cast<double>(state.range(0))},
                   {"nodes", static_cast<double>(g.num_nodes())},
                   {"edges", static_cast<double>(g.num_edges())},
                   {"configs", static_cast<double>(configs)}});
}

// One shared path variable constrained by m languages (repetition).
void BM_Fig1bRepetition_SharedVariable(benchmark::State& state) {
  RunQuery(state, "Fig1bRepetition_SharedVariable",
           ReiRepetitionQuery(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_Fig1bRepetition_SharedVariable)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);

// Control: independent variables, one language each (repetition-free
// CRPQ; stays cheap).
void BM_Fig1bRepetition_IndependentControl(benchmark::State& state) {
  RunQuery(state, "Fig1bRepetition_IndependentControl",
           IndependentLanguagesQuery(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_Fig1bRepetition_IndependentControl)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
