// Theorem 6.5: acyclicity makes CRPQ combined complexity PTIME, but does
// NOT help ECRPQs (the REI family is acyclic yet PSPACE-hard). Measured
// shape: acyclic CRPQ chains scale polynomially in query size; the acyclic
// REI ECRPQ grows exponentially on the same graph.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace ecrpq;
using namespace ecrpq_bench;

void BM_Thm65_AcyclicCrpqChains(benchmark::State& state) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = UniversalWordGraph(alphabet);
  Query query = MustParse(g, ChainCrpq(static_cast<int>(state.range(0))));
  EvalOptions options;
  options.build_path_answers = false;
  Evaluator evaluator(&g, options);
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value().tuples().size());
  }
  state.counters["atoms"] = static_cast<double>(state.range(0));
  RecordBenchCase("Thm65_AcyclicCrpqChains/" + std::to_string(state.range(0)),
                  timer, {{"atoms", static_cast<double>(state.range(0))}});
}
BENCHMARK(BM_Thm65_AcyclicCrpqChains)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMillisecond);

// The REI ECRPQ is acyclic (its relational part is a matching), yet
// exponential: acyclicity does not rescue ECRPQs (2nd bullet of Thm 6.5).
void BM_Thm65_AcyclicEcrpqRei(benchmark::State& state) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = UniversalWordGraph(alphabet);
  Query query = MustParse(g, ReiQuery(static_cast<int>(state.range(0))));
  EvalOptions options;
  options.build_path_answers = false;
  options.max_configs = 100000000;
  options.engine = Engine::kProduct;
  Evaluator evaluator(&g, options);
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value().AsBool());
  }
  state.counters["expressions"] = static_cast<double>(state.range(0));
  RecordBenchCase("Thm65_AcyclicEcrpqRei/" + std::to_string(state.range(0)),
                  timer,
                  {{"expressions", static_cast<double>(state.range(0))}});
}
BENCHMARK(BM_Thm65_AcyclicEcrpqRei)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);

// Ablation on the PTIME side: semi-join reduction on vs off for wide
// acyclic star queries.
void BM_Thm65_SemijoinAblation(benchmark::State& state) {
  GraphDb g = MakeRandomGraph(64, 3);
  const int branches = 5;
  std::string body;
  for (int i = 0; i < branches; ++i) {
    if (i > 0) body += ", ";
    body += "(x, p" + std::to_string(i) + ", y" + std::to_string(i) + ")";
  }
  for (int i = 0; i < branches; ++i) {
    body += std::string(", ") + (i % 2 ? "a*b" : "b*a") + "(p" +
            std::to_string(i) + ")";
  }
  Query query = MustParse(g, "Ans(x) <- " + body);
  EvalOptions options;
  options.build_path_answers = false;
  options.use_semijoin_reduction = (state.range(0) == 1);
  Evaluator evaluator(&g, options);
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value().tuples().size());
  }
  state.SetLabel(state.range(0) == 1 ? "semijoin-on" : "semijoin-off");
  RecordBenchCase(std::string("Thm65_SemijoinAblation/") +
                      (state.range(0) == 1 ? "on" : "off"),
                  timer, {{"branches", 5.0}});
}
BENCHMARK(BM_Thm65_SemijoinAblation)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);

}  // namespace
