// Section 4 application: approximate matching / sequence alignment.
// Measures (a) the size of the D≤k edit-distance relation automaton as k
// grows (composition construction) and (b) alignment query time over
// growing sequence pairs.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "relations/builtin.h"

namespace {

using namespace ecrpq;
using namespace ecrpq_bench;

void BM_EditDist_RelationConstruction(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  int states = 0;
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    RegularRelation rel = EditDistanceAtMostRelation(4, k);
    timer.End();
    states = rel.nfa().num_states();
    benchmark::DoNotOptimize(states);
  }
  state.counters["k"] = static_cast<double>(k);
  state.counters["automaton_states"] = static_cast<double>(states);
  RecordBenchCase("EditDist_RelationConstruction/" + std::to_string(k), timer,
                  {{"k", static_cast<double>(k)},
                   {"states", static_cast<double>(states)}});
}
BENCHMARK(BM_EditDist_RelationConstruction)
    ->DenseRange(1, 3)
    ->Unit(benchmark::kMillisecond);

void BM_EditDist_AlignmentQuery(benchmark::State& state) {
  auto alphabet = Alphabet::FromLabels({"a", "c", "g", "t"});
  Rng rng(31);
  const int n = static_cast<int>(state.range(0));
  Word x = RandomDna(alphabet, n, &rng);
  Word y = MutateWord(alphabet, x, 2, &rng);
  GraphDb g = TwoWordGraph(alphabet, x, y);
  RelationRegistry registry = RelationRegistry::Default();
  Query query = [&] {
    auto q = ParseQuery(
        R"(Ans() <- ("x0", p, "x)" + std::to_string(x.size()) +
            R"("), ("y0", q, "y)" + std::to_string(y.size()) +
            R"("), edit2(p, q))",
        g.alphabet(), registry);
    if (!q.ok()) std::abort();
    return std::move(q).value();
  }();
  EvalOptions options;
  options.build_path_answers = false;
  options.max_configs = 100000000;
  Evaluator evaluator(&g, options);
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value().AsBool());
  }
  state.counters["sequence_len"] = static_cast<double>(n);
  RecordBenchCase("EditDist_AlignmentQuery/" + std::to_string(n), timer,
                  {{"sequence_len", static_cast<double>(n)},
                   {"nodes", static_cast<double>(g.num_nodes())}});
}
BENCHMARK(BM_EditDist_AlignmentQuery)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

// Baseline: plain DP edit distance on the same words (what a hand-rolled
// implementation would do; the query engine pays for generality).
void BM_EditDist_DpBaseline(benchmark::State& state) {
  auto alphabet = Alphabet::FromLabels({"a", "c", "g", "t"});
  Rng rng(31);
  const int n = static_cast<int>(state.range(0));
  Word x = RandomDna(alphabet, n, &rng);
  Word y = MutateWord(alphabet, x, 2, &rng);
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    benchmark::DoNotOptimize(EditDistance(x, y));
    timer.End();
  }
  state.counters["sequence_len"] = static_cast<double>(n);
  RecordBenchCase("EditDist_DpBaseline/" + std::to_string(n), timer,
                  {{"sequence_len", static_cast<double>(n)}});
}
BENCHMARK(BM_EditDist_DpBaseline)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
