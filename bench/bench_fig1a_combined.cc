// Figure 1(a), combined-complexity row: evaluation time as the QUERY grows
// on a fixed graph. The paper's separations to reproduce:
//   * CRPQs: NP-complete, but chain-shaped instances scale polynomially
//   * ECRPQs: PSPACE-complete — the Theorem 6.3 REI family grows
//     exponentially with the number of intersected expressions.
// Each family runs twice — against the CSR GraphIndex and against the
// pre-index adjacency-scan path — and the indexed-vs-scan comparison is
// printed (and written to BENCH_bench_fig1a_combined.json) at exit.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace ecrpq;
using namespace ecrpq_bench;

// Chain CRPQs of growing length on a fixed graph (tractable shape). A
// layered DAG keeps the per-atom reachability relations sparse — on dense
// graphs the enumeration-join's intermediate results explode, which is the
// NP-hardness (join width) shape, shown separately below.
void CrpqChain(benchmark::State& state, bool use_index) {
  GraphDb g = MakeLayeredGraph(48, 5);
  Query query = MustParse(g, ChainCrpq(static_cast<int>(state.range(0))));
  EvalOptions options;
  options.build_path_answers = false;
  options.use_graph_index = use_index;
  Evaluator evaluator(&g, options);
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value().tuples().size());
  }
  state.counters["atoms"] = static_cast<double>(state.range(0));
  RecordBenchCase("Fig1aCombined_CrpqChain/" +
                      std::string(use_index ? "indexed" : "scan") + "/" +
                      std::to_string(state.range(0)),
                  timer,
                  {{"atoms", static_cast<double>(state.range(0))},
                   {"nodes", static_cast<double>(g.num_nodes())},
                   {"edges", static_cast<double>(g.num_edges())}});
}
BENCHMARK_CAPTURE(CrpqChain, indexed, true)
    ->DenseRange(1, 8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(CrpqChain, scan, false)
    ->DenseRange(1, 8)
    ->Unit(benchmark::kMillisecond);

// The REI family (Theorem 6.3's PSPACE-hardness): intersections of m
// periodic languages via equality relations, evaluated on the universal
// word graph. Time grows exponentially with m (the joint period is
// lcm(2,3,5,...)).
void EcrpqRei(benchmark::State& state, bool use_index) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = UniversalWordGraph(alphabet);
  Query query = MustParse(g, ReiQuery(static_cast<int>(state.range(0))));
  EvalOptions options;
  options.build_path_answers = false;
  options.max_configs = 100000000;
  options.engine = Engine::kProduct;
  options.use_graph_index = use_index;
  Evaluator evaluator(&g, options);
  uint64_t configs = 0;
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    configs = result.value().stats().configs_explored;
  }
  state.counters["expressions"] = static_cast<double>(state.range(0));
  state.counters["configs"] = static_cast<double>(configs);
  RecordBenchCase("Fig1aCombined_EcrpqRei/" +
                      std::string(use_index ? "indexed" : "scan") + "/" +
                      std::to_string(state.range(0)),
                  timer,
                  {{"expressions", static_cast<double>(state.range(0))},
                   {"nodes", static_cast<double>(g.num_nodes())},
                   {"edges", static_cast<double>(g.num_edges())},
                   {"configs", static_cast<double>(configs)}});
}
BENCHMARK_CAPTURE(EcrpqRei, indexed, true)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(EcrpqRei, scan, false)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);

// NP-hardness shape for CRPQs: clique-style join (variables fully
// connected) vs chain on the same graph — join width drives the cost.
void BM_Fig1aCombined_CrpqCliqueJoin(benchmark::State& state) {
  GraphDb g = MakeRandomGraph(14, 11);
  const int k = static_cast<int>(state.range(0));
  std::string body;
  int atom = 0;
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      if (atom > 0) body += ", ";
      body += "(v" + std::to_string(i) + ", e" + std::to_string(atom) +
              ", v" + std::to_string(j) + ")";
      ++atom;
    }
  }
  for (int t = 0; t < atom; ++t) {
    body += ", .(e" + std::to_string(t) + ")";  // single-edge atoms
  }
  Query query = MustParse(g, "Ans() <- " + body);
  EvalOptions options;
  options.build_path_answers = false;
  Evaluator evaluator(&g, options);
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value().AsBool());
  }
  state.counters["clique"] = static_cast<double>(k);
  RecordBenchCase("Fig1aCombined_CrpqCliqueJoin/" + std::to_string(k), timer,
                  {{"clique", static_cast<double>(k)},
                   {"nodes", static_cast<double>(g.num_nodes())},
                   {"edges", static_cast<double>(g.num_edges())}});
}
BENCHMARK(BM_Fig1aCombined_CrpqCliqueJoin)
    ->DenseRange(2, 5)
    ->Unit(benchmark::kMillisecond);

}  // namespace
