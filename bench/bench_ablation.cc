// Engine ablations for the design choices DESIGN.md calls out:
//   1. synchronization-component decomposition on vs off (E-ablate);
//   2. CRPQ fast path vs the general product engine on the same CRPQ;
//   3. on-the-fly product (never materializing A_Q) vs materializing the
//      joined relation automaton first (Lemma 6.4's exponential object).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/eval_crpq.h"
#include "core/eval_product.h"
#include "relations/builtin.h"

namespace {

using namespace ecrpq;
using namespace ecrpq_bench;

// An el-pair + a free atom: decomposition evaluates two small products
// instead of one three-track product.
void BM_Ablation_ComponentDecomposition(benchmark::State& state) {
  GraphDb g = MakeRandomGraph(4, 3);
  Query query = MustParse(
      g, "Ans() <- (a, p, b), (c, q, d), el(p, q), (e, r, f), a*b(r)");
  EvalOptions options;
  options.build_path_answers = false;
  options.max_configs = 100000000;
  options.use_components = (state.range(0) == 1);
  uint64_t configs = 0;
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = EvaluateProduct(g, query, options);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    configs = result.value().stats().configs_explored;
  }
  state.SetLabel(state.range(0) == 1 ? "components-on" : "components-off");
  state.counters["configs"] = static_cast<double>(configs);
  RecordBenchCase(std::string("Ablation_ComponentDecomposition/") +
                      (state.range(0) == 1 ? "on" : "off"),
                  timer,
                  {{"configs", static_cast<double>(configs)},
                   {"nodes", static_cast<double>(g.num_nodes())}});
}
BENCHMARK(BM_Ablation_ComponentDecomposition)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

// CRPQ fast path vs general product engine on an identical CRPQ.
void BM_Ablation_CrpqFastPathVsProduct(benchmark::State& state) {
  GraphDb g = MakeRandomGraph(static_cast<int>(state.range(1)), 5);
  Query query = MustParse(
      g, "Ans(x, z) <- (x, p, y), (y, q, z), a*b(p), b*a(q)");
  EvalOptions options;
  options.build_path_answers = false;
  options.max_configs = 100000000;
  options.engine = (state.range(0) == 1) ? Engine::kCrpq : Engine::kProduct;
  Evaluator evaluator(&g, options);
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value().tuples().size());
  }
  state.SetLabel(state.range(0) == 1 ? "crpq-fast-path" : "product-engine");
  state.counters["nodes"] = static_cast<double>(state.range(1));
  RecordBenchCase(std::string("Ablation_CrpqVsProduct/") +
                      (state.range(0) == 1 ? "crpq" : "product") + "/" +
                      std::to_string(state.range(1)),
                  timer,
                  {{"nodes", static_cast<double>(state.range(1))},
                   {"edges", static_cast<double>(g.num_edges())}});
}
BENCHMARK(BM_Ablation_CrpqFastPathVsProduct)
    ->Args({1, 16})
    ->Args({0, 16})
    ->Args({1, 32})
    ->Args({0, 32})
    ->Unit(benchmark::kMillisecond);

// Materializing the joined relation automaton A_Q (Lemma 6.4: exponential
// in the number of relations) vs the on-the-fly search that never builds
// it. We materialize by explicitly joining the relations via
// cylindrification and count the states.
void BM_Ablation_MaterializedJoinedRelation(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  int states = 0;
  int transitions = 0;
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    RegularRelation joined = UniversalRelation(2, m);
    for (int i = 0; i + 1 < m; ++i) {
      auto lifted =
          EqualLengthRelation(2).Cylindrify(m, {i, i + 1}).ValueOrDie();
      joined = RegularRelation::Intersect(joined, lifted).ValueOrDie();
    }
    states = joined.nfa().num_states();
    transitions = joined.nfa().num_transitions();
    timer.End();
    benchmark::DoNotOptimize(transitions);
  }
  state.counters["tracks"] = static_cast<double>(m);
  state.counters["A_Q_states"] = static_cast<double>(states);
  // The blowup (Lemma 6.4) lives in the tuple alphabet: transitions grow
  // as |Σ|^m even when the state count stays small.
  state.counters["A_Q_transitions"] = static_cast<double>(transitions);
  RecordBenchCase("Ablation_MaterializedAQ/" + std::to_string(m), timer,
                  {{"tracks", static_cast<double>(m)},
                   {"states", static_cast<double>(states)},
                   {"transitions", static_cast<double>(transitions)}});
}
BENCHMARK(BM_Ablation_MaterializedJoinedRelation)
    ->DenseRange(2, 5)
    ->Unit(benchmark::kMillisecond);

}  // namespace
