// Delta-batched index maintenance: write-batch-to-first-read cost of the
// segmented snapshot chain (GraphIndex::ApplyDelta) against a
// from-scratch rebuild (GraphIndex::Build) on a 3M-edge power-law graph,
// and the read-throughput tax of delta overlays before and after
// compaction. Twin pairs measured by the bench itself:
//
//   .../delta/...   vs .../rebuild/...   delta-vs-rebuild — the O(delta)
//                                        write path against the O(V+E)
//                                        one; CI's smoke gate requires
//                                        >= 10x on the 1000-edge batch
//   .../compacted   vs .../fresh         compacted-vs-fresh — reads on a
//                                        CompactIndexNow()-folded index
//                                        against a fresh Build of the
//                                        same graph; must be ~1.0x
//
// Three case families:
//
//   IndexWriteToRead/{delta,rebuild}/batch/N
//       pure index level: base snapshot + N-edge batch (10% removals)
//       -> queryable snapshot -> probe every written row. The rebuild
//       twin times GraphIndex::Build on an identically mutated graph.
//   DbWriteToRead/{delta,rebuild}/batch/1000
//       end-to-end through Database: ApplyDelta (snapshot-swap protocol,
//       single-flight, plan-cache bookkeeping) against MutateGraph +
//       lazy full rebuild on first graph_index().
//   DurableWriteToRead/{always,interval,never}/batch/1000
//       the same 1000-edge CommitDelta through the write-ahead log at
//       each fsync policy — the durability tax over DbWriteToRead/delta
//       (fsync=interval must stay within 2x of the non-durable path).
//   ReadThroughput/{fresh,compacted,chain/32}
//       200k row probes against a fresh-built index, a compacted one,
//       and a 32-segment delta chain (the overlay-directory tax).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "api/api.h"
#include "bench_util.h"
#include "graph/generators.h"
#include "graph/index.h"
#include "wal/durable.h"
#include "wal/wal.h"

namespace {

using namespace ecrpq;
using namespace ecrpq_bench;

constexpr int kNodes = 1 << 19;        // 524288
constexpr int kEdges = 3'000'000;
constexpr int kLabels = 8;

const GraphDb& BaseGraph() {
  static const GraphDb& g = *[] {
    auto alphabet =
        Alphabet::FromLabels({"a", "b", "c", "d", "e", "f", "g", "h"});
    Rng rng(42);
    return new GraphDb(PowerLawGraph(alphabet, kNodes, kEdges, &rng));
  }();
  return g;
}

const GraphIndexPtr& BaseIndex() {
  static GraphIndexPtr index = GraphIndex::Build(BaseGraph());
  return index;
}

struct Batch {
  std::vector<Edge> add;
  std::vector<Edge> remove;
};

// `size` edges, 90% adds / 10% removals. Removals are distinct edges
// sampled from `g`'s live adjacency, so the batch satisfies the Delta
// contract (every removed edge present exactly once per listing).
Batch MakeBatch(const GraphDb& g, int size, uint64_t seed) {
  Rng rng(seed);
  Batch b;
  const int removes = size / 10;
  for (int i = removes; i < size; ++i) {
    b.add.push_back({static_cast<NodeId>(rng.Below(g.num_nodes())),
                     static_cast<Symbol>(rng.Below(kLabels)),
                     static_cast<NodeId>(rng.Below(g.num_nodes()))});
  }
  std::unordered_set<uint64_t> picked;
  for (int i = 0; i < removes; ++i) {
    for (int tries = 0; tries < 64; ++tries) {
      NodeId v = static_cast<NodeId>(rng.Below(g.num_nodes()));
      const auto& out = g.Out(v);
      if (out.empty()) continue;
      auto [label, to] = out[rng.Below(out.size())];
      uint64_t key = (static_cast<uint64_t>(v) << 35) |
                     (static_cast<uint64_t>(label) << 32) |
                     static_cast<uint64_t>(to);
      if (!picked.insert(key).second) continue;
      b.remove.push_back({v, label, to});
      break;
    }
  }
  return b;
}

GraphDb MutatedCopy(const GraphDb& g, const Batch& b) {
  GraphDb mutated = g;
  for (const Edge& e : b.add) mutated.AddEdge(e.from, e.label, e.to);
  for (const Edge& e : b.remove) mutated.RemoveEdge(e.from, e.label, e.to);
  return mutated;
}

// The "first read": probe the row of every written edge on the new
// snapshot — the moment a reader first benefits from the batch.
size_t ProbeBatch(const GraphIndex& index, const Batch& b) {
  size_t sum = 0;
  for (const Edge& e : b.add) sum += index.Out(e.from, e.label).size();
  for (const Edge& e : b.remove) sum += index.Out(e.from, e.label).size();
  return sum;
}

BenchProps GraphProps(const GraphDb& g, int batch) {
  return {{"nodes", static_cast<double>(g.num_nodes())},
          {"edges", static_cast<double>(g.num_edges())},
          {"batch", static_cast<double>(batch)}};
}

// ---- IndexWriteToRead: pure GraphIndex level ------------------------------

void IndexDeltaWriteToRead(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const GraphDb& g = BaseGraph();
  const GraphIndexPtr& base = BaseIndex();
  Batch b = MakeBatch(g, batch, /*seed=*/7);
  GraphIndex::Delta delta;
  delta.added = b.add;
  delta.removed = b.remove;
  delta.new_num_nodes = g.num_nodes();
  delta.new_num_labels = kLabels;
  delta.new_version = base->version() + 1;
  MedianTimer timer;
  size_t touched = 0;
  for (auto _ : state) {
    timer.Begin();
    GraphIndexPtr snap = base->ApplyDelta(delta);
    size_t sum = ProbeBatch(*snap, b);
    timer.End();
    benchmark::DoNotOptimize(sum);
    touched = snap->delta_nodes();
  }
  state.counters["touched_nodes"] = static_cast<double>(touched);
  RecordBenchCase("IndexWriteToRead/delta/batch/" + std::to_string(batch),
                  timer, GraphProps(g, batch));
}
BENCHMARK(IndexDeltaWriteToRead)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void IndexRebuildWriteToRead(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const GraphDb& g = BaseGraph();
  Batch b = MakeBatch(g, batch, /*seed=*/7);
  GraphDb mutated = MutatedCopy(g, b);  // batch applied outside the timer
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    GraphIndexPtr snap = GraphIndex::Build(mutated);
    size_t sum = ProbeBatch(*snap, b);
    timer.End();
    benchmark::DoNotOptimize(sum);
  }
  RecordBenchCase("IndexWriteToRead/rebuild/batch/" + std::to_string(batch),
                  timer, GraphProps(mutated, batch));
}
BENCHMARK(IndexRebuildWriteToRead)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// ---- DbWriteToRead: end-to-end through Database ---------------------------

DatabaseOptions BenchDbOptions() {
  DatabaseOptions options;
  // Compaction off for the measurement window: the bench measures the
  // per-batch write path, not the (amortized, threshold-driven) fold.
  options.background_compaction = false;
  options.compact_delta_fraction = 1.0;
  options.compact_max_segments = 1 << 20;
  options.eval.build_path_answers = false;
  return options;
}

void DbDeltaWriteToRead(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Database db(BaseGraph(), BenchDbOptions());
  (void)db.graph_index();  // seed the snapshot the deltas advance
  uint64_t seed = 1000;
  MedianTimer timer;
  for (auto _ : state) {
    Batch b = MakeBatch(db.graph(), batch, seed++);
    timer.Begin();
    MutationSummary summary = db.ApplyDelta(b.add, b.remove);
    GraphIndexPtr snap = db.graph_index();
    size_t sum = ProbeBatch(*snap, b);
    timer.End();
    benchmark::DoNotOptimize(sum);
    if (!summary.delta_applied) {
      state.SkipWithError("delta path not taken");
      return;
    }
  }
  RecordBenchCase("DbWriteToRead/delta/batch/" + std::to_string(batch),
                  timer, GraphProps(db.graph(), batch));
}
BENCHMARK(DbDeltaWriteToRead)->Arg(1000)->Unit(benchmark::kMillisecond);

void DbRebuildWriteToRead(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Database db(BaseGraph(), BenchDbOptions());
  (void)db.graph_index();
  uint64_t seed = 1000;  // same batch stream as the delta twin
  MedianTimer timer;
  for (auto _ : state) {
    Batch b = MakeBatch(db.graph(), batch, seed++);
    timer.Begin();
    db.MutateGraph([&](GraphDb& g) {
      for (const Edge& e : b.add) g.AddEdge(e.from, e.label, e.to);
      for (const Edge& e : b.remove) g.RemoveEdge(e.from, e.label, e.to);
    });
    GraphIndexPtr snap = db.graph_index();  // lazy full rebuild
    size_t sum = ProbeBatch(*snap, b);
    timer.End();
    benchmark::DoNotOptimize(sum);
  }
  RecordBenchCase("DbWriteToRead/rebuild/batch/" + std::to_string(batch),
                  timer, GraphProps(db.graph(), batch));
}
BENCHMARK(DbRebuildWriteToRead)->Arg(1000)->Unit(benchmark::kMillisecond);

// ---- DurableWriteToRead: the WAL tax per fsync policy ----------------------

// Same batch stream and first-read probe as DbWriteToRead/delta, but
// every batch goes through CommitDelta on a durable Database: WAL
// append (+ fsync per policy) ahead of the in-memory apply. The
// one-time OpenDurable cost (initial 3M-edge checkpoint) stays outside
// the timer.
void DurableWriteToRead(benchmark::State& state, FsyncPolicy policy,
                        const char* policy_name) {
  const int batch = static_cast<int>(state.range(0));
  char tmpl[] = "/tmp/ecrpq-bench-wal-XXXXXX";
  char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  DurabilityOptions durability;
  durability.fsync = policy;
  auto opened =
      Database::OpenDurable(dir, durability, BenchDbOptions(), BaseGraph());
  if (!opened.ok()) {
    state.SkipWithError(opened.status().ToString().c_str());
    return;
  }
  Database& db = *opened.value();
  (void)db.graph_index();
  uint64_t seed = 1000;  // same stream as the non-durable twin
  MedianTimer timer;
  for (auto _ : state) {
    Batch b = MakeBatch(db.graph(), batch, seed++);
    timer.Begin();
    auto summary = db.CommitDelta(b.add, b.remove);
    GraphIndexPtr snap = db.graph_index();
    size_t sum = ProbeBatch(*snap, b);
    timer.End();
    benchmark::DoNotOptimize(sum);
    if (!summary.ok()) {
      state.SkipWithError(summary.status().ToString().c_str());
      break;
    }
  }
  RecordBenchCase("DurableWriteToRead/" + std::string(policy_name) +
                      "/batch/" + std::to_string(batch),
                  timer, GraphProps(db.graph(), batch));
  opened.value().reset();  // release the flock before the dir goes away
  std::string cmd = "rm -rf '" + std::string(dir) + "'";
  [[maybe_unused]] int rc = std::system(cmd.c_str());
}

void DurableAlwaysWriteToRead(benchmark::State& state) {
  DurableWriteToRead(state, FsyncPolicy::kAlways, "always");
}
BENCHMARK(DurableAlwaysWriteToRead)->Arg(1000)->Unit(benchmark::kMillisecond);

void DurableIntervalWriteToRead(benchmark::State& state) {
  DurableWriteToRead(state, FsyncPolicy::kInterval, "interval");
}
BENCHMARK(DurableIntervalWriteToRead)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void DurableNeverWriteToRead(benchmark::State& state) {
  DurableWriteToRead(state, FsyncPolicy::kNever, "never");
}
BENCHMARK(DurableNeverWriteToRead)->Arg(1000)->Unit(benchmark::kMillisecond);

// ---- ReadThroughput: overlay tax and compaction ---------------------------

constexpr int kChain = 32;
constexpr int kChainBatch = 1000;
constexpr int kProbes = 200000;

// The base graph plus kChain batches of kChainBatch edges (the chain
// workload), built once and shared by the three read cases.
struct ChainFixture {
  GraphDb mutated;
  GraphIndexPtr chained;    // kChain delta segments over BaseIndex()
  GraphIndexPtr fresh;      // GraphIndex::Build(mutated)
  GraphIndexPtr compacted;  // Database::CompactIndexNow() product
  std::vector<std::pair<NodeId, Symbol>> probes;
};

const ChainFixture& Chain() {
  static const ChainFixture& fixture = *[] {
    auto* f = new ChainFixture;
    f->mutated = BaseGraph();
    GraphIndexPtr snap = BaseIndex();
    Database db(BaseGraph(), BenchDbOptions());
    (void)db.graph_index();
    for (int i = 0; i < kChain; ++i) {
      Batch b = MakeBatch(f->mutated, kChainBatch, /*seed=*/9000 + i);
      for (const Edge& e : b.add) f->mutated.AddEdge(e.from, e.label, e.to);
      for (const Edge& e : b.remove) {
        f->mutated.RemoveEdge(e.from, e.label, e.to);
      }
      GraphIndex::Delta delta;
      delta.added = b.add;
      delta.removed = b.remove;
      delta.new_num_nodes = f->mutated.num_nodes();
      delta.new_num_labels = kLabels;
      delta.new_version = snap->version() + 1;
      snap = snap->ApplyDelta(delta);
      db.ApplyDelta(b.add, b.remove);
    }
    f->chained = snap;
    f->fresh = GraphIndex::Build(f->mutated);
    db.CompactIndexNow();
    f->compacted = db.graph_index();
    Rng rng(99);
    f->probes.reserve(kProbes);
    for (int i = 0; i < kProbes; ++i) {
      f->probes.emplace_back(
          static_cast<NodeId>(rng.Below(f->mutated.num_nodes())),
          static_cast<Symbol>(rng.Below(kLabels)));
    }
    return f;
  }();
  return fixture;
}

void RunReadThroughput(benchmark::State& state, const char* case_name,
                       const GraphIndex& index) {
  const ChainFixture& f = Chain();
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    size_t sum = 0;
    for (const auto& [node, label] : f.probes) {
      for (NodeId to : index.Out(node, label)) {
        sum += static_cast<size_t>(to);
      }
    }
    timer.End();
    benchmark::DoNotOptimize(sum);
  }
  state.counters["segments"] =
      static_cast<double>(index.num_delta_segments());
  RecordBenchCase(case_name, timer,
                  {{"nodes", static_cast<double>(f.mutated.num_nodes())},
                   {"edges", static_cast<double>(f.mutated.num_edges())},
                   {"probes", static_cast<double>(kProbes)},
                   {"segments",
                    static_cast<double>(index.num_delta_segments())}});
}

void ReadThroughputFresh(benchmark::State& state) {
  RunReadThroughput(state, "ReadThroughput/fresh", *Chain().fresh);
}
BENCHMARK(ReadThroughputFresh)->Unit(benchmark::kMillisecond);

void ReadThroughputCompacted(benchmark::State& state) {
  RunReadThroughput(state, "ReadThroughput/compacted", *Chain().compacted);
}
BENCHMARK(ReadThroughputCompacted)->Unit(benchmark::kMillisecond);

void ReadThroughputChain(benchmark::State& state) {
  RunReadThroughput(state, "ReadThroughput/chain/32", *Chain().chained);
}
BENCHMARK(ReadThroughputChain)->Unit(benchmark::kMillisecond);

}  // namespace
