// Cost-based planner vs. the monolithic product (Thm 5.1 evaluated
// literally) on cross-component workloads.
//
// The query joins a highly selective single-atom component (a rare label)
// with an expensive eq-synchronized component through a shared start
// variable. Three execution modes over the same query and graph:
//
//   planned     decomposed + cost-ordered + sideways-seeded (default):
//               the selective component runs first and its bindings seed
//               the expensive component's start enumeration
//   legacy      decomposed, analysis order, full seeding per component
//               (the pre-planner engine behavior; ECRPQ_NO_PLANNER mode)
//   monolithic  ONE product over all tracks (EvalOptions::use_components
//               off) — the paper's Theorem 5.1 evaluation
//
// BENCH_bench_planner_join.json records each case; the writer prints the
// planned-vs-monolithic and planned-vs-legacy speedups at exit, so CI
// measures the planner's win instead of asserting it.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace ecrpq;
using namespace ecrpq_bench;

// A dense {a, b} random graph with `rare` additional c-edges: label
// statistics make the c-component obviously cheapest. Built by hand —
// RandomGraph would draw c uniformly, defeating its selectivity.
GraphDb CrossComponentGraph(int nodes, int rare, uint64_t seed = 42) {
  auto alphabet = Alphabet::FromLabels({"a", "b", "c"});
  Rng rng(seed);
  GraphDb g(alphabet);
  for (int i = 0; i < nodes; ++i) g.AddNode("n" + std::to_string(i));
  for (int e = 0; e < 3 * nodes; ++e) {
    g.AddEdge(static_cast<NodeId>(rng.Below(nodes)),
              rng.Chance(0.5) ? "a" : "b",
              static_cast<NodeId>(rng.Below(nodes)));
  }
  for (int i = 0; i < rare; ++i) {
    g.AddEdge(static_cast<NodeId>(rng.Below(nodes)), "c",
              static_cast<NodeId>(rng.Below(nodes)));
  }
  return g;
}

// Selective scan component + expensive eq component, joined on the shared
// start variable x.
const char* kCrossQuery =
    "Ans(x, w) <- (x, p, u), c(p), (x, q, v), (v, r, w), eq(q, r)";

enum class Mode { kPlanned, kLegacy, kMonolithic };

void CrossComponent(benchmark::State& state, Mode mode) {
  const int nodes = static_cast<int>(state.range(0));
  GraphDb g = CrossComponentGraph(nodes, /*rare=*/3);
  Query query = MustParse(g, kCrossQuery);
  EvalOptions options;
  options.engine = Engine::kProduct;
  options.build_path_answers = false;
  options.max_configs = 500000000;
  options.use_components = (mode != Mode::kMonolithic);
  options.use_planner = (mode == Mode::kPlanned);
  Evaluator evaluator(&g, options);
  size_t answers = 0;
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    answers = result.value().tuples().size();
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
  const char* mode_name = mode == Mode::kPlanned     ? "planned"
                          : mode == Mode::kLegacy    ? "legacy"
                                                     : "monolithic";
  RecordBenchCase("PlannerJoin_Cross/" + std::string(mode_name) + "/" +
                      std::to_string(nodes),
                  timer,
                  {{"nodes", static_cast<double>(g.num_nodes())},
                   {"edges", static_cast<double>(g.num_edges())},
                   {"answers", static_cast<double>(answers)}});
}
BENCHMARK_CAPTURE(CrossComponent, planned, Mode::kPlanned)
    ->Arg(24)
    ->Arg(36)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(CrossComponent, legacy, Mode::kLegacy)
    ->Arg(24)
    ->Arg(36)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(CrossComponent, monolithic, Mode::kMonolithic)
    ->Arg(24)
    ->Arg(36)
    ->Unit(benchmark::kMillisecond);

// Three scan components chained by shared variables (x seeds y, y seeds
// z): pure ReachabilityScan pipeline, where sideways seeding prunes each
// successive scan to the frontier of the previous one.
void ScanPipeline(benchmark::State& state, Mode mode) {
  const int nodes = static_cast<int>(state.range(0));
  GraphDb g = CrossComponentGraph(nodes, /*rare=*/3);
  Query query = MustParse(
      g, "Ans(x, z) <- (x, p, y), (y, q, z), (z, r, w), c(p), ab(q), ba(r)");
  EvalOptions options;
  options.engine = Engine::kProduct;
  options.build_path_answers = false;
  options.use_components = (mode != Mode::kMonolithic);
  options.use_planner = (mode == Mode::kPlanned);
  options.max_configs = 500000000;
  Evaluator evaluator(&g, options);
  size_t answers = 0;
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    answers = result.value().tuples().size();
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
  const char* mode_name = mode == Mode::kPlanned     ? "planned"
                          : mode == Mode::kLegacy    ? "legacy"
                                                     : "monolithic";
  RecordBenchCase("PlannerJoin_ScanPipeline/" + std::string(mode_name) + "/" +
                      std::to_string(nodes),
                  timer,
                  {{"nodes", static_cast<double>(g.num_nodes())},
                   {"edges", static_cast<double>(g.num_edges())},
                   {"answers", static_cast<double>(answers)}});
}
BENCHMARK_CAPTURE(ScanPipeline, planned, Mode::kPlanned)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(ScanPipeline, legacy, Mode::kLegacy)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);
// The monolithic 3-track product at 128 nodes takes tens of seconds —
// measured once at 64; the planned/legacy pair still scales to 128.
BENCHMARK_CAPTURE(ScanPipeline, monolithic, Mode::kMonolithic)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

// ---- worker-lane tiers ----------------------------------------------------
//
// The planned pipeline at num_threads ∈ {1, 2, 4, 8}. threads/1 is the
// exact serial path — CI diffs its fresh median against the committed
// baseline as the serial-regression guard — and the [parallel-1toN]
// twin-speedup lines printed at exit feed the hardware-aware scaling
// gate.

void RunPlannedThreads(benchmark::State& state, const std::string& case_name,
                       const GraphDb& g, const std::string& query_text) {
  const int threads = static_cast<int>(state.range(0));
  Query query = MustParse(g, query_text);
  EvalOptions options;
  options.engine = Engine::kProduct;
  options.build_path_answers = false;
  options.max_configs = 500000000;
  options.num_threads = threads;
  Evaluator evaluator(&g, options);
  size_t answers = 0;
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    answers = result.value().tuples().size();
    benchmark::DoNotOptimize(answers);
  }
  state.counters["answers"] = static_cast<double>(answers);
  RecordBenchCase(case_name + "/threads/" + std::to_string(threads), timer,
                  {{"nodes", static_cast<double>(g.num_nodes())},
                   {"edges", static_cast<double>(g.num_edges())},
                   {"threads", static_cast<double>(threads)},
                   {"answers", static_cast<double>(answers)}});
}

// cross/ — the 36-node cross-component workload: far below the
// partitioned-join row threshold, so every join stays inline-serial by
// the planner's estimate rule; the tier guards the small-plan path
// against lane overhead (its 1→N "speedup" should hover near 1x).
void CrossThreads(benchmark::State& state) {
  GraphDb g = CrossComponentGraph(36, /*rare=*/3);
  RunPlannedThreads(state, "cross/Planned", g, kCrossQuery);
}
BENCHMARK(CrossThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// large/JoinPipeline — two single-letter scan components over the
// preferential-attachment graph of bench_parallel_scaling (2^17 nodes,
// ~1.3M edges), both binding (x, y). Each component materializes a
// ~10^5-row table (one label class of the edge set); sideways seeding is
// declined (the seed projection overflows the seed-row cap), the
// SemiJoinFilter fixpoint reduces both tables with the partitioned
// build / morsel-probe path, and the fold joins them through the
// radix-partitioned HashJoin — the morsel-parallel join pipeline end to
// end, on tables large enough that every stage runs partitioned.
void LargeJoinPipeline(benchmark::State& state) {
  static const GraphDb& g = *[] {
    auto alphabet = Alphabet::FromLabels({"a", "b", "c", "d"});
    Rng rng(42);
    return new GraphDb(
        PowerLawGraph(alphabet, 1 << 17, 10 * (1 << 17), &rng));
  }();
  RunPlannedThreads(state, "large/JoinPipeline", g,
                    "Ans(x, y) <- (x, p, y), (x, q, y), a(p), b(q)");
}
BENCHMARK(LargeJoinPipeline)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
