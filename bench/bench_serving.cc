// The serving subsystem under load, over real loopback sockets: an
// in-process ecrpq-serverd instance driven by hundreds of client
// threads while a writer races MutateGraph against the result cache.
//
// Four cases:
//
//   ServingMixed      200+ concurrent client connections, each running a
//                     burst of executes against one shared prepared
//                     query, racing a MutateGraph writer that swaps the
//                     snapshot (and with it invalidates the cache) every
//                     few milliseconds. Records sustained QPS and the
//                     server-side p50/p99 execute latency, plus the
//                     measured cache hit/miss split.
//   ServingExecute    cached-vs-nocache twin pair on one connection: the
//                     same execute with the snapshot-keyed result cache
//                     eligible vs. explicitly bypassed. The exit-time
//                     twin line measures the cache win instead of
//                     asserting it.
//   ServingDeadline   a burn query (minutes of search, zero answers)
//                     with a 100 ms wire deadline; the median is the
//                     observed cancellation latency over the wire.
//   ServingOverload   a 64-client synchronized burst into a server with
//                     2 execute slots and a 2-deep queue: measures the
//                     explicit OVERLOADED shed path (shed replies are
//                     answered from the I/O thread without costing an
//                     executor).

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/api.h"
#include "bench_util.h"
#include "server/client.h"
#include "server/server.h"

namespace {

using namespace ecrpq;
using namespace ecrpq_bench;

GraphDb Chain(int n) {
  GraphDb g;
  NodeId prev = g.AddNode("v0");
  for (int i = 1; i < n; ++i) {
    NodeId next = g.AddNode("v" + std::to_string(i));
    g.AddEdge(prev, "a", next);
    prev = next;
  }
  return g;
}

// All ordered pairs on the chain: n*(n-1)/2 rows per execute.
constexpr char kPairsQuery[] = "Ans(x, y) <- (x, p, y), 'a'+(p)";

// Zero answers behind minutes of counting-engine search on a 2000-chain;
// cancellable within milliseconds (the calibrated slow query of
// server_test).
constexpr char kBurnQuery[] = "Ans() <- (x, p, y), len(p) >= 2100";

// 55 rows behind ~1.5 s of counting-engine search on a 150-chain: the
// compute-heavy/small-result shape where the result cache matters (the
// pairs query above is wire-dominated, so it would hide the cache win
// behind serialization cost).
constexpr char kGapQuery[] = "Ans(x, y) <- (x, p, y), len(p) >= 140";

struct BenchServer {
  BenchServer(int chain, ServingOptions options) : db(Chain(chain)) {
    options.port = 0;
    server = std::make_unique<Server>(&db, options);
    Status status = server->Start();
    if (!status.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
  }
  ~BenchServer() { server->Stop(); }

  Database db;
  std::unique_ptr<Server> server;
};

// ---- sustained mixed load ---------------------------------------------------

// `clients` OS threads, each with its own connection, each running
// kOpsPerClient executes while one writer appends edges through
// MutateGraph every few milliseconds. QPS counts completed executes
// (shed replies are retried and not counted); p50/p99 come from the
// server's own receipt-to-reply histogram.
void ServingMixed(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  constexpr int kOpsPerClient = 6;

  ServingOptions options;
  options.executor_threads = 8;
  options.max_in_flight = 16;
  options.max_queue = 4 * clients;  // admit the whole herd; shed is a
                                    // separate case below
  options.cache_max_rows = 1 << 16;  // the pairs result (11175 rows) must
                                     // be cacheable for hits to happen
  BenchServer bs(150, options);

  MedianTimer timer;
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> retried{0};
  std::atomic<int> failures{0};
  for (auto _ : state) {
    std::atomic<bool> stop_writer{false};
    std::thread writer([&] {
      Client w;
      if (!w.Connect("127.0.0.1", bs.server->port()).ok()) return;
      int round = 0;
      while (!stop_writer.load(std::memory_order_relaxed)) {
        std::string fresh = "w" + std::to_string(round++);
        if (!w.Mutate({{{"v0", "a", fresh}}}, nullptr, nullptr).ok()) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });

    timer.Begin();
    std::vector<std::thread> herd;
    herd.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      herd.emplace_back([&] {
        Client client;
        if (!client.Connect("127.0.0.1", bs.server->port()).ok()) {
          failures.fetch_add(1);
          return;
        }
        uint32_t stmt_id = 0;
        if (!client.Prepare(kPairsQuery, &stmt_id).ok()) {
          failures.fetch_add(1);
          return;
        }
        Client::ExecuteSpec spec;
        spec.page_size = 65536;  // whole result in the first page
        for (int op = 0; op < kOpsPerClient;) {
          Client::RowsPage page;
          Status status = client.Execute(stmt_id, spec, &page);
          if (status.ok()) {
            completed.fetch_add(1, std::memory_order_relaxed);
            ++op;
          } else if (status.code() == StatusCode::kResourceExhausted) {
            retried.fetch_add(1, std::memory_order_relaxed);  // shed: retry
          } else {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
    for (std::thread& t : herd) t.join();
    timer.End();
    stop_writer.store(true);
    writer.join();
  }
  if (failures.load() > 0) {
    state.SkipWithError("client thread failed");
    return;
  }
  const ServerStats& stats = bs.server->stats();
  const double elapsed_s = timer.MedianNs() / 1e9;
  const double qps =
      elapsed_s > 0 ? (clients * kOpsPerClient) / elapsed_s : 0.0;
  state.counters["qps"] = qps;
  state.counters["p99_us"] = stats.execute_latency.PercentileNs(99) / 1e3;
  RecordBenchCase(
      "ServingMixed/clients/" + std::to_string(clients), timer,
      {{"clients", static_cast<double>(clients)},
       {"ops_per_client", static_cast<double>(kOpsPerClient)},
       {"qps", qps},
       {"p50_us", stats.execute_latency.PercentileNs(50) / 1e3},
       {"p99_us", stats.execute_latency.PercentileNs(99) / 1e3},
       {"cache_hits", static_cast<double>(bs.server->cache().hits())},
       {"cache_misses", static_cast<double>(bs.server->cache().misses())},
       {"mutations", static_cast<double>(stats.mutations.load())},
       {"shed_retries", static_cast<double>(retried.load())}});
}
BENCHMARK(ServingMixed)
    ->Arg(200)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// ---- cache hit vs bypass twins ----------------------------------------------

void ServingExecute(benchmark::State& state, bool bypass_cache) {
  ServingOptions options;
  BenchServer bs(150, options);
  Client client;
  if (!client.Connect("127.0.0.1", bs.server->port()).ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  uint32_t stmt_id = 0;
  if (!client.Prepare(kGapQuery, &stmt_id).ok()) {
    state.SkipWithError("prepare failed");
    return;
  }
  Client::ExecuteSpec spec;
  spec.page_size = 65536;
  spec.bypass_cache = bypass_cache;
  Client::RowsPage page;
  // Warm: populates the cache for the cached twin; for the bypass twin
  // it only warms the plan cache, keeping the twins one-variable apart.
  if (!client.Execute(stmt_id, spec, &page).ok()) {
    state.SkipWithError("warm execute failed");
    return;
  }
  MedianTimer timer;
  size_t rows = 0;
  for (auto _ : state) {
    timer.Begin();
    Status status = client.Execute(stmt_id, spec, &page);
    timer.End();
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
    rows = page.rows.size();
    benchmark::DoNotOptimize(rows);
  }
  const char* mode = bypass_cache ? "nocache" : "cached";
  RecordBenchCase(std::string("ServingExecute/") + mode, timer,
                  {{"rows", static_cast<double>(rows)},
                   {"cache_hits",
                    static_cast<double>(bs.server->cache().hits())},
                   {"bypass", bypass_cache ? 1.0 : 0.0}});
}

void ServingExecuteCached(benchmark::State& state) {
  ServingExecute(state, /*bypass_cache=*/false);
}
BENCHMARK(ServingExecuteCached)
    ->Iterations(30)
    ->Unit(benchmark::kMillisecond);

void ServingExecuteNocache(benchmark::State& state) {
  ServingExecute(state, /*bypass_cache=*/true);
}
BENCHMARK(ServingExecuteNocache)
    ->Iterations(5)  // each bypassed run pays the full ~1.5 s search
    ->Unit(benchmark::kMillisecond);

// ---- deadline cancellation latency ------------------------------------------

// The burn query would search for minutes; the 100 ms wire deadline must
// cut it down to roughly the deadline plus the engine's token-polling
// granularity. The median IS the observed cancellation latency.
void ServingDeadline(benchmark::State& state) {
  const int deadline_ms = static_cast<int>(state.range(0));
  ServingOptions options;
  BenchServer bs(2000, options);
  Client client;
  if (!client.Connect("127.0.0.1", bs.server->port()).ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  uint32_t stmt_id = 0;
  if (!client.Prepare(kBurnQuery, &stmt_id).ok()) {
    state.SkipWithError("prepare failed");
    return;
  }
  Client::ExecuteSpec spec;
  spec.deadline_ms = static_cast<uint32_t>(deadline_ms);
  spec.bypass_cache = true;
  MedianTimer timer;
  for (auto _ : state) {
    Client::RowsPage page;
    timer.Begin();
    Status status = client.Execute(stmt_id, spec, &page);
    timer.End();
    if (status.code() != StatusCode::kCancelled) {
      state.SkipWithError("deadline did not cancel the execute");
      return;
    }
  }
  RecordBenchCase("ServingDeadline/deadline_ms/" + std::to_string(deadline_ms),
                  timer,
                  {{"deadline_ms", static_cast<double>(deadline_ms)},
                   {"deadline_cancels",
                    static_cast<double>(
                        bs.server->stats().executes_deadline.load())}});
}
BENCHMARK(ServingDeadline)
    ->Arg(100)
    ->Iterations(5)
    ->Unit(benchmark::kMillisecond);

// ---- overload shedding ------------------------------------------------------

// 64 clients fire one uncached execute each into 2 slots + 2 queue
// places. Most of the burst must come back OVERLOADED (explicitly, never
// silently dropped), and the whole burst resolves fast because shed
// replies never wait for an executor.
void ServingOverload(benchmark::State& state) {
  const int burst = static_cast<int>(state.range(0));
  ServingOptions options;
  options.executor_threads = 2;
  options.max_in_flight = 2;
  options.max_queue = 2;
  BenchServer bs(150, options);

  MedianTimer timer;
  std::atomic<uint64_t> ok{0}, shed{0};
  std::atomic<int> failures{0};
  for (auto _ : state) {
    timer.Begin();
    std::vector<std::thread> herd;
    herd.reserve(burst);
    for (int c = 0; c < burst; ++c) {
      herd.emplace_back([&] {
        Client client;
        uint32_t stmt_id = 0;
        if (!client.Connect("127.0.0.1", bs.server->port()).ok() ||
            !client.Prepare(kPairsQuery, &stmt_id).ok()) {
          failures.fetch_add(1);
          return;
        }
        Client::ExecuteSpec spec;
        spec.page_size = 65536;
        spec.bypass_cache = true;
        Client::RowsPage page;
        Status status = client.Execute(stmt_id, spec, &page);
        if (status.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else if (status.code() == StatusCode::kResourceExhausted) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          failures.fetch_add(1);
        }
      });
    }
    for (std::thread& t : herd) t.join();
    timer.End();
  }
  if (failures.load() > 0) {
    state.SkipWithError("client thread failed");
    return;
  }
  state.counters["shed"] = static_cast<double>(shed.load());
  RecordBenchCase(
      "ServingOverload/burst/" + std::to_string(burst), timer,
      {{"burst", static_cast<double>(burst)},
       {"ok", static_cast<double>(ok.load())},
       {"shed", static_cast<double>(shed.load())},
       {"rejected",
        static_cast<double>(bs.server->admission().total_rejected())}});
}
BENCHMARK(ServingOverload)
    ->Arg(64)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
