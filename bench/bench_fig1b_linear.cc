// Figure 1(b), linear-constraint column (Theorem 8.5): CRPQs with linear
// constraints on occurrence counts have PTIME data complexity and NP
// combined complexity. Measured shapes: polynomial growth in the graph for
// a fixed constrained query, and moderate growth in the number of
// constraint rows (the NP certificate is the ILP witness). The σ-product
// family additionally runs both with the CSR GraphIndex and against the
// pre-index scan path: the counting engine's data-dependent kernel is the
// per-assignment product construction (BuildComponentProducts), which is
// exactly what the index accelerates — the end-to-end families are
// ILP-solve-dominated, so the indexed-vs-scan comparison is measured on
// the kernel and printed (plus BENCH_bench_fig1b_linear.json) at exit.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/eval_product.h"
#include "graph/index.h"

namespace {

using namespace ecrpq;
using namespace ecrpq_bench;

// Fixed airline-ratio query over growing flight networks (data
// complexity).
void BM_Fig1bLinear_DataComplexity(benchmark::State& state) {
  Rng rng(17);
  int cities = static_cast<int>(state.range(0));
  GraphDb g = FlightNetwork(cities, 3 * cities, 3, {"sq", "other"}, &rng);
  Query query = MustParse(
      g,
      R"(Ans() <- ("city0", p, "city1"), occ(p, sq) - 4*occ(p, 'other') >= 0,)"
      R"( len(p) >= 1)");
  Evaluator evaluator(&g);
  uint64_t ilp_vars = 0;
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    ilp_vars = result.value().stats().ilp_variables;
  }
  state.counters["nodes"] = g.num_nodes();
  state.counters["ilp_vars"] = static_cast<double>(ilp_vars);
  RecordBenchCase("Fig1bLinear_DataComplexity/" + std::to_string(cities),
                  timer,
                  {{"nodes", static_cast<double>(g.num_nodes())},
                   {"edges", static_cast<double>(g.num_edges())},
                   {"ilp_vars", static_cast<double>(ilp_vars)}});
}
BENCHMARK(BM_Fig1bLinear_DataComplexity)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

// The counting engine's data-dependent kernel in isolation: one component
// product per node assignment σ (Thm 8.5 builds |V|^k of these). A routed
// query ('sq'-only paths) makes the relation state-set restrict the live
// letters, so the indexed run pulls only the matching label slices while
// the scan run touches every out-edge of every frontier node.
void SigmaProducts(benchmark::State& state, bool use_index) {
  Rng rng(17);
  int cities = static_cast<int>(state.range(0));
  GraphDb g = FlightNetwork(cities, 3 * cities, 3, {"sq", "other"}, &rng);
  Query query =
      MustParse(g, R"(Ans(x, y) <- (x, p, y), 'sq'*(p), occ(p, sq) >= 1)");
  auto compiled = CompileQuery(query, g.alphabet().size());
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  auto index = GraphIndex::Build(g);
  EvalOptions options;
  options.use_graph_index = use_index;
  MedianTimer timer;
  int64_t states = 0;
  for (auto _ : state) {
    timer.Begin();
    states = 0;
    for (NodeId v = 0; v + 1 < g.num_nodes(); v += 3) {
      std::vector<NodeId> assignment = {v, static_cast<NodeId>(v + 1)};
      auto products = BuildComponentProducts(
          g, query, options, assignment, compiled.value(),
          use_index ? index : nullptr);
      if (!products.ok()) {
        state.SkipWithError(products.status().ToString().c_str());
        return;
      }
      for (const ComponentProductGraph& cpg : products.value()) {
        states += cpg.num_states;
      }
    }
    timer.End();
  }
  state.counters["nodes"] = g.num_nodes();
  state.counters["product_states"] = static_cast<double>(states);
  RecordBenchCase("Fig1bLinear_SigmaProducts/" +
                      std::string(use_index ? "indexed" : "scan") + "/" +
                      std::to_string(cities),
                  timer,
                  {{"nodes", static_cast<double>(g.num_nodes())},
                   {"edges", static_cast<double>(g.num_edges())},
                   {"product_states", static_cast<double>(states)}});
}
BENCHMARK_CAPTURE(SigmaProducts, indexed, true)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(SigmaProducts, scan, false)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Fixed graph, growing number of linear rows (combined complexity).
void BM_Fig1bLinear_CombinedRows(benchmark::State& state) {
  Rng rng(17);
  GraphDb g = FlightNetwork(8, 24, 3, {"sq", "other"}, &rng);
  int rows = static_cast<int>(state.range(0));
  std::string text = R"(Ans() <- ("city0", p, "city1"), len(p) >= 1)";
  for (int r = 0; r < rows; ++r) {
    // Stack of compatible ratio constraints.
    text += ", occ(p, sq) - " + std::to_string(r) + "*occ(p, 'other') >= 0";
  }
  Query query = MustParse(g, text);
  Evaluator evaluator(&g);
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value().AsBool());
  }
  state.counters["rows"] = static_cast<double>(rows);
  RecordBenchCase("Fig1bLinear_CombinedRows/" + std::to_string(rows), timer,
                  {{"rows", static_cast<double>(rows)},
                   {"nodes", static_cast<double>(g.num_nodes())},
                   {"edges", static_cast<double>(g.num_edges())}});
}
BENCHMARK(BM_Fig1bLinear_CombinedRows)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);

// Path-length constraints (the restriction closing Section 8.2): cycle
// lengths solved via flows. Growing cycle sizes.
void BM_Fig1bLinear_LengthOnCycles(benchmark::State& state) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g = CycleGraph(alphabet, static_cast<int>(state.range(0)), "a");
  Query query = MustParse(
      g, R"(Ans() <- ("c0", p, "c0"), ("c0", q, "c0"), )"
         R"(len(p) - 2*len(q) = 0, len(q) >= 1)");
  Evaluator evaluator(&g);
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value().AsBool());
  }
  state.counters["cycle"] = static_cast<double>(state.range(0));
  RecordBenchCase("Fig1bLinear_LengthOnCycles/" +
                      std::to_string(state.range(0)),
                  timer,
                  {{"cycle", static_cast<double>(state.range(0))},
                   {"nodes", static_cast<double>(g.num_nodes())},
                   {"edges", static_cast<double>(g.num_edges())}});
}
BENCHMARK(BM_Fig1bLinear_LengthOnCycles)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
