// Figure 1(b), linear-constraint column (Theorem 8.5): CRPQs with linear
// constraints on occurrence counts have PTIME data complexity and NP
// combined complexity. Measured shapes: polynomial growth in the graph for
// a fixed constrained query, and moderate growth in the number of
// constraint rows (the NP certificate is the ILP witness).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace ecrpq;
using namespace ecrpq_bench;

// Fixed airline-ratio query over growing flight networks (data
// complexity).
void BM_Fig1bLinear_DataComplexity(benchmark::State& state) {
  Rng rng(17);
  int cities = static_cast<int>(state.range(0));
  GraphDb g = FlightNetwork(cities, 3 * cities, 3, {"sq", "other"}, &rng);
  Query query = MustParse(
      g,
      R"(Ans() <- ("city0", p, "city1"), occ(p, sq) - 4*occ(p, 'other') >= 0,)"
      R"( len(p) >= 1)");
  Evaluator evaluator(&g);
  uint64_t ilp_vars = 0;
  for (auto _ : state) {
    auto result = evaluator.Evaluate(query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    ilp_vars = result.value().stats().ilp_variables;
  }
  state.counters["nodes"] = g.num_nodes();
  state.counters["ilp_vars"] = static_cast<double>(ilp_vars);
}
BENCHMARK(BM_Fig1bLinear_DataComplexity)
    ->Arg(4)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Fixed graph, growing number of linear rows (combined complexity).
void BM_Fig1bLinear_CombinedRows(benchmark::State& state) {
  Rng rng(17);
  GraphDb g = FlightNetwork(8, 24, 3, {"sq", "other"}, &rng);
  int rows = static_cast<int>(state.range(0));
  std::string text = R"(Ans() <- ("city0", p, "city1"), len(p) >= 1)";
  for (int r = 0; r < rows; ++r) {
    // Stack of compatible ratio constraints.
    text += ", occ(p, sq) - " + std::to_string(r) + "*occ(p, 'other') >= 0";
  }
  Query query = MustParse(g, text);
  Evaluator evaluator(&g);
  for (auto _ : state) {
    auto result = evaluator.Evaluate(query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value().AsBool());
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig1bLinear_CombinedRows)
    ->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);

// Path-length constraints (the restriction closing Section 8.2): cycle
// lengths solved via flows. Growing cycle sizes.
void BM_Fig1bLinear_LengthOnCycles(benchmark::State& state) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g = CycleGraph(alphabet, static_cast<int>(state.range(0)), "a");
  Query query = MustParse(
      g, R"(Ans() <- ("c0", p, "c0"), ("c0", q, "c0"), )"
         R"(len(p) - 2*len(q) = 0, len(q) >= 1)");
  Evaluator evaluator(&g);
  for (auto _ : state) {
    auto result = evaluator.Evaluate(query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value().AsBool());
  }
  state.counters["cycle"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Fig1bLinear_LengthOnCycles)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
