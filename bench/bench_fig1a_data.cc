// Figure 1(a), data-complexity row: for FIXED queries, evaluation time as
// the graph grows. The paper proves NLOGSPACE data complexity for CQs,
// CRPQs, ECRPQs, their acyclic restrictions, and Q_len; the measured shape
// to reproduce is polynomial (no blowup) growth in |G| for every engine.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/eval_product.h"
#include "core/eval_qlen.h"

namespace {

using namespace ecrpq;
using namespace ecrpq_bench;

// Fixed CRPQ over growing graphs (CRPQ fast path, Thm 6.5 machinery).
void BM_Fig1aData_CRPQ(benchmark::State& state) {
  GraphDb g = MakeLayeredGraph(static_cast<int>(state.range(0)));
  Query query = MustParse(g, "Ans(x, y) <- (x, p, y), (ab)*(p)");
  EvalOptions options;
  options.build_path_answers = false;
  Evaluator evaluator(&g, options);
  size_t answers = 0;
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    answers = result.value().tuples().size();
  }
  state.counters["nodes"] = g.num_nodes();
  state.counters["edges"] = g.num_edges();
  state.counters["answers"] = static_cast<double>(answers);
  RecordBenchCase("Fig1aData_CRPQ/" + std::to_string(state.range(0)), timer,
                  {{"nodes", static_cast<double>(g.num_nodes())},
                   {"edges", static_cast<double>(g.num_edges())},
                   {"answers", static_cast<double>(answers)}});
}
BENCHMARK(BM_Fig1aData_CRPQ)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// Fixed ECRPQ (equal-length pair) over growing graphs (product engine,
// Thm 6.1's on-the-fly evaluation).
void BM_Fig1aData_ECRPQ(benchmark::State& state) {
  GraphDb g = MakeLayeredGraph(static_cast<int>(state.range(0)));
  Query query =
      MustParse(g, "Ans() <- (x, p, y), (x, q, z), el(p, q), a*(p), b*(q)");
  EvalOptions options;
  options.build_path_answers = false;
  options.max_configs = 50000000;
  options.engine = Engine::kProduct;
  Evaluator evaluator(&g, options);
  uint64_t configs = 0;
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    configs = result.value().stats().configs_explored;
  }
  state.counters["nodes"] = g.num_nodes();
  state.counters["configs"] = static_cast<double>(configs);
  RecordBenchCase("Fig1aData_ECRPQ/" + std::to_string(state.range(0)), timer,
                  {{"nodes", static_cast<double>(g.num_nodes())},
                   {"edges", static_cast<double>(g.num_edges())},
                   {"configs", static_cast<double>(configs)}});
}
BENCHMARK(BM_Fig1aData_ECRPQ)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(96)
    ->Unit(benchmark::kMillisecond);

// Same fixed ECRPQ under the Q_len abstraction (Thm 6.7 row).
void BM_Fig1aData_Qlen(benchmark::State& state) {
  GraphDb g = MakeLayeredGraph(static_cast<int>(state.range(0)));
  Query query =
      MustParse(g, "Ans() <- (x, p, y), (x, q, z), el(p, q), a*(p), b*(q)");
  EvalOptions options;
  options.build_path_answers = false;
  options.max_configs = 50000000;
  Evaluator evaluator(&g, options);
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = EvaluateQlen(g, query, options);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value().AsBool());
  }
  state.counters["nodes"] = g.num_nodes();
  RecordBenchCase("Fig1aData_Qlen/" + std::to_string(state.range(0)), timer,
                  {{"nodes", static_cast<double>(g.num_nodes())},
                   {"edges", static_cast<double>(g.num_edges())}});
}
BENCHMARK(BM_Fig1aData_Qlen)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(96)
    ->Unit(benchmark::kMillisecond);

// Fixed acyclic CRPQ (star shape) over growing graphs: the Thm 6.5 PTIME
// algorithm with semi-join reduction.
void BM_Fig1aData_AcyclicCRPQ(benchmark::State& state) {
  GraphDb g = MakeLayeredGraph(static_cast<int>(state.range(0)));
  Query query = MustParse(
      g, "Ans(x) <- (x, p, y), (x, q, z), (x, r, w), a*(p), b*(q), (ab)*(r)");
  EvalOptions options;
  options.build_path_answers = false;
  Evaluator evaluator(&g, options);
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value().tuples().size());
  }
  state.counters["nodes"] = g.num_nodes();
  RecordBenchCase("Fig1aData_AcyclicCRPQ/" + std::to_string(state.range(0)),
                  timer,
                  {{"nodes", static_cast<double>(g.num_nodes())},
                   {"edges", static_cast<double>(g.num_edges())}});
}
BENCHMARK(BM_Fig1aData_AcyclicCRPQ)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

// The squared-strings ECRPQ (introduction) on growing word graphs.
void BM_Fig1aData_SquaredStrings(benchmark::State& state) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  Rng rng(7);
  Word word;
  for (int i = 0; i < state.range(0); ++i) {
    word.push_back(static_cast<Symbol>(rng.Below(2)));
  }
  GraphDb g = WordGraph(alphabet, word);
  Query query =
      MustParse(g, "Ans(x, y) <- (x, p, z), (z, q, y), eq(p, q)");
  EvalOptions options;
  options.build_path_answers = false;
  options.max_configs = 50000000;
  Evaluator evaluator(&g, options);
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value().tuples().size());
  }
  state.counters["word_len"] = static_cast<double>(state.range(0));
  RecordBenchCase("Fig1aData_SquaredStrings/" + std::to_string(state.range(0)),
                  timer,
                  {{"word_len", static_cast<double>(state.range(0))},
                   {"nodes", static_cast<double>(g.num_nodes())},
                   {"edges", static_cast<double>(g.num_edges())}});
}
BENCHMARK(BM_Fig1aData_SquaredStrings)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
