// The compile-once / stream-many win, quantified on the Figure 1(a)
// workload graphs: prepared re-execution (PreparedQuery::ExecuteAll)
// versus redoing the query-dependent work on every call (registry
// construction + parse + optimize + evaluate — the pre-facade call
// pattern). The gap is the amortized cost of parsing, relation-automaton
// construction, ε-elimination, and analysis; it widens with relation size
// (edit2 is a large automaton) and shrinks as the data-dependent work
// grows with |G|.

#include <benchmark/benchmark.h>

#include "api/api.h"
#include "bench_util.h"
#include "query/optimizer.h"

namespace {

using namespace ecrpq;
using namespace ecrpq_bench;

constexpr const char* kCrpqText = "Ans(x, y) <- (x, p, y), (ab)*(p)";
constexpr const char* kEcrpqText =
    "Ans() <- (x, p, y), (x, q, z), el(p, q), a*(p), b*(q)";
constexpr const char* kEditText =
    R"(Ans() <- (x, p, y), (x, q, z), edit2(p, q), (ab)*(p))";

EvalOptions BenchOptions() {
  EvalOptions options;
  options.build_path_answers = false;
  options.max_configs = 50000000;
  return options;
}

// The pre-facade pattern: every call pays registry construction, parse,
// optimization, and compilation before evaluating.
void ParsePerCall(benchmark::State& state, const char* text,
                  const char* case_name) {
  GraphDb g = MakeLayeredGraph(static_cast<int>(state.range(0)));
  Evaluator evaluator(&g, BenchOptions());
  size_t answers = 0;
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    RelationRegistry registry = RelationRegistry::Default();
    auto query = ParseQuery(text, g.alphabet(), registry);
    if (!query.ok()) {
      state.SkipWithError(query.status().ToString().c_str());
      break;
    }
    auto optimized = OptimizeQuery(query.value());
    if (!optimized.ok()) {
      state.SkipWithError(optimized.status().ToString().c_str());
      break;
    }
    auto result = evaluator.Evaluate(optimized.value().query);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    answers = result.value().tuples().size();
    timer.End();
  }
  state.counters["answers"] = static_cast<double>(answers);
  RecordBenchCase(std::string("ApiPrepared_") + case_name + "/parse-per-call/" +
                      std::to_string(state.range(0)),
                  timer, {{"nodes", static_cast<double>(g.num_nodes())},
                          {"answers", static_cast<double>(answers)}});
}

// The facade pattern: Prepare once, execute per iteration.
void PreparedReexecute(benchmark::State& state, const char* text,
                       const char* case_name) {
  DatabaseOptions options;
  options.eval = BenchOptions();
  Database db(MakeLayeredGraph(static_cast<int>(state.range(0))), options);
  auto prepared = db.Prepare(text);
  if (!prepared.ok()) {
    state.SkipWithError(prepared.status().ToString().c_str());
    return;
  }
  size_t answers = 0;
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = prepared.value().ExecuteAll();
    timer.End();
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    answers = result.value().tuples().size();
  }
  state.counters["answers"] = static_cast<double>(answers);
  RecordBenchCase(std::string("ApiPrepared_") + case_name + "/prepared/" +
                      std::to_string(state.range(0)),
                  timer, {{"nodes", static_cast<double>(db.graph().num_nodes())},
                          {"answers", static_cast<double>(answers)}});
}

void BM_Fig1a_CRPQ_ParsePerCall(benchmark::State& state) {
  ParsePerCall(state, kCrpqText, "CRPQ");
}
void BM_Fig1a_CRPQ_Prepared(benchmark::State& state) {
  PreparedReexecute(state, kCrpqText, "CRPQ");
}
void BM_Fig1a_ECRPQ_ParsePerCall(benchmark::State& state) {
  ParsePerCall(state, kEcrpqText, "ECRPQ");
}
void BM_Fig1a_ECRPQ_Prepared(benchmark::State& state) {
  PreparedReexecute(state, kEcrpqText, "ECRPQ");
}
void BM_Fig1a_Edit2_ParsePerCall(benchmark::State& state) {
  ParsePerCall(state, kEditText, "Edit2");
}
void BM_Fig1a_Edit2_Prepared(benchmark::State& state) {
  PreparedReexecute(state, kEditText, "Edit2");
}

BENCHMARK(BM_Fig1a_CRPQ_ParsePerCall)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Fig1a_CRPQ_Prepared)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Fig1a_ECRPQ_ParsePerCall)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Fig1a_ECRPQ_Prepared)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Fig1a_Edit2_ParsePerCall)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Fig1a_Edit2_Prepared)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
