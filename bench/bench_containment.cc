// Section 7: containment. Exact single-atom containment reduces to regular
// inclusion (the tractable tip of the EXPSPACE iceberg); the bounded
// canonical-database search scales with the enumeration bound. The
// undecidable general case has no bench — see DESIGN.md.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/containment.h"

namespace {

using namespace ecrpq;
using namespace ecrpq_bench;

void BM_Containment_SingleAtomInclusion(benchmark::State& state) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  // Regex pairs of growing size: (ab)^n-ish blocks vs (a|b)*.
  const int n = static_cast<int>(state.range(0));
  std::string block;
  for (int i = 0; i < n; ++i) block += "ab";
  auto q1 = ParseQuery("Ans(x, y) <- (x, p, y), (" + block + ")*(p)",
                       *alphabet);
  auto q2 = ParseQuery("Ans(x, y) <- (x, p, y), (ab)*(p)", *alphabet);
  if (!q1.ok() || !q2.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = SingleAtomContained(q1.value(), q2.value());
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value());
  }
  state.counters["block"] = static_cast<double>(n);
  RecordBenchCase("Containment_SingleAtomInclusion/" + std::to_string(n),
                  timer, {{"block", static_cast<double>(n)}});
}
BENCHMARK(BM_Containment_SingleAtomInclusion)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Containment_BoundedCanonicalSearch(benchmark::State& state) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  auto q = ParseQuery(
      "Ans(x, y) <- (x, p, z), (z, q, y), eq(p, q), a*(p), a*(q)",
      *alphabet);
  auto q_prime = ParseQuery("Ans(x, y) <- (x, p, y), (aa)*(p)", *alphabet);
  if (!q.ok() || !q_prime.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  ContainmentOptions options;
  options.max_word_length = static_cast<int>(state.range(0));
  options.max_candidates = 2000;
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = CheckContainmentBounded(q.value(), q_prime.value(),
                                          options);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value().verdict);
  }
  state.counters["word_bound"] = static_cast<double>(state.range(0));
  RecordBenchCase("Containment_BoundedCanonicalSearch/" +
                      std::to_string(state.range(0)),
                  timer,
                  {{"word_bound", static_cast<double>(state.range(0))}});
}
BENCHMARK(BM_Containment_BoundedCanonicalSearch)
    ->DenseRange(2, 8, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
