// Theorem 6.7: under the length abstraction Q_len, ECRPQ combined
// complexity drops from PSPACE to NP. Measured shape: the REI family under
// the exact product engine grows exponentially with the number of
// expressions, while the same queries under Q_len stay flat (labels are
// erased, so the intersection constraint degenerates).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/eval_qlen.h"

namespace {

using namespace ecrpq;
using namespace ecrpq_bench;

void BM_Thm67_ExactRei(benchmark::State& state) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = UniversalWordGraph(alphabet);
  Query query = MustParse(g, ReiQuery(static_cast<int>(state.range(0))));
  EvalOptions options;
  options.build_path_answers = false;
  options.max_configs = 100000000;
  options.engine = Engine::kProduct;
  Evaluator evaluator(&g, options);
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = evaluator.Evaluate(query);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value().AsBool());
  }
  state.counters["expressions"] = static_cast<double>(state.range(0));
  RecordBenchCase("Thm67_ExactRei/" + std::to_string(state.range(0)), timer,
                  {{"expressions", static_cast<double>(state.range(0))}});
}
BENCHMARK(BM_Thm67_ExactRei)->DenseRange(1, 4)->Unit(
    benchmark::kMillisecond);

void BM_Thm67_QlenRei(benchmark::State& state) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = UniversalWordGraph(alphabet);
  Query query = MustParse(g, ReiQuery(static_cast<int>(state.range(0))));
  EvalOptions options;
  options.build_path_answers = false;
  options.max_configs = 100000000;
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = EvaluateQlen(g, query, options);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value().AsBool());
  }
  state.counters["expressions"] = static_cast<double>(state.range(0));
  RecordBenchCase("Thm67_QlenRei/" + std::to_string(state.range(0)), timer,
                  {{"expressions", static_cast<double>(state.range(0))}});
}
BENCHMARK(BM_Thm67_QlenRei)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);

// Chrobak decomposition cost (the Claim 6.7.1/2 machinery): path-length
// sets between node pairs as arithmetic progressions, graph size sweep.
void BM_Thm67_ChrobakDecomposition(benchmark::State& state) {
  auto alphabet = Alphabet::FromLabels({"a"});
  Rng rng(23);
  GraphDb g = RandomGraph(alphabet, static_cast<int>(state.range(0)),
                          2 * static_cast<int>(state.range(0)), &rng);
  size_t progressions = 0;
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    SemilinearSet1D set = PathLengthSet(g, 0, g.num_nodes() - 1);
    timer.End();
    progressions = set.progressions().size();
    benchmark::DoNotOptimize(progressions);
  }
  state.counters["nodes"] = g.num_nodes();
  state.counters["progressions"] = static_cast<double>(progressions);
  RecordBenchCase("Thm67_ChrobakDecomposition/" +
                      std::to_string(state.range(0)),
                  timer, {{"nodes", static_cast<double>(g.num_nodes())},
                          {"progressions",
                           static_cast<double>(progressions)}});
}
BENCHMARK(BM_Thm67_ChrobakDecomposition)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
