// Shared workload builders for the benchmark harness. Each bench binary
// regenerates one row/figure of the paper's evaluation (see DESIGN.md's
// per-experiment index and EXPERIMENTS.md for the mapping).

#ifndef ECRPQ_BENCH_BENCH_UTIL_H_
#define ECRPQ_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#if defined(__GLIBC__)
#include <errno.h>  // program_invocation_short_name
#endif

#include "core/evaluator.h"
#include "graph/generators.h"
#include "query/parser.h"

namespace ecrpq_bench {

using namespace ecrpq;

// ---- machine-readable results ---------------------------------------------
//
// Every fig1a/fig1b bench records one entry per benchmark case into
// BENCH_<binary>.json, written into the working directory at process exit:
//   {"bench": "...", "cases": [{"name": ..., "median_ns": ...,
//                               "props": {"nodes": ..., ...}}]}
// median_ns is the median of per-iteration wall times sampled inside the
// benchmark loop; props carry graph sizes / query shape, so the perf
// trajectory across PRs is trackable by tooling. Case names of the form
// "<base>/indexed/..." and "<base>/scan/..." are twins measuring the same
// workload with and without the CSR GraphIndex; the writer prints an
// indexed-vs-scan comparison for each twin pair at exit, so the speedup
// is measured by the bench itself rather than asserted.

/// Per-iteration wall-clock sampler (Begin/End around the measured work).
class MedianTimer {
 public:
  void Begin() { start_ = Clock::now(); }
  void End() {
    samples_.push_back(
        std::chrono::duration<double, std::nano>(Clock::now() - start_)
            .count());
  }
  double MedianNs() const {
    if (samples_.empty()) return 0.0;
    std::vector<double> s = samples_;
    size_t mid = s.size() / 2;
    std::nth_element(s.begin(), s.begin() + mid, s.end());
    return s[mid];
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  std::vector<double> samples_;
};

using BenchProps = std::vector<std::pair<std::string, double>>;

/// Process-wide result log; flushed to BENCH_<binary>.json at exit.
class BenchResultLog {
 public:
  static BenchResultLog& Get() {
    static BenchResultLog log;
    return log;
  }

  void Record(const std::string& case_name, double median_ns,
              BenchProps props) {
    for (Entry& e : entries_) {
      if (e.name == case_name) {  // repeated case: keep the latest run
        e.median_ns = median_ns;
        e.props = std::move(props);
        return;
      }
    }
    entries_.push_back({case_name, median_ns, std::move(props)});
  }

  BenchResultLog(const BenchResultLog&) = delete;
  BenchResultLog& operator=(const BenchResultLog&) = delete;

  ~BenchResultLog() {
    if (entries_.empty()) return;
    WriteJson();
    // Twin-case comparisons measured by the bench itself: the CSR index
    // vs. the adjacency scan, the cost-based planner vs. the legacy and
    // monolithic execution modes (bench_planner_join), and the
    // direction-aware searches vs. forward-only (bench_bidirectional).
    PrintTwinSpeedups("/indexed", "/scan", "indexed-vs-scan");
    PrintTwinSpeedups("/planned", "/monolithic", "planned-vs-monolithic");
    PrintTwinSpeedups("/planned", "/legacy", "planned-vs-legacy");
    PrintTwinSpeedups("/threads/2", "/threads/1", "parallel-1to2");
    PrintTwinSpeedups("/threads/4", "/threads/1", "parallel-1to4");
    PrintTwinSpeedups("/threads/8", "/threads/1", "parallel-1to8");
    PrintTwinSpeedups("/bidir", "/fwd", "bidirectional-vs-forward");
    PrintTwinSpeedups("/bwd", "/fwd", "backward-vs-forward");
    PrintTwinSpeedups("/cached", "/nocache", "cache-vs-nocache");
    // bench_mutation: O(delta) snapshot maintenance vs full rebuild, and
    // the (absence of a) read tax after compaction folds the chain.
    PrintTwinSpeedups("/delta", "/rebuild", "delta-vs-rebuild");
    PrintTwinSpeedups("/compacted", "/fresh", "compacted-vs-fresh");
    PrintTwinSpeedups("/chain/32", "/fresh", "chain32-vs-fresh");
    // bench_mutation durability tiers: the WAL tax per fsync policy
    // over the non-durable delta write path. fsync=interval is the
    // acceptance gate — within 2x of non-durable, i.e. speedup >= 0.5.
    PrintTwinSpeedups("DurableWriteToRead/always/batch",
                      "DbWriteToRead/delta/batch", "durable-always-vs-delta");
    PrintTwinSpeedups("DurableWriteToRead/interval/batch",
                      "DbWriteToRead/delta/batch", "durable-interval-vs-delta");
    PrintTwinSpeedups("DurableWriteToRead/never/batch",
                      "DbWriteToRead/delta/batch", "durable-never-vs-delta");
  }

 private:
  struct Entry {
    std::string name;
    double median_ns;
    BenchProps props;
  };

  BenchResultLog() = default;

  static std::string BinaryName() {
#if defined(__GLIBC__)
    return program_invocation_short_name;
#else
    return "bench";
#endif
  }

  // Writes one JSON file to `path`; returns false when the path was not
  // writable (e.g. a read-only checkout for the repo-root copy). The
  // write is atomic — temp file in the same directory, then rename — so
  // a concurrent reader (CI collecting artifacts, diff_bench_medians.py
  // on a watch loop) never observes a truncated file, and a crashed
  // bench never leaves half a JSON behind.
  bool WriteJsonTo(const std::string& path) const {
    const std::string bench = BinaryName();
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"cases\": [\n",
                 bench.c_str());
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f, "    {\"name\": \"%s\", \"median_ns\": %.1f",
                   e.name.c_str(), e.median_ns);
      std::fprintf(f, ", \"props\": {");
      for (size_t p = 0; p < e.props.size(); ++p) {
        std::fprintf(f, "%s\"%s\": %g", p > 0 ? ", " : "",
                     e.props[p].first.c_str(), e.props[p].second);
      }
      std::fprintf(f, "}}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return false;
    }
    std::fprintf(stderr, "[bench-json] wrote %s (%zu cases)\n", path.c_str(),
                 entries_.size());
    return true;
  }

  void WriteJson() const {
    const std::string name = "BENCH_" + BinaryName() + ".json";
    // Working-directory copy (the build tree in CI, uploaded as the
    // artifact) plus the committed-trajectory copy at the repo root:
    // scripts/diff_bench_medians.py diffs fresh medians against the
    // checked-in baselines, so the perf trajectory lives in git.
    WriteJsonTo(name);
#ifdef ECRPQ_REPO_ROOT
    WriteJsonTo(std::string(ECRPQ_REPO_ROOT) + "/" + name);
#endif
  }

  // Prints `fast` vs `slow` medians for every case pair differing only in
  // that path segment (e.g. ".../indexed/4" against ".../scan/4").
  void PrintTwinSpeedups(const std::string& fast, const std::string& slow,
                         const char* tag) const {
    const char* fast_label = fast.c_str() + (fast[0] == '/' ? 1 : 0);
    const char* slow_label = slow.c_str() + (slow[0] == '/' ? 1 : 0);
    for (const Entry& e : entries_) {
      size_t pos = e.name.find(fast);
      if (pos == std::string::npos) continue;
      std::string twin = e.name;
      twin.replace(pos, fast.size(), slow);
      for (const Entry& s : entries_) {
        if (s.name != twin || e.median_ns <= 0.0) continue;
        std::fprintf(stderr,
                     "[%s] %s: %s %.3f ms, %s %.3f ms, speedup %.2fx\n",
                     tag, e.name.c_str(), fast_label,
                     e.median_ns / 1e6, slow_label, s.median_ns / 1e6,
                     s.median_ns / e.median_ns);
      }
    }
  }

  std::vector<Entry> entries_;
};

/// Records one finished benchmark case (median of `timer`'s samples).
inline void RecordBenchCase(const std::string& case_name,
                            const MedianTimer& timer, BenchProps props) {
  BenchResultLog::Get().Record(case_name, timer.MedianNs(), std::move(props));
}

/// A deterministic layered graph with ~`nodes` nodes over {a, b}.
inline GraphDb MakeLayeredGraph(int nodes, uint64_t seed = 42) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  Rng rng(seed);
  int width = 4;
  int layers = std::max(2, nodes / width);
  return LayeredGraph(alphabet, layers, width, 2, &rng);
}

/// A deterministic random graph with `nodes` nodes and 3x edges.
inline GraphDb MakeRandomGraph(int nodes, uint64_t seed = 42) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  Rng rng(seed);
  return RandomGraph(alphabet, nodes, 3 * nodes, &rng);
}

/// Parses a query against a graph's alphabet or dies.
inline Query MustParse(const GraphDb& g, const std::string& text) {
  auto query = ParseQuery(text, g.alphabet());
  if (!query.ok()) {
    std::fprintf(stderr, "query parse failed: %s\n",
                 query.status().ToString().c_str());
    std::abort();
  }
  return std::move(query).value();
}

/// The Theorem 6.3 REI query family: m expressions intersected via shared
/// equality constraints on the universal word graph. Expression i is
/// (a^{p_i})* for small periods p_i, so the joint constraint forces word
/// lengths divisible by lcm(p_1..p_m) — the classic exponential family.
inline std::string ReiQuery(int m) {
  static const int kPeriods[] = {2, 3, 5, 7, 11, 13};
  std::string body;
  for (int i = 0; i < m; ++i) {
    if (i > 0) body += ", ";
    body += "(x" + std::to_string(i) + ", p" + std::to_string(i) + ", y" +
            std::to_string(i) + ")";
  }
  for (int i = 0; i < m; ++i) {
    std::string block = "(";
    for (int j = 0; j < kPeriods[i]; ++j) block += "a";
    block += ")*";
    body += ", " + block + "(p" + std::to_string(i) + ")";
  }
  for (int i = 1; i < m; ++i) {
    body += ", eq(p0, p" + std::to_string(i) + ")";
  }
  return "Ans() <- " + body;
}

/// The same family written with ONE shared path variable (Prop 6.8's
/// relational repetition).
inline std::string ReiRepetitionQuery(int m) {
  static const int kPeriods[] = {2, 3, 5, 7, 11, 13};
  std::string body;
  for (int i = 0; i < m; ++i) {
    if (i > 0) body += ", ";
    body += "(x" + std::to_string(i) + ", p, y" + std::to_string(i) + ")";
  }
  for (int i = 0; i < m; ++i) {
    std::string block = "(";
    for (int j = 0; j < kPeriods[i]; ++j) block += "a";
    block += ")*";
    body += ", " + block + "(p)";
  }
  return "Ans() <- " + body;
}

/// Control family: the same m languages on independent path variables
/// (a plain acyclic CRPQ; polynomial).
inline std::string IndependentLanguagesQuery(int m) {
  static const int kPeriods[] = {2, 3, 5, 7, 11, 13};
  std::string body;
  for (int i = 0; i < m; ++i) {
    if (i > 0) body += ", ";
    body += "(x" + std::to_string(i) + ", p" + std::to_string(i) + ", y" +
            std::to_string(i) + ")";
  }
  for (int i = 0; i < m; ++i) {
    std::string block = "(";
    for (int j = 0; j < kPeriods[i]; ++j) block += "a";
    block += ")*";
    body += ", " + block + "(p" + std::to_string(i) + ")";
  }
  return "Ans() <- " + body;
}

/// Chain CRPQ with m atoms: (x0,p0,x1),...,(x_{m-1},p_{m-1},x_m).
inline std::string ChainCrpq(int m) {
  std::string body;
  for (int i = 0; i < m; ++i) {
    if (i > 0) body += ", ";
    body += "(x" + std::to_string(i) + ", p" + std::to_string(i) + ", x" +
            std::to_string(i + 1) + ")";
  }
  for (int i = 0; i < m; ++i) {
    body += std::string(", ") + (i % 2 == 0 ? "a*" : "b*") + "(p" +
            std::to_string(i) + ")";
  }
  return "Ans(x0, x" + std::to_string(m) + ") <- " + body;
}

}  // namespace ecrpq_bench

#endif  // ECRPQ_BENCH_BENCH_UTIL_H_
