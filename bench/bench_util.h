// Shared workload builders for the benchmark harness. Each bench binary
// regenerates one row/figure of the paper's evaluation (see DESIGN.md's
// per-experiment index and EXPERIMENTS.md for the mapping).

#ifndef ECRPQ_BENCH_BENCH_UTIL_H_
#define ECRPQ_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "core/evaluator.h"
#include "graph/generators.h"
#include "query/parser.h"

namespace ecrpq_bench {

using namespace ecrpq;

/// A deterministic layered graph with ~`nodes` nodes over {a, b}.
inline GraphDb MakeLayeredGraph(int nodes, uint64_t seed = 42) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  Rng rng(seed);
  int width = 4;
  int layers = std::max(2, nodes / width);
  return LayeredGraph(alphabet, layers, width, 2, &rng);
}

/// A deterministic random graph with `nodes` nodes and 3x edges.
inline GraphDb MakeRandomGraph(int nodes, uint64_t seed = 42) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  Rng rng(seed);
  return RandomGraph(alphabet, nodes, 3 * nodes, &rng);
}

/// Parses a query against a graph's alphabet or dies.
inline Query MustParse(const GraphDb& g, const std::string& text) {
  auto query = ParseQuery(text, g.alphabet());
  if (!query.ok()) {
    std::fprintf(stderr, "query parse failed: %s\n",
                 query.status().ToString().c_str());
    std::abort();
  }
  return std::move(query).value();
}

/// The Theorem 6.3 REI query family: m expressions intersected via shared
/// equality constraints on the universal word graph. Expression i is
/// (a^{p_i})* for small periods p_i, so the joint constraint forces word
/// lengths divisible by lcm(p_1..p_m) — the classic exponential family.
inline std::string ReiQuery(int m) {
  static const int kPeriods[] = {2, 3, 5, 7, 11, 13};
  std::string body;
  for (int i = 0; i < m; ++i) {
    if (i > 0) body += ", ";
    body += "(x" + std::to_string(i) + ", p" + std::to_string(i) + ", y" +
            std::to_string(i) + ")";
  }
  for (int i = 0; i < m; ++i) {
    std::string block = "(";
    for (int j = 0; j < kPeriods[i]; ++j) block += "a";
    block += ")*";
    body += ", " + block + "(p" + std::to_string(i) + ")";
  }
  for (int i = 1; i < m; ++i) {
    body += ", eq(p0, p" + std::to_string(i) + ")";
  }
  return "Ans() <- " + body;
}

/// The same family written with ONE shared path variable (Prop 6.8's
/// relational repetition).
inline std::string ReiRepetitionQuery(int m) {
  static const int kPeriods[] = {2, 3, 5, 7, 11, 13};
  std::string body;
  for (int i = 0; i < m; ++i) {
    if (i > 0) body += ", ";
    body += "(x" + std::to_string(i) + ", p, y" + std::to_string(i) + ")";
  }
  for (int i = 0; i < m; ++i) {
    std::string block = "(";
    for (int j = 0; j < kPeriods[i]; ++j) block += "a";
    block += ")*";
    body += ", " + block + "(p)";
  }
  return "Ans() <- " + body;
}

/// Control family: the same m languages on independent path variables
/// (a plain acyclic CRPQ; polynomial).
inline std::string IndependentLanguagesQuery(int m) {
  static const int kPeriods[] = {2, 3, 5, 7, 11, 13};
  std::string body;
  for (int i = 0; i < m; ++i) {
    if (i > 0) body += ", ";
    body += "(x" + std::to_string(i) + ", p" + std::to_string(i) + ", y" +
            std::to_string(i) + ")";
  }
  for (int i = 0; i < m; ++i) {
    std::string block = "(";
    for (int j = 0; j < kPeriods[i]; ++j) block += "a";
    block += ")*";
    body += ", " + block + "(p" + std::to_string(i) + ")";
  }
  return "Ans() <- " + body;
}

/// Chain CRPQ with m atoms: (x0,p0,x1),...,(x_{m-1},p_{m-1},x_m).
inline std::string ChainCrpq(int m) {
  std::string body;
  for (int i = 0; i < m; ++i) {
    if (i > 0) body += ", ";
    body += "(x" + std::to_string(i) + ", p" + std::to_string(i) + ", x" +
            std::to_string(i + 1) + ")";
  }
  for (int i = 0; i < m; ++i) {
    body += std::string(", ") + (i % 2 == 0 ? "a*" : "b*") + "(p" +
            std::to_string(i) + ")";
  }
  return "Ans(x0, x" + std::to_string(m) + ") <- " + body;
}

}  // namespace ecrpq_bench

#endif  // ECRPQ_BENCH_BENCH_UTIL_H_
