// Figure 1(b), negation columns (Theorems 8.1/8.2): CRPQ¬ has NL data
// complexity (polynomial growth in |G| for a fixed formula), while ECRPQ¬
// is non-elementary — automaton sizes in the Claim 8.1.3 construction grow
// by roughly one exponential per quantifier alternation. We measure both
// time and the largest intermediate automaton.

#include <benchmark/benchmark.h>

#include <functional>

#include "automata/regex.h"
#include "bench_util.h"
#include "core/eval_negation.h"
#include "relations/builtin.h"

namespace {

using namespace ecrpq;
using namespace ecrpq_bench;

std::shared_ptr<const RegularRelation> Lang(const GraphDb& g,
                                            std::string_view regex) {
  Alphabet copy;
  for (Symbol s = 0; s < g.alphabet().size(); ++s) {
    copy.Intern(g.alphabet().Label(s));
  }
  auto re = ParseRegexStrict(regex, copy);
  return std::make_shared<RegularRelation>(RegularRelation::FromLanguage(
      g.alphabet().size(), re.value()->ToNfa(g.alphabet().size())));
}

// Fixed CRPQ¬ sentence over growing graphs: ∃x∃y ¬∃π ((x,π,y) ∧ a+(π)).
void BM_Fig1bNegation_CrpqNotDataComplexity(benchmark::State& state) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  Rng rng(13);
  GraphDb g = RandomGraph(alphabet, static_cast<int>(state.range(0)),
                          2 * static_cast<int>(state.range(0)), &rng);
  auto inner = Formula::ExistsPath(
      "pi", Formula::And(Formula::PathAtom("x", "pi", "y"),
                         Formula::Relation(Lang(g, "a+"), {"pi"})));
  auto f = Formula::ExistsNode("x",
                               Formula::ExistsNode("y", Formula::Not(inner)));
  MedianTimer timer;
  for (auto _ : state) {
    timer.Begin();
    auto result = EvaluateSentence(g, f);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value());
  }
  state.counters["nodes"] = g.num_nodes();
  RecordBenchCase("Fig1bNegation_CrpqNotDataComplexity/" +
                      std::to_string(state.range(0)),
                  timer,
                  {{"nodes", static_cast<double>(g.num_nodes())},
                   {"edges", static_cast<double>(g.num_edges())}});
}
BENCHMARK(BM_Fig1bNegation_CrpqNotDataComplexity)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ECRPQ¬ with growing quantifier alternation depth on a fixed 2-node
// graph: alternation d wraps the body in d layers of ∀π∃ω(π=ω ∧ ...).
void BM_Fig1bNegation_EcrpqAlternation(benchmark::State& state) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g(alphabet);
  NodeId u = g.AddNode("u");
  NodeId v = g.AddNode("v");
  NodeId w = g.AddNode("w");
  g.AddEdge(u, Symbol{0}, v);
  g.AddEdge(v, Symbol{1}, v);
  g.AddEdge(v, Symbol{0}, w);
  g.AddEdge(w, Symbol{1}, u);

  const int depth = static_cast<int>(state.range(0));
  // inner_0(π)  = ab*(π)
  // inner_d(π)  = ∀ω ((x,ω,y) ∧ el(π,ω) → inner_{d-1}(ω))
  // sentence(d) = ∃x∃y∃π ((x,π,y) ∧ inner_d(π))
  // Every layer adds one quantifier alternation (one complementation).
  auto el = std::make_shared<RegularRelation>(
      EqualLengthRelation(g.alphabet().size()));
  std::function<FormulaPtr(int, const std::string&)> inner =
      [&](int d, const std::string& pi) -> FormulaPtr {
    if (d == 0) return Formula::Relation(Lang(g, "ab*"), {pi});
    std::string omega = "w" + std::to_string(d);
    return Formula::ForallPath(
        omega,
        Formula::Or(
            Formula::Not(Formula::And(Formula::PathAtom("x", omega, "y"),
                                      Formula::Relation(el, {pi, omega}))),
            inner(d - 1, omega)));
  };
  FormulaPtr sentence = Formula::ExistsNode(
      "x",
      Formula::ExistsNode(
          "y", Formula::ExistsPath(
                   "p", Formula::And(Formula::PathAtom("x", "p", "y"),
                                     inner(depth, "p")))));

  NegationStats stats;
  MedianTimer timer;
  for (auto _ : state) {
    stats = NegationStats();
    timer.Begin();
    auto result = EvaluateSentence(g, sentence, &stats);
    timer.End();
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result.value());
  }
  state.counters["alternations"] = static_cast<double>(depth);
  state.counters["max_states"] = static_cast<double>(stats.max_states);
  state.counters["determinizations"] =
      static_cast<double>(stats.determinizations);
  RecordBenchCase("Fig1bNegation_EcrpqAlternation/" + std::to_string(depth),
                  timer,
                  {{"alternations", static_cast<double>(depth)},
                   {"nodes", static_cast<double>(g.num_nodes())},
                   {"edges", static_cast<double>(g.num_edges())},
                   {"max_states", static_cast<double>(stats.max_states)}});
}
BENCHMARK(BM_Fig1bNegation_EcrpqAlternation)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
