// Approximate matching / biological sequence alignment (Section 4).
//
// Two DNA-like sequences are stored as paths in one graph database; the
// edit-distance regular relation D≤k decides whether they align within k
// edits, and an alignment ECRPQ returns the actual mismatch.
//
//   $ ./sequence_alignment [length] [edits] [seed]

#include <cstdlib>
#include <iostream>

#include "core/evaluator.h"
#include "graph/generators.h"
#include "query/parser.h"
#include "relations/builtin.h"

using namespace ecrpq;

int main(int argc, char** argv) {
  int length = argc > 1 ? std::atoi(argv[1]) : 8;
  int edits = argc > 2 ? std::atoi(argv[2]) : 2;
  uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  auto alphabet = Alphabet::FromLabels({"a", "c", "g", "t"});
  Rng rng(seed);
  Word x = RandomDna(alphabet, length, &rng);
  Word y = MutateWord(alphabet, x, edits, &rng);
  std::cout << "x = " << alphabet->Format(x) << "\n"
            << "y = " << alphabet->Format(y) << "  ("
            << edits << " random edits applied)\n"
            << "exact edit distance (DP): " << EditDistance(x, y) << "\n\n";

  GraphDb g = TwoWordGraph(alphabet, x, y);
  std::string x_end = "x" + std::to_string(x.size());
  std::string y_end = "y" + std::to_string(y.size());

  Evaluator evaluator(&g);
  for (int k = 0; k <= 3; ++k) {
    RelationRegistry registry = RelationRegistry::Default();
    registry.Register("editk", std::make_shared<RegularRelation>(
                                   EditDistanceAtMostRelation(4, k)));
    auto query = ParseQuery(
        R"(Ans() <- ("x0", p, ")" + x_end + R"("), ("y0", q, ")" + y_end +
            R"("), editk(p, q))",
        g.alphabet(), registry);
    if (!query.ok()) {
      std::cerr << query.status().ToString() << "\n";
      return 1;
    }
    auto result = evaluator.Evaluate(query.value());
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    std::cout << "edit distance <= " << k << " ?  "
              << (result.value().AsBool() ? "yes" : "no") << "\n";
  }
  return 0;
}
