// Approximate matching / biological sequence alignment (Section 4).
//
// Two DNA-like sequences are stored as paths in one graph database; the
// edit-distance regular relation D≤k decides whether they align within k
// edits, and an alignment ECRPQ returns the actual mismatch. The four
// thresholds are four prepared plans on one session; endpoints are
// $parameters.
//
//   $ ./sequence_alignment [length] [edits] [seed]

#include <cstdlib>
#include <iostream>

#include "api/api.h"
#include "graph/generators.h"
#include "relations/builtin.h"

using namespace ecrpq;

int main(int argc, char** argv) {
  int length = argc > 1 ? std::atoi(argv[1]) : 8;
  int edits = argc > 2 ? std::atoi(argv[2]) : 2;
  uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  auto alphabet = Alphabet::FromLabels({"a", "c", "g", "t"});
  Rng rng(seed);
  Word x = RandomDna(alphabet, length, &rng);
  Word y = MutateWord(alphabet, x, edits, &rng);
  std::cout << "x = " << alphabet->Format(x) << "\n"
            << "y = " << alphabet->Format(y) << "  ("
            << edits << " random edits applied)\n"
            << "exact edit distance (DP): " << EditDistance(x, y) << "\n\n";

  Database db(TwoWordGraph(alphabet, x, y));
  for (int k = 0; k <= 3; ++k) {
    db.RegisterRelation(
        "edit_le_" + std::to_string(k),
        std::make_shared<RegularRelation>(EditDistanceAtMostRelation(4, k)));
    auto within = db.Exists(
        "Ans() <- ($x0, p, $x1), ($y0, q, $y1), edit_le_" +
            std::to_string(k) + "(p, q)",
        Params()
            .Set("x0", "x0")
            .Set("x1", "x" + std::to_string(x.size()))
            .Set("y0", "y0")
            .Set("y1", "y" + std::to_string(y.size())));
    if (!within.ok()) {
      std::cerr << within.status().ToString() << "\n";
      return 1;
    }
    std::cout << "edit distance <= " << k << " ?  "
              << (within.value() ? "yes" : "no") << "\n";
  }
  return 0;
}
