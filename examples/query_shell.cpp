// Interactive query shell: load a graph (text format of graph/io.h) and
// evaluate (E)CRPQs against it.
//
//   $ ./query_shell graph.txt
//   ecrpq> Ans(x, y) <- (x, p, y), 'advisor'+(p)
//   ecrpq> Ans(p) <- ("ann", p, "leo"), .*(p)
//   ecrpq> :graph        # show the loaded graph
//   ecrpq> :engines      # engine of the last query, stats
//   ecrpq> :quit
//
// Without an argument a small demo graph is loaded.

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/evaluator.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "query/analysis.h"
#include "query/optimizer.h"
#include "query/parser.h"

using namespace ecrpq;

namespace {

GraphDb DemoGraph() {
  GraphDb g;
  NodeId ann = g.AddNode("ann");
  NodeId bob = g.AddNode("bob");
  NodeId eva = g.AddNode("eva");
  NodeId leo = g.AddNode("leo");
  g.AddEdge(ann, "advisor", eva);
  g.AddEdge(bob, "advisor", eva);
  g.AddEdge(eva, "advisor", leo);
  g.AddEdge(bob, "coauthor", ann);
  return g;
}

void PrintResult(const GraphDb& g, const Query& query,
                 const QueryResult& result) {
  if (query.IsBoolean()) {
    std::cout << (result.AsBool() ? "true" : "false") << "\n";
    return;
  }
  std::cout << result.tuples().size() << " answer(s)";
  std::cout << "  [engine: " << result.stats().engine << "]\n";
  size_t shown = 0;
  for (size_t i = 0; i < result.tuples().size() && shown < 20; ++i, ++shown) {
    const auto& tuple = result.tuples()[i];
    std::cout << "  (";
    for (size_t k = 0; k < tuple.size(); ++k) {
      if (k > 0) std::cout << ", ";
      std::cout << g.NodeName(tuple[k]);
    }
    std::cout << ")";
    if (result.has_path_answers()) {
      const PathAnswerSet& answers = result.path_answers(i);
      std::cout << (answers.IsInfinite() ? "  [∞ paths]" : "");
      auto tuples = answers.Enumerate(1, 8);
      if (!tuples.empty()) {
        for (const Path& p : tuples[0]) {
          std::cout << "\n      " << p.ToString(g);
        }
      }
    }
    std::cout << "\n";
  }
  if (result.tuples().size() > shown) {
    std::cout << "  ... (" << result.tuples().size() - shown << " more)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  GraphDb graph = DemoGraph();
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto parsed = ParseGraphText(buffer.str());
    if (!parsed.ok()) {
      std::cerr << parsed.status().ToString() << "\n";
      return 1;
    }
    graph = std::move(parsed).value();
  }
  std::cout << "Loaded graph: " << graph.num_nodes() << " nodes, "
            << graph.num_edges() << " edges, alphabet {";
  for (Symbol s = 0; s < graph.alphabet().size(); ++s) {
    std::cout << (s ? ", " : "") << graph.alphabet().Label(s);
  }
  std::cout << "}\nType a query (Ans(...) <- ...), :graph, :help or :quit\n";

  EvalOptions options;
  options.max_configs = 10000000;
  Evaluator evaluator(&graph, options);
  RelationRegistry registry = RelationRegistry::Default();

  std::string line;
  while (std::cout << "ecrpq> " && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == ":quit" || line == ":q") break;
    if (line == ":graph") {
      std::cout << GraphToText(graph);
      continue;
    }
    if (line == ":help") {
      std::cout << "  Ans(x, y) <- (x, p, y), a*(p)          CRPQ\n"
                   "  Ans() <- (x, p, z), (z, q, y), eq(p, q) ECRPQ\n"
                   "  Ans() <- (x, p, y), len(p) >= 3         counting\n"
                   "  built-ins: eq el prefix strict_prefix shorter\n"
                   "             shorter_eq edit1..3 hamming1..3\n"
                   "  :graph :help :quit\n";
      continue;
    }
    auto query = ParseQuery(line, graph.alphabet(), registry);
    if (!query.ok()) {
      std::cout << "parse error: " << query.status().ToString() << "\n";
      continue;
    }
    auto optimized = OptimizeQuery(query.value());
    if (!optimized.ok()) {
      std::cout << "optimizer error: " << optimized.status().ToString()
                << "\n";
      continue;
    }
    std::cout << "[" << Analyze(optimized.value().query).Describe();
    if (optimized.value().report.fused_language_atoms +
            optimized.value().report.dropped_universal >
        0) {
      std::cout << "; optimizer: " << optimized.value().report.Describe();
    }
    std::cout << "]\n";
    if (optimized.value().report.proven_empty) {
      std::cout << "statically empty\n";
      continue;
    }
    auto result = evaluator.Evaluate(optimized.value().query);
    if (!result.ok()) {
      std::cout << "evaluation error: " << result.status().ToString() << "\n";
      continue;
    }
    PrintResult(graph, optimized.value().query, result.value());
  }
  return 0;
}
