// Interactive query shell: load a graph (text format of graph/io.h) and
// evaluate (E)CRPQs against it through the Database facade. Repeated
// queries hit the plan cache; results stream through a cursor.
//
//   $ ./query_shell graph.txt
//   ecrpq> Ans(x, y) <- (x, p, y), 'advisor'+(p)
//   ecrpq> Ans(p) <- ("ann", p, "leo"), .*(p)
//   ecrpq> explain Ans(x, y) <- (x, p, y), 'advisor'+(p)
//   ecrpq> threads 4     # worker lanes per query (0 = auto, 1 = serial)
//   ecrpq> :graph        # show the loaded graph
//   ecrpq> :cache        # plan-cache hit/miss counters
//   ecrpq> :quit
//
// Without an argument a small demo graph is loaded.

#include <fstream>
#include <iostream>
#include <sstream>

#include "api/api.h"
#include "graph/io.h"

using namespace ecrpq;

namespace {

GraphDb DemoGraph() {
  GraphDb g;
  NodeId ann = g.AddNode("ann");
  NodeId bob = g.AddNode("bob");
  NodeId eva = g.AddNode("eva");
  NodeId leo = g.AddNode("leo");
  g.AddEdge(ann, "advisor", eva);
  g.AddEdge(bob, "advisor", eva);
  g.AddEdge(eva, "advisor", leo);
  g.AddEdge(bob, "coauthor", ann);
  return g;
}

// Worker lanes per execution: 0 = session default (ECRPQ_THREADS env or
// hardware concurrency), 1 = the serial legacy path. Set by `threads <n>`.
int g_threads = 0;

// Print the per-operator profile after each query (toggled by `stats`):
// one line per executed operator with rows, frontier/visited counters,
// the leaf's search direction (direction=fwd|bwd|bidir) and — for
// bidirectional leaves — the meet-probe count (meet_checks=N).
bool g_stats = false;

void PrintOperatorStats(const EvalStats& stats) {
  for (const OperatorStats& op : stats.operators) {
    std::cout << "    " << op.Describe() << "\n";
  }
}

void StreamResult(const GraphDb& g, const PreparedQuery& prepared,
                  ResultCursor& cursor) {
  if (prepared.query().IsBoolean()) {
    bool satisfiable = cursor.exists();
    if (!cursor.status().ok()) {
      std::cout << "evaluation error: " << cursor.status().ToString() << "\n";
      return;
    }
    std::cout << (satisfiable ? "true" : "false");
    std::cout << "  [engine: " << cursor.stats().engine << "]\n";
    if (g_stats) PrintOperatorStats(cursor.stats());
    return;
  }
  size_t shown = 0;
  while (shown < 20 && cursor.Next()) {
    ++shown;
    const auto& tuple = cursor.tuple();
    std::cout << "  (";
    for (size_t k = 0; k < tuple.size(); ++k) {
      if (k > 0) std::cout << ", ";
      std::cout << g.NodeName(tuple[k]);
    }
    std::cout << ")";
    if (const PathAnswerSet* answers = cursor.path_answers()) {
      std::cout << (answers->IsInfinite() ? "  [∞ paths]" : "");
      auto tuples = answers->Enumerate(1, 8);
      if (!tuples.empty()) {
        for (const Path& p : tuples[0]) {
          std::cout << "\n      " << p.ToString(g);
        }
      }
    }
    std::cout << "\n";
  }
  if (!cursor.status().ok()) {
    std::cout << "evaluation error: " << cursor.status().ToString() << "\n";
    return;
  }
  size_t more = 0;
  while (cursor.Next()) ++more;  // count the tail without printing
  std::cout << shown + more << " answer(s)";
  if (more > 0) std::cout << "  (" << more << " not shown)";
  std::cout << "  [engine: " << cursor.stats().engine << "]\n";
  if (g_stats) PrintOperatorStats(cursor.stats());
}

}  // namespace

int main(int argc, char** argv) {
  GraphDb graph = DemoGraph();
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto parsed = ParseGraphText(buffer.str());
    if (!parsed.ok()) {
      std::cerr << parsed.status().ToString() << "\n";
      return 1;
    }
    graph = std::move(parsed).value();
  }

  DatabaseOptions options;
  options.eval.max_configs = 10000000;
  Database db(std::move(graph), options);

  std::cout << "Loaded graph: " << db.graph().num_nodes() << " nodes, "
            << db.graph().num_edges() << " edges, alphabet {";
  for (Symbol s = 0; s < db.graph().alphabet().size(); ++s) {
    std::cout << (s ? ", " : "") << db.graph().alphabet().Label(s);
  }
  std::cout << "}\nType a query (Ans(...) <- ...), :graph, :help or :quit\n";

  std::string line;
  while (std::cout << "ecrpq> " && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == ":quit" || line == ":q") break;
    if (line == ":graph") {
      std::cout << GraphToText(db.graph());
      continue;
    }
    if (line == ":cache") {
      std::cout << "  plan cache: " << db.plan_cache_size() << " plans, "
                << db.plan_cache_hits() << " hits, "
                << db.plan_cache_misses() << " misses\n";
      continue;
    }
    if (line == ":help") {
      std::cout << "  Ans(x, y) <- (x, p, y), a*(p)          CRPQ\n"
                   "  Ans() <- (x, p, z), (z, q, y), eq(p, q) ECRPQ\n"
                   "  Ans() <- (x, p, y), len(p) >= 3         counting\n"
                   "  Ans(y) <- ($s, p, y), a*(p)             $parameter\n"
                   "  explain <query>                         show the plan "
                   "(direction=fwd|bwd|bidir per leaf;\n"
                   "    parallelism=N on HashJoin/SemiJoinFilter lines: "
                   "worker lanes for that\n"
                   "    operator — 1 = estimated input too small, stays "
                   "inline-serial)\n"
                   "  threads <n>                             worker lanes "
                   "(0 = auto, 1 = serial)\n"
                   "  stats                                   toggle the "
                   "per-operator profile (direction, meet_checks)\n"
                   "  built-ins: eq el prefix strict_prefix shorter\n"
                   "             shorter_eq edit1..3 hamming1..3\n"
                   "  :graph :cache :help :quit\n";
      continue;
    }
    if (line == "stats") {
      g_stats = !g_stats;
      std::cout << "  per-operator stats "
                << (g_stats ? "on (direction= and meet_checks= shown per "
                              "leaf)"
                            : "off")
                << "\n";
      continue;
    }
    if (line.rfind("threads", 0) == 0) {
      std::istringstream args(line.substr(7));
      int n = -1;
      if (args >> n && n >= 0) {
        g_threads = n;
        std::cout << "  threads = " << n
                  << (n == 0 ? " (auto)" : n == 1 ? " (serial)" : "")
                  << "\n";
      } else {
        std::cout << "  usage: threads <n>   (current: " << g_threads
                  << ", 0 = auto, 1 = serial)\n";
      }
      continue;
    }
    if (line.rfind("explain ", 0) == 0) {
      auto prepared = db.Prepare(line.substr(8));
      if (!prepared.ok()) {
        std::cout << "parse error: " << prepared.status().ToString() << "\n";
        continue;
      }
      std::cout << prepared.value().Explain().ToString();
      continue;
    }
    auto prepared = db.Prepare(line);
    if (!prepared.ok()) {
      std::cout << "parse error: " << prepared.status().ToString() << "\n";
      continue;
    }
    std::cout << "[" << prepared.value().analysis().Describe();
    const OptimizerReport& report = prepared.value().optimizer_report();
    if (report.fused_language_atoms + report.dropped_universal > 0) {
      std::cout << "; optimizer: " << report.Describe();
    }
    std::cout << "]\n";
    if (report.proven_empty) {
      std::cout << "statically empty\n";
      continue;
    }
    if (!prepared.value().parameter_names().empty()) {
      std::cout << "query has unbound parameters:";
      for (const std::string& p : prepared.value().parameter_names()) {
        std::cout << " $" << p;
      }
      std::cout << " (the shell cannot bind them; inline constants)\n";
      continue;
    }
    ExecuteOptions exec;
    if (g_threads > 0) exec.num_threads = g_threads;
    auto cursor = prepared.value().Execute({}, exec);
    if (!cursor.ok()) {
      std::cout << "evaluation error: " << cursor.status().ToString() << "\n";
      continue;
    }
    StreamResult(db.graph(), prepared.value(), cursor.value());
  }
  return 0;
}
