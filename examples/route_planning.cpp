// Route finding with linear constraints on occurrence counts (Section 8.2).
//
// The paper's running example: find an itinerary from London to Sydney
// flying Singapore Airlines for at least 80% of the journey. Edges are
// fixed time slices labeled by airline; the constraint is
// occ(sq) - 4*occ(other) >= 0, evaluated by the Parikh/ILP engine of
// Theorem 8.5. Each scenario is a one-shot Exists() through the facade —
// the engine stops at the first feasible itinerary.
//
//   $ ./route_planning [num_cities] [num_routes] [seed]

#include <cstdlib>
#include <iostream>

#include "api/api.h"
#include "graph/generators.h"

using namespace ecrpq;

int main(int argc, char** argv) {
  int num_cities = argc > 1 ? std::atoi(argv[1]) : 6;
  int num_routes = argc > 2 ? std::atoi(argv[2]) : 14;
  uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;

  Rng rng(seed);
  Database db(
      FlightNetwork(num_cities, num_routes, 4, {"sq", "other"}, &rng));
  std::cout << "Flight network: " << num_cities << " cities, "
            << db.graph().num_edges() << " time-slice legs\n\n";

  const char* from = "city0";
  const char* to = "city1";
  struct Scenario {
    const char* label;
    const char* constraint;
  } scenarios[] = {
      {"any route", "len(p) >= 1"},
      {">= 50% Singapore Airlines", "occ(p, sq) - occ(p, 'other') >= 0"},
      {">= 80% Singapore Airlines",
       "occ(p, sq) - 4*occ(p, 'other') >= 0"},
      {"only Singapore Airlines", "occ(p, 'other') = 0"},
      {"short route (<= 5 legs)", "len(p) <= 5"},
  };
  Params endpoints = Params().Set("from", from).Set("to", to);
  for (const Scenario& s : scenarios) {
    std::string text = std::string("Ans() <- ($from, p, $to), ") +
                       s.constraint + ", len(p) >= 1";
    auto possible = db.Exists(text, endpoints);
    if (!possible.ok()) {
      std::cerr << possible.status().ToString() << "\n";
      return 1;
    }
    std::cout << "  " << from << " -> " << to << ", " << s.label << ": "
              << (possible.value() ? "possible" : "impossible") << "\n";
  }
  std::cout << "\nplan cache: " << db.plan_cache_misses()
            << " compilations for " << std::size(scenarios)
            << " scenarios\n";
  return 0;
}
