// Semantic-web associations (Section 4 of the paper; Anyanwu & Sheth's
// ρ-queries): find ρ-isoAssociated resources in an RDF/S-style graph and
// return the witnessing property sequences.
//
//   $ ./semantic_associations [num_resources] [num_properties] [seed]

#include <cstdlib>
#include <iostream>

#include "api/api.h"
#include "graph/generators.h"
#include "relations/builtin.h"

using namespace ecrpq;

int main(int argc, char** argv) {
  int num_resources = argc > 1 ? std::atoi(argv[1]) : 12;
  int num_properties = argc > 2 ? std::atoi(argv[2]) : 4;
  uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  Rng rng(seed);
  std::vector<std::pair<std::string, std::string>> subproperties;
  GraphDb g = RdfPropertyGraph(num_resources, num_properties, 2, &rng,
                               &subproperties);
  std::cout << "RDF graph: " << g.num_nodes() << " resources, "
            << g.num_edges() << " triples\nDeclared subproperties:\n";
  std::vector<std::pair<Symbol, Symbol>> pairs;
  for (const auto& [child, parent] : subproperties) {
    std::cout << "  " << child << " ≺ " << parent << "\n";
    pairs.emplace_back(*g.alphabet().Find(child), *g.alphabet().Find(parent));
  }

  DatabaseOptions options;
  options.eval.max_configs = 5000000;
  Database db(std::move(g), options);

  // The ρ-isomorphism regular relation ( ⋃_{a≺b or b≺a} (a,b) )*,
  // registered on the session before preparing.
  db.RegisterRelation(
      "rho", std::make_shared<RegularRelation>(RhoIsomorphismRelation(
                 db.graph().alphabet().size(), pairs)));

  // ρ-isoAssociated pairs with nonempty association (Section 4's query,
  // restricted to sequences of length >= 1 to skip the trivial ε pairs).
  auto result = db.Execute(
      "Ans(x, y, pi1, pi2) <- (x, pi1, z1), (y, pi2, z2), rho(pi1, pi2), "
      ".+(pi1)");
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nρ-isoAssociated pairs (distinct resources): \n";
  int shown = 0;
  for (size_t i = 0; i < result.value().tuples().size() && shown < 5; ++i) {
    const auto& tuple = result.value().tuples()[i];
    if (tuple[0] == tuple[1]) continue;
    std::cout << "  " << db.graph().NodeName(tuple[0]) << " ~ "
              << db.graph().NodeName(tuple[1]) << "  via\n";
    for (const PathTuple& paths :
         result.value().path_answers(i).Enumerate(1, 4)) {
      std::cout << "    "
                << db.graph().alphabet().Format(paths[0].Label(), ".")
                << "  vs  "
                << db.graph().alphabet().Format(paths[1].Label(), ".")
                << "\n";
    }
    ++shown;
  }
  if (shown == 0) {
    std::cout << "  (none for this seed — try another)\n";
  }
  return 0;
}
