// Quickstart: build a graph database, prepare and run a CRPQ and an
// ECRPQ through the Database/PreparedQuery/ResultCursor facade, and
// inspect node and path outputs.
//
//   $ ./quickstart
//
// Follows the introduction of the paper: a small advisor graph, a plain
// reachability CRPQ (with a $parameter bound at execute time), and an
// ECRPQ that compares paths with the equal-length relation — something no
// CRPQ can express (Proposition 3.2).

#include <iostream>

#include "api/api.h"

using namespace ecrpq;

int main() {
  // 1. A labeled graph database, owned by a session facade.
  GraphDb g;
  NodeId ann = g.AddNode("ann");
  NodeId bob = g.AddNode("bob");
  NodeId eva = g.AddNode("eva");
  NodeId leo = g.AddNode("leo");
  g.AddEdge(ann, "advisor", eva);
  g.AddEdge(bob, "advisor", eva);
  g.AddEdge(eva, "advisor", leo);
  g.AddEdge(bob, "coauthor", ann);
  Database db(std::move(g));

  std::cout << "Graph: " << db.graph().num_nodes() << " nodes, "
            << db.graph().num_edges() << " edges\n\n";

  // 2. A CRPQ with a parameter: academic ancestors of $who. The query is
  //    compiled once; each execution only binds the parameter.
  auto ancestors_of =
      db.Prepare("Ans(y) <- ($who, p, y), 'advisor'+(p)");
  if (!ancestors_of.ok()) {
    std::cerr << ancestors_of.status().ToString() << "\n";
    return 1;
  }
  for (const char* who : {"ann", "bob"}) {
    auto cursor = ancestors_of.value().Execute(Params().Set("who", who));
    if (!cursor.ok()) {
      std::cerr << cursor.status().ToString() << "\n";
      return 1;
    }
    std::cout << "Ancestors of " << who << ":";
    while (cursor.value().Next()) {
      std::cout << " " << db.graph().NodeName(cursor.value().tuple()[0]);
    }
    std::cout << "  (engine: " << cursor.value().stats().engine << ")\n";
  }

  // 3. An ECRPQ: pairs with equal-length advisor paths to leo, with the
  //    witnessing paths in the output.
  auto peers = db.Execute(
      R"(Ans(x, y, p, q) <- (x, p, "leo"), (y, q, "leo"), )"
      R"('advisor'+(p), 'advisor'+(q), el(p, q))");
  if (!peers.ok()) {
    std::cerr << peers.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nEqual-length advisor paths to leo (engine: "
            << peers.value().stats().engine << "):\n";
  for (size_t i = 0; i < peers.value().tuples().size(); ++i) {
    const auto& tuple = peers.value().tuples()[i];
    std::cout << "  (" << db.graph().NodeName(tuple[0]) << ", "
              << db.graph().NodeName(tuple[1]) << ")\n";
    // Path outputs are automata (Prop 5.2); enumerate a few members.
    const PathAnswerSet& answers = peers.value().path_answers(i);
    std::cout << "    "
              << (answers.IsInfinite() ? "infinitely many" : "finitely many")
              << " path pairs; first:\n";
    for (const PathTuple& paths : answers.Enumerate(1, 6)) {
      std::cout << "      p = " << paths[0].ToString(db.graph()) << "\n";
      std::cout << "      q = " << paths[1].ToString(db.graph()) << "\n";
    }
  }

  // 4. Satisfiability without materialization: the engine stops at the
  //    first answer.
  auto linked = db.Exists(R"(Ans() <- ("bob", p, "leo"), .+(p))");
  std::cout << "\nbob reaches leo?  "
            << (linked.ok() && linked.value() ? "yes" : "no") << "\n";
  return 0;
}
