// Quickstart: build a graph database, run a CRPQ and an ECRPQ, and inspect
// node and path outputs.
//
//   $ ./quickstart
//
// Follows the introduction of the paper: a small advisor graph, a plain
// reachability CRPQ, and an ECRPQ that compares paths with the equal-length
// relation — something no CRPQ can express (Proposition 3.2).

#include <iostream>

#include "core/evaluator.h"
#include "graph/graph.h"
#include "query/parser.h"

using namespace ecrpq;

int main() {
  // 1. A labeled graph database.
  GraphDb g;
  NodeId ann = g.AddNode("ann");
  NodeId bob = g.AddNode("bob");
  NodeId eva = g.AddNode("eva");
  NodeId leo = g.AddNode("leo");
  g.AddEdge(ann, "advisor", eva);
  g.AddEdge(bob, "advisor", eva);
  g.AddEdge(eva, "advisor", leo);
  g.AddEdge(bob, "coauthor", ann);

  std::cout << "Graph: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges\n\n";

  Evaluator evaluator(&g);

  // 2. A CRPQ: academic ancestors of ann.
  auto crpq = ParseQuery(R"(Ans(y) <- ("ann", p, y), 'advisor'+(p))",
                         g.alphabet());
  if (!crpq.ok()) {
    std::cerr << crpq.status().ToString() << "\n";
    return 1;
  }
  auto ancestors = evaluator.Evaluate(crpq.value());
  std::cout << "Ancestors of ann (engine: "
            << ancestors.value().stats().engine << "):\n";
  for (const auto& tuple : ancestors.value().tuples()) {
    std::cout << "  " << g.NodeName(tuple[0]) << "\n";
  }

  // 3. An ECRPQ: pairs with equal-length advisor paths to leo, with the
  //    witnessing paths in the output.
  auto ecrpq = ParseQuery(
      R"(Ans(x, y, p, q) <- (x, p, "leo"), (y, q, "leo"), )"
      R"('advisor'+(p), 'advisor'+(q), el(p, q))",
      g.alphabet());
  if (!ecrpq.ok()) {
    std::cerr << ecrpq.status().ToString() << "\n";
    return 1;
  }
  auto peers = evaluator.Evaluate(ecrpq.value());
  std::cout << "\nEqual-length advisor paths to leo (engine: "
            << peers.value().stats().engine << "):\n";
  for (size_t i = 0; i < peers.value().tuples().size(); ++i) {
    const auto& tuple = peers.value().tuples()[i];
    std::cout << "  (" << g.NodeName(tuple[0]) << ", " << g.NodeName(tuple[1])
              << ")\n";
    // Path outputs are automata (Prop 5.2); enumerate a few members.
    const PathAnswerSet& answers = peers.value().path_answers(i);
    std::cout << "    " << (answers.IsInfinite() ? "infinitely many" : "finitely many")
              << " path pairs; first:\n";
    for (const PathTuple& paths : answers.Enumerate(1, 6)) {
      std::cout << "      p = " << paths[0].ToString(g) << "\n";
      std::cout << "      q = " << paths[1].ToString(g) << "\n";
    }
  }
  return 0;
}
