// The introduction's motivating example at scale: an advisor genealogy,
// CRPQ ancestor queries, and the ECRPQ "same-length path to a common
// ancestor" query that CRPQs cannot express.
//
//   $ ./academic_genealogy [generations] [width] [seed]

#include <cstdlib>
#include <iostream>

#include "core/evaluator.h"
#include "graph/generators.h"
#include "query/parser.h"

using namespace ecrpq;

int main(int argc, char** argv) {
  int generations = argc > 1 ? std::atoi(argv[1]) : 5;
  int width = argc > 2 ? std::atoi(argv[2]) : 4;
  uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;

  Rng rng(seed);
  GraphDb g = AdvisorGenealogy(generations, width, 2, &rng);
  std::cout << "Genealogy: " << g.num_nodes() << " people, " << g.num_edges()
            << " advisor edges\n\n";

  Evaluator evaluator(&g);

  // CRPQ: common academic ancestors of two people in generation 0.
  auto common = ParseQuery(
      R"(Ans(z) <- ("p0_0", p, z), ("p0_1", q, z), )"
      R"('advisor'+(p), 'advisor'+(q))",
      g.alphabet());
  auto ancestors = evaluator.Evaluate(common.value());
  if (!ancestors.ok()) {
    std::cerr << ancestors.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Common ancestors of p0_0 and p0_1 (CRPQ, engine "
            << ancestors.value().stats().engine << "):\n";
  for (const auto& tuple : ancestors.value().tuples()) {
    std::cout << "  " << g.NodeName(tuple[0]) << "\n";
  }

  // ECRPQ: same-length advisor chains to a common ancestor — the paper's
  // "pairs of scientists who have the same-length path to a given advisor".
  auto balanced = ParseQuery(
      R"(Ans(x, y, z) <- (x, p, z), (y, q, z), )"
      R"('advisor'+(p), 'advisor'+(q), el(p, q))",
      g.alphabet());
  EvalOptions options;
  options.max_configs = 5000000;
  Evaluator heavy(&g, options);
  auto peers = heavy.Evaluate(balanced.value());
  if (!peers.ok()) {
    std::cerr << peers.status().ToString() << "\n";
    return 1;
  }
  int shown = 0;
  std::cout << "\nEqual-depth academic siblings (ECRPQ, engine "
            << peers.value().stats().engine << "): "
            << peers.value().tuples().size() << " tuples, e.g.\n";
  for (const auto& tuple : peers.value().tuples()) {
    if (tuple[0] >= tuple[1]) continue;  // skip symmetric/diagonal
    std::cout << "  " << g.NodeName(tuple[0]) << " and "
              << g.NodeName(tuple[1]) << " w.r.t. " << g.NodeName(tuple[2])
              << "\n";
    if (++shown >= 5) break;
  }
  return 0;
}
