// The introduction's motivating example at scale: an advisor genealogy,
// CRPQ ancestor queries, and the ECRPQ "same-length path to a common
// ancestor" query that CRPQs cannot express.
//
//   $ ./academic_genealogy [generations] [width] [seed]

#include <cstdlib>
#include <iostream>

#include "api/api.h"
#include "graph/generators.h"

using namespace ecrpq;

int main(int argc, char** argv) {
  int generations = argc > 1 ? std::atoi(argv[1]) : 5;
  int width = argc > 2 ? std::atoi(argv[2]) : 4;
  uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;

  Rng rng(seed);
  DatabaseOptions options;
  options.eval.max_configs = 5000000;
  Database db(AdvisorGenealogy(generations, width, 2, &rng), options);
  std::cout << "Genealogy: " << db.graph().num_nodes() << " people, "
            << db.graph().num_edges() << " advisor edges\n\n";

  // CRPQ with parameters: common academic ancestors of two people. The
  // plan is compiled once; the pair is bound per execution.
  auto common = db.Prepare(
      R"(Ans(z) <- ($a, p, z), ($b, q, z), 'advisor'+(p), 'advisor'+(q))");
  if (!common.ok()) {
    std::cerr << common.status().ToString() << "\n";
    return 1;
  }
  auto ancestors =
      common.value().Execute(Params().Set("a", "p0_0").Set("b", "p0_1"));
  if (!ancestors.ok()) {
    std::cerr << ancestors.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Common ancestors of p0_0 and p0_1 (CRPQ):\n";
  while (ancestors.value().Next()) {
    std::cout << "  " << db.graph().NodeName(ancestors.value().tuple()[0])
              << "\n";
  }
  if (!ancestors.value().status().ok()) {
    std::cerr << ancestors.value().status().ToString() << "\n";
    return 1;
  }
  std::cout << "  [engine: " << ancestors.value().stats().engine << "]\n";

  // ECRPQ: same-length advisor chains to a common ancestor — the paper's
  // "pairs of scientists who have the same-length path to a given advisor".
  auto peers = db.Execute(
      R"(Ans(x, y, z) <- (x, p, z), (y, q, z), )"
      R"('advisor'+(p), 'advisor'+(q), el(p, q))");
  if (!peers.ok()) {
    std::cerr << peers.status().ToString() << "\n";
    return 1;
  }
  int shown = 0;
  std::cout << "\nEqual-depth academic siblings (ECRPQ, engine "
            << peers.value().stats().engine << "): "
            << peers.value().tuples().size() << " tuples, e.g.\n";
  for (const auto& tuple : peers.value().tuples()) {
    if (tuple[0] >= tuple[1]) continue;  // skip symmetric/diagonal
    std::cout << "  " << db.graph().NodeName(tuple[0]) << " and "
              << db.graph().NodeName(tuple[1]) << " w.r.t. "
              << db.graph().NodeName(tuple[2]) << "\n";
    if (++shown >= 5) break;
  }
  return 0;
}
