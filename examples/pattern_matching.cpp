// Pattern matching beyond regular languages (Sections 1, 3 and 4).
//
// ECRPQs express pattern languages (and more): squared strings (XX),
// aXbX, and the non-context-free aⁿbⁿcⁿ — none definable by CRPQs
// (Proposition 3.2). Each pattern is prepared once and executed against a
// fresh word graph per input; the start/end nodes are $parameters.
//
//   $ ./pattern_matching

#include <iostream>

#include "api/api.h"
#include "core/containment.h"
#include "graph/generators.h"

using namespace ecrpq;

namespace {

Word Encode(const Alphabet& alphabet, const char* text) {
  Word w;
  for (const char* c = text; *c; ++c) {
    w.push_back(*alphabet.Find(std::string_view(c, 1)));
  }
  return w;
}

void Check(const AlphabetPtr& alphabet, const std::string& query_text,
           const char* text) {
  Word w = Encode(*alphabet, text);
  Database db(WordGraph(alphabet, w));
  auto match = db.Exists(query_text,
                         Params()
                             .Set("first", "w0")
                             .Set("last", "w" + std::to_string(w.size())));
  if (!match.ok()) {
    std::cerr << match.status().ToString() << "\n";
    return;
  }
  std::cout << "  \"" << text << "\""
            << (match.value() ? "  MATCHES" : "  no match") << "\n";
}

}  // namespace

int main() {
  auto alphabet = Alphabet::FromLabels({"a", "b", "c"});

  std::cout << "Squared strings (pattern XX):\n";
  const std::string squared =
      "Ans() <- ($first, p, z), (z, q, $last), eq(p, q)";
  for (const char* text : {"abab", "aab", "aa", "abcabc"}) {
    Check(alphabet, squared, text);
  }

  std::cout << "\nPattern aXbX (via the Theorem 7.1 encoder):\n";
  auto axbx = PatternQuery("aXbX", *alphabet);
  if (!axbx.ok()) {
    std::cerr << axbx.status().ToString() << "\n";
    return 1;
  }
  for (const char* text : {"aabab", "abb", "ab"}) {
    // The encoder produces a Query over (x, y) head variables; run it
    // through the facade's engine defaults via a per-word database.
    Word w = Encode(*alphabet, text);
    Database db(WordGraph(alphabet, w));
    auto result = Evaluator(&db.graph(), db.eval_options())
                      .Evaluate(axbx.value());
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      continue;
    }
    NodeId from = *db.graph().FindNode("w0");
    NodeId to = *db.graph().FindNode("w" + std::to_string(w.size()));
    bool match = false;
    for (const auto& tuple : result.value().tuples()) {
      if (tuple[0] == from && tuple[1] == to) match = true;
    }
    std::cout << "  \"" << text << "\""
              << (match ? "  MATCHES" : "  no match") << "\n";
  }

  std::cout << "\naⁿbⁿcⁿ (not context-free; Section 4's ECRPQ):\n";
  const std::string anbncn =
      "Ans() <- ($first, p1, z1), (z1, p2, z2), (z2, p3, $last), "
      "a*(p1), b*(p2), c*(p3), el(p1, p2), el(p2, p3)";
  for (const char* text : {"abc", "aabbcc", "aabbc", "aaabbbccc"}) {
    Check(alphabet, anbncn, text);
  }
  return 0;
}
