// Pattern matching beyond regular languages (Sections 1, 3 and 4).
//
// ECRPQs express pattern languages (and more): squared strings (XX),
// aXbX, and the non-context-free aⁿbⁿcⁿ — none definable by CRPQs
// (Proposition 3.2).
//
//   $ ./pattern_matching

#include <iostream>

#include "core/containment.h"
#include "core/evaluator.h"
#include "graph/generators.h"
#include "query/parser.h"

using namespace ecrpq;

namespace {

void Check(const GraphDb& g, const Query& query, const std::string& label,
           const std::string& first, const std::string& last) {
  Evaluator evaluator(&g);
  auto result = evaluator.Evaluate(query);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return;
  }
  NodeId from = *g.FindNode(first);
  NodeId to = *g.FindNode(last);
  bool match = false;
  for (const auto& tuple : result.value().tuples()) {
    if (tuple[0] == from && tuple[1] == to) match = true;
  }
  std::cout << "  " << label << (match ? "  MATCHES" : "  no match") << "\n";
}

}  // namespace

int main() {
  auto alphabet = Alphabet::FromLabels({"a", "b", "c"});

  std::cout << "Squared strings (pattern XX):\n";
  auto squared = ParseQuery(
      "Ans(x, y) <- (x, p, z), (z, q, y), eq(p, q)", *alphabet);
  for (const char* text : {"abab", "aab", "aa", "abcabc"}) {
    Word w;
    for (const char* c = text; *c; ++c) {
      w.push_back(*alphabet->Find(std::string_view(c, 1)));
    }
    GraphDb g = WordGraph(alphabet, w);
    Check(g, squared.value(), std::string("\"") + text + "\"", "w0",
          "w" + std::to_string(w.size()));
  }

  std::cout << "\nPattern aXbX (via the Theorem 7.1 encoder):\n";
  auto axbx = PatternQuery("aXbX", *alphabet);
  for (const char* text : {"aabab", "abb", "ab"}) {
    Word w;
    for (const char* c = text; *c; ++c) {
      w.push_back(*alphabet->Find(std::string_view(c, 1)));
    }
    GraphDb g = WordGraph(alphabet, w);
    Check(g, axbx.value(), std::string("\"") + text + "\"", "w0",
          "w" + std::to_string(w.size()));
  }

  std::cout << "\naⁿbⁿcⁿ (not context-free; Section 4's ECRPQ):\n";
  auto anbncn = ParseQuery(
      "Ans(x, y) <- (x, p1, z1), (z1, p2, z2), (z2, p3, y), "
      "a*(p1), b*(p2), c*(p3), el(p1, p2), el(p2, p3)",
      *alphabet);
  for (const char* text : {"abc", "aabbcc", "aabbc", "aaabbbccc"}) {
    Word w;
    for (const char* c = text; *c; ++c) {
      w.push_back(*alphabet->Find(std::string_view(c, 1)));
    }
    GraphDb g = WordGraph(alphabet, w);
    Check(g, anbncn.value(), std::string("\"") + text + "\"", "w0",
          "w" + std::to_string(w.size()));
  }
  return 0;
}
