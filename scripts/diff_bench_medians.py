#!/usr/bin/env python3
"""Diff fresh bench medians against the committed trajectory baselines.

The bench binaries write BENCH_<name>.json into their working directory
and into the repo root; the repo-root copies are committed, forming the
perf trajectory across PRs. CI stashes the committed copies before
running the benches and then calls

    scripts/diff_bench_medians.py <baseline_dir> <fresh_dir> [threshold]

which compares every case's median_ns pairwise and prints a WARN line
for each case slower than `threshold` (default 1.3) times its committed
baseline. Warn-only by default — CI machines differ from the machines
the baselines were recorded on; pass --fail to exit non-zero on any
regression instead (for self-hosted runners with stable hardware).
"""

import json
import pathlib
import sys


def load_cases(path):
    with open(path) as f:
        data = json.load(f)
    return {case["name"]: case["median_ns"] for case in data.get("cases", [])}


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    fail_on_regression = "--fail" in argv
    if len(args) < 2:
        print(__doc__)
        return 2
    baseline_dir, fresh_dir = pathlib.Path(args[0]), pathlib.Path(args[1])
    threshold = float(args[2]) if len(args) > 2 else 1.3

    regressions = 0
    compared = 0
    for baseline_path in sorted(baseline_dir.glob("BENCH_*.json")):
        fresh_path = fresh_dir / baseline_path.name
        if not fresh_path.exists():
            print(f"[bench-diff] {baseline_path.name}: no fresh run, skipped")
            continue
        baseline = load_cases(baseline_path)
        fresh = load_cases(fresh_path)
        for name, base_ns in sorted(baseline.items()):
            if name not in fresh or base_ns <= 0:
                continue
            compared += 1
            ratio = fresh[name] / base_ns
            if ratio > threshold:
                regressions += 1
                print(
                    f"WARN [bench-diff] {name}: {fresh[name] / 1e6:.3f} ms vs "
                    f"baseline {base_ns / 1e6:.3f} ms ({ratio:.2f}x > "
                    f"{threshold:.2f}x)"
                )
    print(
        f"[bench-diff] compared {compared} cases, "
        f"{regressions} above {threshold:.2f}x baseline"
    )
    if regressions and fail_on_regression:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
