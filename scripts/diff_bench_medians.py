#!/usr/bin/env python3
"""Diff fresh bench medians against the committed trajectory baselines.

The bench binaries write BENCH_<name>.json into their working directory
and into the repo root; the repo-root copies are committed, forming the
perf trajectory across PRs. CI stashes the committed copies before
running the benches and then calls

    scripts/diff_bench_medians.py <baseline_dir> <fresh_dir> [threshold]
        [--threshold X] [--fail] [--fail-over Y]

which compares every case's median_ns pairwise and prints a WARN line
for each case slower than the warn threshold times its committed
baseline, then a per-bench summary table (one line per bench binary:
summed baseline/fresh medians and the geometric mean of the per-case
ratios — the single number to scan for "did this binary move"). Cases present only in the fresh run print as NEW and are
counted in the summary but never warn or fail — a PR that adds a bench
tier diffs clean, and the next PR's committed baseline picks them up.
Symmetrically, committed cases the fresh run did not produce print as
REMOVED and are counted in the summary — a renamed case or a bench that
crashed mid-run is visible instead of silently dropped. The warn threshold is, in order of precedence: --threshold,
the positional third argument, the BENCH_DIFF_THRESHOLD environment
variable, then the 1.3 default.

Warn-only by default — CI machines differ from the machines the
baselines were recorded on. Two escalation modes:

    --fail         exit non-zero when any case exceeds the warn
                   threshold (for self-hosted runners with stable
                   hardware)
    --fail-over Y  exit non-zero only for cases above the larger ratio
                   Y — cases between the warn threshold and Y still
                   warn but do not fail. This is the noisy-runner
                   compromise: a 10x blowup fails the build while
                   ordinary machine jitter merely warns.
"""

import json
import math
import os
import pathlib
import sys


def load_cases(path):
    with open(path) as f:
        data = json.load(f)
    return {case["name"]: case["median_ns"] for case in data.get("cases", [])}


def parse_args(argv):
    positional = []
    opts = {"fail": False, "threshold": None, "fail_over": None}
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--fail":
            opts["fail"] = True
        elif arg == "--threshold" and i + 1 < len(argv):
            i += 1
            opts["threshold"] = float(argv[i])
        elif arg == "--fail-over" and i + 1 < len(argv):
            i += 1
            opts["fail_over"] = float(argv[i])
        elif arg.startswith("--"):
            print(f"unknown option {arg}", file=sys.stderr)
            return None, None
        else:
            positional.append(arg)
        i += 1
    return positional, opts


def main(argv):
    positional, opts = parse_args(argv)
    if positional is None or len(positional) < 2:
        print(__doc__)
        return 2
    baseline_dir = pathlib.Path(positional[0])
    fresh_dir = pathlib.Path(positional[1])
    threshold = opts["threshold"]
    if threshold is None and len(positional) > 2:
        threshold = float(positional[2])
    if threshold is None:
        threshold = float(os.environ.get("BENCH_DIFF_THRESHOLD", "1.3"))
    fail_over = opts["fail_over"]

    regressions = 0
    failures = 0
    compared = 0
    new_cases = 0
    removed_cases = 0
    per_bench = []  # (bench, n_cases, old_ms, new_ms, geomean_ratio)
    for baseline_path in sorted(baseline_dir.glob("BENCH_*.json")):
        fresh_path = fresh_dir / baseline_path.name
        if not fresh_path.exists():
            print(f"[bench-diff] {baseline_path.name}: no fresh run, skipped")
            continue
        baseline = load_cases(baseline_path)
        fresh = load_cases(fresh_path)
        # Cases only the fresh run has are NEW, not regressions: a PR that
        # adds a bench tier diffs clean and the next PR's baseline picks
        # the case up. Listed so a silently renamed case is visible.
        for name in sorted(set(fresh) - set(baseline)):
            new_cases += 1
            print(
                f"NEW  [bench-diff] {name}: {fresh[name] / 1e6:.3f} ms "
                "(no committed baseline)"
            )
        # The symmetric direction: committed cases the fresh run did not
        # produce. Never silently dropped — a renamed or deleted case (or
        # a bench binary that crashed mid-run) must be visible — but not
        # a timing regression either, so they count in the summary only.
        for name in sorted(set(baseline) - set(fresh)):
            removed_cases += 1
            print(
                f"REMOVED [bench-diff] {name}: baseline "
                f"{baseline[name] / 1e6:.3f} ms has no fresh counterpart"
            )
        old_ms = new_ms = log_ratio_sum = 0.0
        paired = 0
        for name, base_ns in sorted(baseline.items()):
            if name not in fresh or base_ns <= 0:
                continue
            compared += 1
            ratio = fresh[name] / base_ns
            paired += 1
            old_ms += base_ns / 1e6
            new_ms += fresh[name] / 1e6
            if ratio > 0:
                log_ratio_sum += math.log(ratio)
            if ratio <= threshold:
                continue
            over_fail = fail_over is not None and ratio > fail_over
            if over_fail:
                failures += 1
            regressions += 1
            label = "FAIL" if over_fail else "WARN"
            print(
                f"{label} [bench-diff] {name}: {fresh[name] / 1e6:.3f} ms vs "
                f"baseline {base_ns / 1e6:.3f} ms ({ratio:.2f}x > "
                f"{threshold:.2f}x)"
            )
        if paired:
            bench = baseline_path.name[len("BENCH_") : -len(".json")]
            per_bench.append(
                (bench, paired, old_ms, new_ms,
                 math.exp(log_ratio_sum / paired))
            )
    if per_bench:
        width = max(len(b[0]) for b in per_bench)
        print(f"[bench-diff] {'bench':<{width}} cases "
              f"{'old_ms':>10} {'new_ms':>10}  ratio")
        for bench, paired, old_ms, new_ms, geomean in per_bench:
            print(f"[bench-diff] {bench:<{width}} {paired:>5} "
                  f"{old_ms:>10.3f} {new_ms:>10.3f} {geomean:>5.2f}x")
    summary = (
        f"[bench-diff] compared {compared} cases, "
        f"{regressions} above {threshold:.2f}x baseline"
    )
    if new_cases:
        summary += f", {new_cases} new (no baseline)"
    if removed_cases:
        summary += f", {removed_cases} removed (baseline only)"
    if fail_over is not None:
        summary += f", {failures} above the {fail_over:.2f}x fail-over bar"
    print(summary)
    if failures:
        return 1
    if regressions and opts["fail"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
