// ECRPQ¬ / CRPQ¬ evaluation via the Claim 8.1.3 automaton construction.

#include <gtest/gtest.h>

#include "automata/regex.h"
#include "core/eval_negation.h"
#include "graph/generators.h"
#include "relations/builtin.h"

namespace ecrpq {
namespace {

// Two-node graph: u -a-> v, v -b-> v.
GraphDb SmallGraph() {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g(alphabet);
  NodeId u = g.AddNode("u");
  NodeId v = g.AddNode("v");
  g.AddEdge(u, Symbol{0}, v);
  g.AddEdge(v, Symbol{1}, v);
  return g;
}

std::shared_ptr<const RegularRelation> Lang(const GraphDb& g,
                                            std::string_view regex);

std::shared_ptr<const RegularRelation> Lang(const GraphDb& g,
                                            std::string_view regex) {
  Alphabet copy;  // strict parse against the graph's alphabet
  for (Symbol s = 0; s < g.alphabet().size(); ++s) {
    copy.Intern(g.alphabet().Label(s));
  }
  auto re = ParseRegexStrict(regex, copy);
  EXPECT_TRUE(re.ok());
  return std::make_shared<RegularRelation>(RegularRelation::FromLanguage(
      g.alphabet().size(), re.value()->ToNfa(g.alphabet().size())));
}

TEST(Negation, ExistentialSentences) {
  GraphDb g = SmallGraph();
  // ∃x ∃y ∃π (x,π,y) ∧ a(π): true (edge u->v).
  auto f = Formula::ExistsNode(
      "x", Formula::ExistsNode(
               "y", Formula::ExistsPath(
                        "pi", Formula::And(
                                  Formula::PathAtom("x", "pi", "y"),
                                  Formula::Relation(Lang(g, "a"), {"pi"})))));
  auto result = EvaluateSentence(g, f);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value());
  // ∃π with label aa: false (no aa path).
  auto f2 = Formula::ExistsNode(
      "x", Formula::ExistsNode(
               "y", Formula::ExistsPath(
                        "pi", Formula::And(
                                  Formula::PathAtom("x", "pi", "y"),
                                  Formula::Relation(Lang(g, "aa"), {"pi"})))));
  auto result2 = EvaluateSentence(g, f2);
  ASSERT_TRUE(result2.ok());
  EXPECT_FALSE(result2.value());
}

TEST(Negation, NegatedReachability) {
  GraphDb g = SmallGraph();
  // The paper's example ¬∃π ((x,π,y) ∧ L(π)): pairs with no a-labeled path.
  // Here: ∃x∃y ¬∃π ((x,π,y) ∧ a(π)) — true (e.g. x=y=u: the only a-path
  // from u ends at v).
  auto inner = Formula::ExistsPath(
      "pi", Formula::And(Formula::PathAtom("x", "pi", "y"),
                         Formula::Relation(Lang(g, "a"), {"pi"})));
  auto f = Formula::ExistsNode(
      "x", Formula::ExistsNode("y", Formula::Not(inner)));
  auto result = EvaluateSentence(g, f);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value());
}

TEST(Negation, UniversalPathProperty) {
  GraphDb g = SmallGraph();
  // ∀π ((u,π,v) → a b*(π)) — every path u→v is a followed by b's: true.
  auto body = Formula::Or(
      Formula::Not(Formula::PathAtom("x", "pi", "y")),
      Formula::Relation(Lang(g, "ab*"), {"pi"}));
  auto f = Formula::ExistsNode(
      "x",
      Formula::ExistsNode(
          "y", Formula::And(
                   Formula::And(Formula::ForallPath("pi", body),
                                // pin x=u, y=v via reachability by 'a'
                                Formula::ExistsPath(
                                    "w", Formula::And(
                                             Formula::PathAtom("x", "w", "y"),
                                             Formula::Relation(Lang(g, "a"),
                                                               {"w"})))),
                   Formula::Not(Formula::NodeEq("x", "y")))));
  auto result = EvaluateSentence(g, f);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value());
}

TEST(Negation, PathEquality) {
  GraphDb g = SmallGraph();
  // ∃π1 ∃π2 (u,π1,v) ∧ (u,π2,v) ∧ π1 = π2: trivially true.
  auto f = Formula::ExistsNode(
      "x",
      Formula::ExistsNode(
          "y",
          Formula::And(
              Formula::Not(Formula::NodeEq("x", "y")),
              Formula::ExistsPath(
                  "p1",
                  Formula::ExistsPath(
                      "p2", Formula::And(
                                Formula::And(
                                    Formula::PathAtom("x", "p1", "y"),
                                    Formula::PathAtom("x", "p2", "y")),
                                Formula::PathEq("p1", "p2")))))));
  auto result = EvaluateSentence(g, f);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value());
}

TEST(Negation, DistinctPathsViaNegatedEquality) {
  // ∃ two *different* paths u→u: false on a graph with only one loop-free
  // structure... use the b-loop: v has infinitely many loops: b, bb, ...
  GraphDb g = SmallGraph();
  auto two_loops = [&](const std::string& node_var) {
    return Formula::ExistsPath(
        "p1",
        Formula::ExistsPath(
            "p2",
            Formula::And(
                Formula::And(
                    Formula::PathAtom(node_var, "p1", node_var),
                    Formula::PathAtom(node_var, "p2", node_var)),
                Formula::And(
                    Formula::Not(Formula::PathEq("p1", "p2")),
                    // force both nonempty so it's not ε vs ε
                    Formula::And(
                        Formula::Relation(Lang(g, "b+"), {"p1"}),
                        Formula::Relation(Lang(g, "b+"), {"p2"}))))));
  };
  auto f = Formula::ExistsNode("z", two_loops("z"));
  auto result = EvaluateSentence(g, f);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value());  // b vs bb
}

TEST(Negation, FreeVariableEvaluation) {
  GraphDb g = SmallGraph();
  NodeId u = *g.FindNode("u");
  NodeId v = *g.FindNode("v");
  // φ(x, π) = (x, π, y=v fixed?) — use free x and π: (x,π,v)∧ab*(π).
  auto f = Formula::And(Formula::PathAtom("x", "pi", "y"),
                        Formula::Relation(Lang(g, "ab*"), {"pi"}));
  Path good(u, {{Symbol{0}, v}, {Symbol{1}, v}});
  auto yes = EvaluateFormula(g, f, {{"x", u}, {"y", v}}, {{"pi", good}});
  ASSERT_TRUE(yes.ok()) << yes.status().ToString();
  EXPECT_TRUE(yes.value());
  Path wrong_endpoint(v, {{Symbol{1}, v}});
  auto no = EvaluateFormula(g, f, {{"x", u}, {"y", v}},
                            {{"pi", wrong_endpoint}});
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(no.value());
  // Unbound variables are rejected.
  EXPECT_FALSE(EvaluateFormula(g, f, {{"x", u}}, {}).ok());
  EXPECT_FALSE(EvaluateSentence(g, f).ok());
}

TEST(Negation, BinaryRelationAtom) {
  GraphDb g = SmallGraph();
  auto el = std::make_shared<RegularRelation>(EqualLengthRelation(2));
  // ∃π1 from u, ∃π2 from v, equal length, both length >= 1: a vs b.
  auto f = Formula::ExistsNode(
      "x",
      Formula::ExistsNode(
          "y",
          Formula::And(
              Formula::Not(Formula::NodeEq("x", "y")),
              Formula::ExistsNode(
                  "x2",
                  Formula::ExistsNode(
                      "y2",
                      Formula::ExistsPath(
                          "p1",
                          Formula::ExistsPath(
                              "p2",
                              Formula::And(
                                  Formula::And(
                                      Formula::PathAtom("x", "p1", "x2"),
                                      Formula::PathAtom("y", "p2", "y2")),
                                  Formula::And(
                                      Formula::Relation(el, {"p1", "p2"}),
                                      Formula::Relation(Lang(g, "a"),
                                                        {"p1"}))))))))));
  auto result = EvaluateSentence(g, f);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value());
}

TEST(Negation, StatsTrackBlowup) {
  GraphDb g = SmallGraph();
  NegationStats stats;
  auto inner = Formula::ExistsPath(
      "pi", Formula::And(Formula::PathAtom("x", "pi", "y"),
                         Formula::Relation(Lang(g, "a"), {"pi"})));
  auto f = Formula::ExistsNode(
      "x", Formula::ExistsNode("y", Formula::Not(inner)));
  ASSERT_TRUE(EvaluateSentence(g, f, &stats).ok());
  EXPECT_GT(stats.automata_built, 0u);
  EXPECT_GT(stats.max_states, 0u);
}

TEST(Negation, FormulaToString) {
  auto f = Formula::Not(Formula::And(Formula::PathAtom("x", "p", "y"),
                                     Formula::NodeEq("x", "y")));
  EXPECT_EQ(f->ToString(), "¬(((x,p,y) ∧ x=y))");
  EXPECT_EQ(f->FreeNodeVars(),
            (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(f->FreePathVars(), (std::vector<std::string>{"p"}));
}

}  // namespace
}  // namespace ecrpq
