// Graph databases, paths, generators and IO.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

#include "graph/generators.h"
#include "graph/io.h"
#include "graph/path.h"

namespace ecrpq {
namespace {

TEST(GraphDb, BasicConstruction) {
  GraphDb g;
  NodeId a = g.AddNode("A");
  NodeId b = g.AddNode("B");
  g.AddEdge(a, "x", b);
  g.AddEdge(b, "y", a);
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.FindNode("A"), a);
  EXPECT_EQ(g.FindNode("missing"), std::nullopt);
  EXPECT_TRUE(g.HasEdge(a, *g.alphabet().Find("x"), b));
  EXPECT_FALSE(g.HasEdge(a, *g.alphabet().Find("y"), b));
  EXPECT_EQ(g.AddNode("A"), a);  // named nodes are deduplicated
}

TEST(GraphDb, NfaView) {
  GraphDb g;
  NodeId a = g.AddNode("A");
  NodeId b = g.AddNode("B");
  NodeId c = g.AddNode("C");
  Symbol x = g.alphabet_ptr()->Intern("x");
  g.AddEdge(a, x, b);
  g.AddEdge(b, x, c);
  Nfa nfa = g.ToNfa({a}, {c});
  EXPECT_TRUE(nfa.Accepts({x, x}));
  EXPECT_FALSE(nfa.Accepts({x}));
}

TEST(Path, LabelsAndValidation) {
  GraphDb g;
  NodeId a = g.AddNode("A");
  NodeId b = g.AddNode("B");
  Symbol x = g.alphabet_ptr()->Intern("x");
  Symbol y = g.alphabet_ptr()->Intern("y");
  g.AddEdge(a, x, b);
  g.AddEdge(b, y, a);
  Path p(a, {{x, b}, {y, a}, {x, b}});
  EXPECT_TRUE(p.IsValidIn(g));
  EXPECT_EQ(p.Label(), Word({x, y, x}));
  EXPECT_EQ(p.start(), a);
  EXPECT_EQ(p.end(), b);
  EXPECT_EQ(p.length(), 3);
  EXPECT_EQ(p.NodeAt(0), a);
  EXPECT_EQ(p.NodeAt(1), b);
  Path bad(a, {{y, b}});
  EXPECT_FALSE(bad.IsValidIn(g));
  Path empty(b);
  EXPECT_TRUE(empty.IsValidIn(g));
  EXPECT_EQ(empty.Label(), Word{});
  EXPECT_EQ(empty.end(), b);
}

TEST(Path, Enumeration) {
  GraphDb g;
  NodeId a = g.AddNode("A");
  NodeId b = g.AddNode("B");
  Symbol x = g.alphabet_ptr()->Intern("x");
  g.AddEdge(a, x, b);
  g.AddEdge(b, x, a);
  // Paths from A with length <= 2: A, A-B, A-B-A.
  std::vector<Path> from_a = EnumeratePathsFrom(g, a, 2);
  EXPECT_EQ(from_a.size(), 3u);
  // All paths length <= 1: two empty + two edges.
  EXPECT_EQ(EnumerateAllPaths(g, 1).size(), 4u);
}

TEST(Generators, WordGraphSpellsWord) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  Word word = {0, 1, 0};
  GraphDb g = WordGraph(alphabet, word);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 3);
  Nfa nfa = g.ToNfa({*g.FindNode("w0")}, {*g.FindNode("w3")});
  EXPECT_TRUE(nfa.Accepts(word));
  EXPECT_FALSE(nfa.Accepts({0, 1}));
}

TEST(Generators, UniversalWordGraphHasAllWords) {
  auto alphabet = Alphabet::FromLabels({"a", "b", "c"});
  GraphDb g = UniversalWordGraph(alphabet);
  EXPECT_EQ(g.num_nodes(), 4);
  // From every node, every word over Σ labels some path.
  std::vector<Word> words = {{0}, {1, 2}, {0, 0, 1}, {2, 2, 2, 0}};
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::vector<NodeId> all;
    for (NodeId w = 0; w < g.num_nodes(); ++w) all.push_back(w);
    Nfa nfa = g.ToNfa({v}, all);
    for (const Word& w : words) {
      EXPECT_TRUE(nfa.Accepts(w)) << "node " << v;
    }
  }
}

TEST(Generators, LayeredGraphShape) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  Rng rng(7);
  GraphDb g = LayeredGraph(alphabet, 4, 5, 2, &rng);
  EXPECT_EQ(g.num_nodes(), 20);
  EXPECT_EQ(g.num_edges(), 3 * 5 * 2);
  // All edges go to the next layer.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& [label, to] : g.Out(v)) {
      (void)label;
      EXPECT_EQ(to / 5, v / 5 + 1);
    }
  }
}

TEST(Generators, RdfPropertyGraphHierarchy) {
  Rng rng(11);
  std::vector<std::pair<std::string, std::string>> pairs;
  GraphDb g = RdfPropertyGraph(10, 5, 2, &rng, &pairs);
  EXPECT_EQ(g.num_nodes(), 10);
  EXPECT_EQ(pairs.size(), 4u);  // forest over 5 properties
  EXPECT_EQ(g.alphabet().size(), 5);
}

TEST(GraphIo, TextRoundTrip) {
  GraphDb g;
  NodeId a = g.AddNode("A");
  NodeId b = g.AddNode("B");
  g.AddEdge(a, "x", b);
  g.AddEdge(b, "y", a);
  std::string text = GraphToText(g);
  auto parsed = ParseGraphText(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().num_nodes(), 2);
  EXPECT_EQ(parsed.value().num_edges(), 2);
  EXPECT_TRUE(parsed.value().HasEdge(*parsed.value().FindNode("A"),
                                     *parsed.value().alphabet().Find("x"),
                                     *parsed.value().FindNode("B")));
}

TEST(GraphDb, EmptyNameAddsAnonymousNode) {
  GraphDb g;
  NodeId a = g.AddNode("");
  NodeId b = g.AddNode("");
  EXPECT_NE(a, b);  // empty names must not dedupe into one node
  EXPECT_EQ(g.FindNode(""), std::nullopt);
}

// GraphToText → ParseGraphText must preserve node names, the edge
// multiset, and alphabet symbol ids — including symbols no edge carries
// and symbols whose first edge use disagrees with interning order.
TEST(GraphIo, RoundTripPreservesNamesEdgesAndSymbolIds) {
  auto alphabet = Alphabet::FromLabels({"a", "b", "c"});  // "a" stays unused
  GraphDb g(alphabet);
  NodeId ann = g.AddNode("ann");
  NodeId anon = g.AddNode();
  NodeId bob = g.AddNode("bob");
  g.AddEdge(ann, "c", bob);  // first used label is id 2
  g.AddEdge(bob, "b", anon);
  g.AddEdge(ann, "c", bob);  // duplicate edge: multiset, not set

  auto parsed = ParseGraphText(GraphToText(g));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const GraphDb& h = parsed.value();

  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  ASSERT_EQ(h.alphabet().size(), g.alphabet().size());
  for (Symbol s = 0; s < g.alphabet().size(); ++s) {
    EXPECT_EQ(h.alphabet().Label(s), g.alphabet().Label(s)) << s;
  }
  // Node names survive (anonymous nodes materialize as "n<id>").
  std::multiset<std::string> g_names, h_names;
  for (NodeId v = 0; v < g.num_nodes(); ++v) g_names.insert(g.NodeName(v));
  for (NodeId v = 0; v < h.num_nodes(); ++v) h_names.insert(h.NodeName(v));
  EXPECT_EQ(g_names, h_names);
  // Edge multiset over (from name, symbol id, to name).
  auto edge_multiset = [](const GraphDb& db) {
    std::multiset<std::tuple<std::string, Symbol, std::string>> edges;
    for (NodeId v = 0; v < db.num_nodes(); ++v) {
      for (const auto& [label, to] : db.Out(v)) {
        edges.insert({db.NodeName(v), label, db.NodeName(to)});
      }
    }
    return edges;
  };
  EXPECT_EQ(edge_multiset(g), edge_multiset(h));
}

// A named node that owns an anonymous node's "n<id>" display name must
// not merge with it on re-import.
TEST(GraphIo, RoundTripAnonymousNameCollision) {
  GraphDb g;
  NodeId anon = g.AddNode();           // displays as "n0"
  NodeId named = g.AddNode("n0");      // literally named "n0"
  g.AddEdge(anon, "x", named);
  auto parsed = ParseGraphText(GraphToText(g));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().num_nodes(), 2);
  EXPECT_EQ(parsed.value().num_edges(), 1);
  // The named node keeps its name; the anonymous one was disambiguated.
  ASSERT_TRUE(parsed.value().FindNode("n0").has_value());
  ASSERT_TRUE(parsed.value().FindNode("n0_").has_value());
  NodeId renamed = *parsed.value().FindNode("n0_");
  EXPECT_TRUE(parsed.value().HasEdge(
      renamed, *parsed.value().alphabet().Find("x"),
      *parsed.value().FindNode("n0")));
}

TEST(GraphIo, ParseErrorsAndComments) {
  EXPECT_TRUE(ParseGraphText("# comment only\n").ok());
  EXPECT_FALSE(ParseGraphText("node\n").ok());
  EXPECT_FALSE(ParseGraphText("edge A x\n").ok());
  EXPECT_FALSE(ParseGraphText("frobnicate A\n").ok());
  auto g = ParseGraphText("edge A x B  # auto-creates nodes\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 2);
}

TEST(GraphIo, DotExport) {
  GraphDb g;
  NodeId a = g.AddNode("A");
  g.AddEdge(a, "loop", a);
  std::string dot = GraphToDot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("loop"), std::string::npos);
}

}  // namespace
}  // namespace ecrpq
