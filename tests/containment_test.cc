// Query containment (Section 7): exact single-atom cases, bounded
// canonical-database search, and the Theorem 7.1 pattern encoder.

#include <gtest/gtest.h>

#include "core/containment.h"
#include "core/evaluator.h"
#include "graph/generators.h"
#include "query/parser.h"

namespace ecrpq {
namespace {

AlphabetPtr Ab() { return Alphabet::FromLabels({"a", "b"}); }

Query Q(const Alphabet& alphabet, std::string_view text) {
  auto query = ParseQuery(text, alphabet);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  return std::move(query).value();
}

TEST(SingleAtom, LanguageInclusion) {
  auto alphabet = Ab();
  Query sub = Q(*alphabet, "Ans(x, y) <- (x, p, y), a+(p)");
  Query super = Q(*alphabet, "Ans(x, y) <- (x, p, y), a*(p)");
  auto r1 = SingleAtomContained(sub, super);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_TRUE(r1.value());
  auto r2 = SingleAtomContained(super, sub);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2.value());
  // Intersections of several atoms on the same path variable.
  Query both = Q(*alphabet, "Ans(x, y) <- (x, p, y), a*(p), .*b.*(p)");
  auto r3 = SingleAtomContained(both, super);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3.value());  // a* ∩ Σ*bΣ* = ∅ ⊆ anything
}

TEST(SingleAtom, ShapeRejections) {
  auto alphabet = Ab();
  Query two_atoms =
      Q(*alphabet, "Ans(x, y) <- (x, p, z), (z, q, y), a(p), b(q)");
  Query ok = Q(*alphabet, "Ans(x, y) <- (x, p, y), a(p)");
  EXPECT_FALSE(SingleAtomContained(two_atoms, ok).ok());
  Query boolean = Q(*alphabet, "Ans() <- (x, p, y), a(p)");
  EXPECT_FALSE(SingleAtomContained(boolean, ok).ok());
}

TEST(BoundedSearch, FindsCounterexample) {
  auto alphabet = Ab();
  // Q: pairs connected by an a-path; Q': pairs connected by an aa-path.
  Query q = Q(*alphabet, "Ans(x, y) <- (x, p, y), a(p)");
  Query q_prime = Q(*alphabet, "Ans(x, y) <- (x, p, y), aa(p)");
  auto result = CheckContainmentBounded(q, q_prime);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().verdict, Containment::kNotContained);
  ASSERT_TRUE(result.value().counterexample.has_value());
  EXPECT_GE(result.value().counterexample->num_nodes(), 2);
}

TEST(BoundedSearch, NoCounterexampleWhenContained) {
  auto alphabet = Ab();
  Query q = Q(*alphabet, "Ans(x, y) <- (x, p, y), ab(p)");
  Query q_prime = Q(*alphabet, "Ans(x, y) <- (x, p, y), a.*(p)");
  auto result = CheckContainmentBounded(q, q_prime);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().verdict, Containment::kUnknownUpToBound);
}

TEST(BoundedSearch, EcrpqLeftSide) {
  auto alphabet = Ab();
  // Q: squared a-strings (aa, aaaa, ...); Q': even-length a-paths — Q ⊆ Q'
  // (no counterexample up to the bound). Against odd-length: refuted.
  Query q = Q(*alphabet,
              "Ans(x, y) <- (x, p, z), (z, q, y), eq(p, q), a*(p), a*(q)");
  Query even = Q(*alphabet, "Ans(x, y) <- (x, p, y), (aa)*(p)");
  auto contained = CheckContainmentBounded(q, even);
  ASSERT_TRUE(contained.ok()) << contained.status().ToString();
  EXPECT_EQ(contained.value().verdict, Containment::kUnknownUpToBound);

  Query odd = Q(*alphabet, "Ans(x, y) <- (x, p, y), a(aa)*(p)");
  auto refuted = CheckContainmentBounded(q, odd);
  ASSERT_TRUE(refuted.ok());
  EXPECT_EQ(refuted.value().verdict, Containment::kNotContained);
}

TEST(BoundedSearch, BooleanQueries) {
  auto alphabet = Ab();
  Query q = Q(*alphabet, "Ans() <- (x, p, y), ab(p)");
  Query q_prime = Q(*alphabet, "Ans() <- (x, p, y), b(p)");
  // Canonical graph for Q contains the word ab, which has a b-edge, so Q'
  // holds too: containment up to bound (in fact genuine containment).
  auto result = CheckContainmentBounded(q, q_prime);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().verdict, Containment::kUnknownUpToBound);
  // Reverse direction: canonical b-graph has no ab path.
  auto reverse = CheckContainmentBounded(q_prime, q);
  ASSERT_TRUE(reverse.ok());
  EXPECT_EQ(reverse.value().verdict, Containment::kNotContained);
}

TEST(PatternQuery, MatchesPatternLanguage) {
  auto alphabet = Ab();
  // Pattern aXbX over {a,b}: strings a·w·b·w.
  auto query = PatternQuery("aXbX", *alphabet);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  // On the word graph of a·ab·b·ab = aabbab the pattern matches w = ab.
  GraphDb good = WordGraph(alphabet, {0, 0, 1, 1, 0, 1});
  Evaluator evaluator(&good);
  auto result = evaluator.Evaluate(query.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  NodeId w0 = *good.FindNode("w0");
  NodeId w6 = *good.FindNode("w6");
  bool found = false;
  for (const auto& tuple : result.value().tuples()) {
    if (tuple == std::vector<NodeId>{w0, w6}) found = true;
  }
  EXPECT_TRUE(found);

  // On the word graph of abab (pattern would need a·w·b·w with 4 = 2+2|w|:
  // |w|=1: a·w·b·w = a?b? — ab a b? abab = a,b,a,b: w = b? a·b·b·b no).
  GraphDb bad = WordGraph(alphabet, {0, 1, 0, 1});
  auto r2 = Evaluator(&bad).Evaluate(query.value());
  ASSERT_TRUE(r2.ok());
  NodeId b0 = *bad.FindNode("w0");
  NodeId b4 = *bad.FindNode("w4");
  for (const auto& tuple : r2.value().tuples()) {
    EXPECT_NE(tuple, (std::vector<NodeId>{b0, b4}));
  }
}

TEST(PatternQuery, TerminalOnlyPattern) {
  auto alphabet = Ab();
  auto query = PatternQuery("ab", *alphabet);
  ASSERT_TRUE(query.ok());
  GraphDb g = WordGraph(alphabet, {0, 1});
  auto result = Evaluator(&g).Evaluate(query.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().tuples().size(), 1u);
}

TEST(PatternQuery, Errors) {
  auto alphabet = Ab();
  EXPECT_FALSE(PatternQuery("", *alphabet).ok());
  EXPECT_FALSE(PatternQuery("axc", *alphabet).ok());  // 'c' not interned
}

TEST(PatternQuery, ContainmentViaPatterns) {
  // L(aX) ⊆ L(X'): every instance of aX is an instance of a variable-only
  // pattern (X' matches everything... patterns substitute with Σ*, so X'
  // covers all strings). Bounded search agrees.
  auto alphabet = Ab();
  auto q_ax = PatternQuery("aX", *alphabet);
  auto q_x = PatternQuery("Y", *alphabet);
  ASSERT_TRUE(q_ax.ok());
  ASSERT_TRUE(q_x.ok());
  ContainmentOptions options;
  options.max_word_length = 4;
  options.max_candidates = 300;
  auto result =
      CheckContainmentBounded(q_ax.value(), q_x.value(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().verdict, Containment::kUnknownUpToBound);
  // And L(X) ⊄ L(aX): the empty string (or any b-string) refutes.
  auto reverse =
      CheckContainmentBounded(q_x.value(), q_ax.value(), options);
  ASSERT_TRUE(reverse.ok());
  EXPECT_EQ(reverse.value().verdict, Containment::kNotContained);
}

}  // namespace
}  // namespace ecrpq
