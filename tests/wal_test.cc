// Unit tests for the WAL building blocks: CRC32C, record framing and
// the recovery scan, payload/checkpoint codecs, segment rotation,
// corruption/torn-tail detection, fault injection, and dir locking.
// End-to-end crash/recovery behaviour lives in durability_test.cc.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/crc32c.h"
#include "util/io.h"
#include "wal/wal.h"
#include "wal/wal_format.h"

namespace ecrpq {
namespace {

// Creates (and on destruction removes) a scratch directory.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/ecrpq-wal-test-XXXXXX";
    char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path_ = made;
  }
  ~TempDir() {
    std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---- crc32c -----------------------------------------------------------------

TEST(Crc32c, StandardVectors) {
  // The canonical CRC32C check value.
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xe3069283u);
  // 32 zero bytes (iSCSI test vector).
  unsigned char zeros[32] = {0};
  EXPECT_EQ(crc32c::Value(zeros, sizeof(zeros)), 0x8a9136aau);
  unsigned char ones[32];
  for (auto& b : ones) b = 0xff;
  EXPECT_EQ(crc32c::Value(ones, sizeof(ones)), 0x62a8ab43u);
  EXPECT_EQ(crc32c::Value("", 0), 0u);
}

TEST(Crc32c, ExtendMatchesWholeBuffer) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = crc32c::Value(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t partial = crc32c::Extend(
        crc32c::Value(data.data(), split), data.data() + split,
        data.size() - split);
    EXPECT_EQ(partial, whole) << "split at " << split;
  }
}

TEST(Crc32c, MaskRoundTripsAndChangesValue) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu, 0xe3069283u}) {
    EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
    EXPECT_NE(crc32c::Mask(crc), crc);
  }
}

// ---- payload codecs ---------------------------------------------------------

TEST(WalFormat, MutationPayloadRoundTrip) {
  GraphMutation m;
  m.add_nodes = {"ann", "", "bob with space"};
  m.add_edges = {{"ann", "advisor", "bob with space"}, {"x", "l", "y"}};
  m.remove_edges = {{"bob with space", "advisor", "ann"}};
  GraphMutation out;
  ASSERT_TRUE(DecodeMutationPayload(EncodeMutationPayload(m), &out).ok());
  EXPECT_EQ(out.add_nodes, m.add_nodes);
  ASSERT_EQ(out.add_edges.size(), m.add_edges.size());
  for (size_t i = 0; i < m.add_edges.size(); ++i) {
    EXPECT_EQ(out.add_edges[i].from, m.add_edges[i].from);
    EXPECT_EQ(out.add_edges[i].label, m.add_edges[i].label);
    EXPECT_EQ(out.add_edges[i].to, m.add_edges[i].to);
  }
  ASSERT_EQ(out.remove_edges.size(), 1u);
  EXPECT_EQ(out.remove_edges[0].from, "bob with space");
}

TEST(WalFormat, EdgeDeltaPayloadRoundTrip) {
  std::vector<Edge> add = {{0, 1, 2}, {3, 0, 1}};
  std::vector<Edge> remove = {{2, 1, 0}};
  std::vector<Edge> add_out, remove_out;
  ASSERT_TRUE(DecodeEdgeDeltaPayload(EncodeEdgeDeltaPayload(add, remove),
                                     &add_out, &remove_out)
                  .ok());
  ASSERT_EQ(add_out.size(), 2u);
  EXPECT_EQ(add_out[1].from, 3);
  ASSERT_EQ(remove_out.size(), 1u);
  EXPECT_EQ(remove_out[0].label, Symbol{1});
}

TEST(WalFormat, DecodeRejectsGarbage) {
  GraphMutation m;
  EXPECT_FALSE(DecodeMutationPayload("not a payload", &m).ok());
  std::vector<Edge> a, r;
  EXPECT_FALSE(DecodeEdgeDeltaPayload("xyz", &a, &r).ok());
}

// ---- checkpoint codec -------------------------------------------------------

TEST(WalFormat, CheckpointRoundTripPreservesAnonymity) {
  GraphDb g;
  NodeId ann = g.AddNode("ann");
  NodeId anon = g.AddNode();  // anonymous — must NOT come back named
  NodeId bob = g.AddNode("bob");
  g.AddEdge(ann, "advisor", anon);
  g.AddEdge(anon, "likes a lot", bob);  // label with spaces survives
  g.AddEdge(bob, "advisor", ann);

  auto decoded = DecodeCheckpoint(EncodeCheckpoint(g));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const GraphDb& d = decoded.value();
  EXPECT_EQ(d.num_nodes(), g.num_nodes());
  EXPECT_EQ(d.num_edges(), g.num_edges());
  EXPECT_EQ(d.FindNode("ann"), std::optional<NodeId>(ann));
  EXPECT_EQ(d.FindNode("bob"), std::optional<NodeId>(bob));
  // The anonymous node's synthetic display name must not resolve: a
  // replayed mutation mentioning "n1" must create a NEW node, exactly
  // as it did pre-crash.
  EXPECT_EQ(d.NodeName(anon), g.NodeName(anon));
  EXPECT_FALSE(d.FindNode(d.NodeName(anon)).has_value());
  // Byte-identical re-encode: the codec is canonical.
  EXPECT_EQ(EncodeCheckpoint(d), EncodeCheckpoint(g));
}

TEST(WalFormat, CheckpointRejectsCorruptText) {
  GraphDb g;
  g.AddEdge(g.AddNode("a"), "l", g.AddNode("b"));
  std::string text = EncodeCheckpoint(g);
  EXPECT_FALSE(DecodeCheckpoint("bogus header\n").ok());
  EXPECT_FALSE(DecodeCheckpoint(text + "trailing junk\n").ok());
  EXPECT_FALSE(DecodeCheckpoint(text.substr(0, text.size() / 2)).ok());
}

// ---- segment naming ---------------------------------------------------------

TEST(WalNames, RoundTripAndRejectForeign) {
  uint64_t lsn = 0;
  EXPECT_TRUE(ParseWalSegmentName(WalSegmentName(1), &lsn));
  EXPECT_EQ(lsn, 1u);
  EXPECT_TRUE(ParseWalSegmentName(WalSegmentName(123456789), &lsn));
  EXPECT_EQ(lsn, 123456789u);
  EXPECT_TRUE(ParseCheckpointName(CheckpointName(42), &lsn));
  EXPECT_EQ(lsn, 42u);
  EXPECT_FALSE(ParseWalSegmentName("LOCK", &lsn));
  EXPECT_FALSE(ParseWalSegmentName("checkpoint-00000000000000000001.ckpt",
                                   &lsn));
  EXPECT_FALSE(ParseCheckpointName("wal-00000000000000000001.log", &lsn));
  EXPECT_FALSE(ParseWalSegmentName("wal-abc.log", &lsn));
}

// ---- writer + scan ----------------------------------------------------------

std::string Pad(char c, size_t n) { return std::string(n, c); }

WalRecordFn NopRecordFn() {
  return [](uint64_t, WalRecordType, std::string_view) {
    return Status::OK();
  };
}

TEST(WalWriter, AppendScanRoundTrip) {
  TempDir dir;
  FileSystem* fs = PosixFileSystem();
  auto writer = WalWriter::Open(fs, dir.path(), 64 << 20, 1, "", 0);
  ASSERT_TRUE(writer.ok());
  uint64_t lsn = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer.value()
                    ->Append(WalRecordType::kNoop,
                             "payload-" + std::to_string(i), &lsn)
                    .ok());
    EXPECT_EQ(lsn, static_cast<uint64_t>(i + 1));
  }
  ASSERT_TRUE(writer.value()->Sync().ok());

  std::vector<std::pair<uint64_t, std::string>> seen;
  auto stats = ScanWal(fs, dir.path(), 0,
                       [&](uint64_t l, WalRecordType, std::string_view p) {
                         seen.emplace_back(l, std::string(p));
                         return Status::OK();
                       });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().last_lsn, 10u);
  EXPECT_EQ(stats.value().delivered, 10u);
  EXPECT_FALSE(stats.value().truncated);
  ASSERT_EQ(seen.size(), 10u);
  EXPECT_EQ(seen[3].second, "payload-3");

  // min_lsn skips the prefix.
  auto tail = ScanWal(fs, dir.path(), 7,
                      [&](uint64_t l, WalRecordType, std::string_view) {
                        EXPECT_GT(l, 7u);
                        return Status::OK();
                      });
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail.value().delivered, 3u);
}

TEST(WalWriter, RotatesSegmentsAndResumesTail) {
  TempDir dir;
  FileSystem* fs = PosixFileSystem();
  uint64_t last = 0;
  {
    // Tiny segment budget: every ~100-byte record rotates.
    auto writer = WalWriter::Open(fs, dir.path(), 128, 1, "", 0);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          writer.value()->Append(WalRecordType::kNoop, Pad('x', 100), &last)
              .ok());
    }
    ASSERT_TRUE(writer.value()->Sync().ok());
  }
  auto segments = ListWalSegments(fs, dir.path());
  ASSERT_TRUE(segments.ok());
  EXPECT_GT(segments.value().size(), 1u);
  for (const auto& seg : segments.value()) {
    EXPECT_EQ(seg.name, WalSegmentName(seg.first_lsn));
  }

  // Reopen at the scanned position and keep appending; the log stays
  // one contiguous LSN sequence.
  auto scan = ScanWal(fs, dir.path(), 0, NopRecordFn());
  ASSERT_TRUE(scan.ok());
  ASSERT_FALSE(scan.value().truncated);
  auto relisted = ListWalSegments(fs, dir.path());
  ASSERT_TRUE(relisted.ok());
  const auto& tail_seg = relisted.value().back();
  auto tail_size = fs->FileSize(dir.path() + "/" + tail_seg.name);
  ASSERT_TRUE(tail_size.ok());
  auto writer2 = WalWriter::Open(fs, dir.path(), 128, scan.value().last_lsn + 1,
                                 tail_seg.name, tail_size.value());
  ASSERT_TRUE(writer2.ok());
  ASSERT_TRUE(
      writer2.value()->Append(WalRecordType::kNoop, "after", &last).ok());
  EXPECT_EQ(last, 7u);
  ASSERT_TRUE(writer2.value()->Sync().ok());
  auto rescan = ScanWal(fs, dir.path(), 0, NopRecordFn());
  ASSERT_TRUE(rescan.ok());
  EXPECT_EQ(rescan.value().last_lsn, 7u);
  EXPECT_FALSE(rescan.value().truncated);
}

// Flips one byte in the middle of the file at `path`.
void CorruptByteAt(const std::string& path, long offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(offset);
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x40);
  f.seekp(offset);
  f.write(&b, 1);
}

TEST(WalScan, StopsAtCorruptRecordAndReportsTruncation) {
  TempDir dir;
  FileSystem* fs = PosixFileSystem();
  auto writer = WalWriter::Open(fs, dir.path(), 64 << 20, 1, "", 0);
  ASSERT_TRUE(writer.ok());
  uint64_t lsn = 0;
  std::vector<uint64_t> offsets;  // record start offsets
  uint64_t offset = 0;
  for (int i = 0; i < 5; ++i) {
    offsets.push_back(offset);
    std::string payload = "record-" + std::to_string(i);
    ASSERT_TRUE(
        writer.value()->Append(WalRecordType::kNoop, payload, &lsn).ok());
    offset += kWalFrameHeader + kWalRecordHeader + payload.size();
  }
  ASSERT_TRUE(writer.value()->Sync().ok());
  std::string segment = writer.value()->segment_name();
  writer.value().reset();

  // Corrupt a payload byte of record 4 (lsn 4): records 1-3 survive,
  // the scan truncates at record 4's start.
  CorruptByteAt(dir.path() + "/" + segment,
                static_cast<long>(offsets[3] + kWalFrameHeader +
                                  kWalRecordHeader + 2));
  auto stats = ScanWal(fs, dir.path(), 0, NopRecordFn());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().last_lsn, 3u);
  EXPECT_TRUE(stats.value().truncated);
  EXPECT_EQ(stats.value().truncate_reason, "bad-crc");
  EXPECT_EQ(stats.value().truncate_segment, segment);
  EXPECT_EQ(stats.value().truncate_offset, offsets[3]);
}

TEST(WalScan, TornTailDetected) {
  TempDir dir;
  FileSystem* fs = PosixFileSystem();
  auto writer = WalWriter::Open(fs, dir.path(), 64 << 20, 1, "", 0);
  ASSERT_TRUE(writer.ok());
  uint64_t lsn = 0;
  ASSERT_TRUE(writer.value()->Append(WalRecordType::kNoop, "aaaa", &lsn).ok());
  ASSERT_TRUE(writer.value()->Append(WalRecordType::kNoop, "bbbb", &lsn).ok());
  ASSERT_TRUE(writer.value()->Sync().ok());
  std::string path = dir.path() + "/" + writer.value()->segment_name();
  writer.value().reset();

  // Chop 2 bytes off the second record: torn write.
  auto size = fs->FileSize(path);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(fs->Truncate(path, size.value() - 2).ok());
  auto stats = ScanWal(fs, dir.path(), 0, NopRecordFn());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().last_lsn, 1u);
  EXPECT_TRUE(stats.value().truncated);
  EXPECT_EQ(stats.value().truncate_reason, "torn-record");
}

TEST(WalWriter, InjectedAppendFaultThenRepairTail) {
  TempDir dir;
  auto plan = std::make_shared<FaultPlan>();
  FaultInjectingFileSystem fs(PosixFileSystem(), plan);
  auto writer = WalWriter::Open(&fs, dir.path(), 64 << 20, 1, "", 0);
  ASSERT_TRUE(writer.ok());
  uint64_t lsn = 0;
  ASSERT_TRUE(writer.value()->Append(WalRecordType::kNoop, "good", &lsn).ok());
  {
    std::lock_guard<std::mutex> lock(plan->mutex);
    plan->fail_append_after = 1;
    plan->torn_bytes = 5;  // half the frame header lands on disk
  }
  EXPECT_FALSE(
      writer.value()->Append(WalRecordType::kNoop, "torn", &lsn).ok());
  EXPECT_TRUE(writer.value()->needs_repair());
  // Sticky: still failing.
  EXPECT_FALSE(
      writer.value()->Append(WalRecordType::kNoop, "still", &lsn).ok());
  plan->Reset();
  ASSERT_TRUE(writer.value()->RepairTail().ok());
  ASSERT_TRUE(writer.value()->Append(WalRecordType::kNoop, "after", &lsn).ok());
  EXPECT_EQ(lsn, 2u);
  ASSERT_TRUE(writer.value()->Sync().ok());

  auto stats = ScanWal(PosixFileSystem(), dir.path(), 0, NopRecordFn());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().last_lsn, 2u);
  EXPECT_FALSE(stats.value().truncated);
}

TEST(WalIo, DirLockIsExclusive) {
  TempDir dir;
  FileSystem* fs = PosixFileSystem();
  auto first = fs->LockFile(dir.path() + "/LOCK");
  ASSERT_TRUE(first.ok());
  auto second = fs->LockFile(dir.path() + "/LOCK");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  fs->ReleaseLock(first.value());
  auto third = fs->LockFile(dir.path() + "/LOCK");
  ASSERT_TRUE(third.ok());
  fs->ReleaseLock(third.value());
}

}  // namespace
}  // namespace ecrpq
