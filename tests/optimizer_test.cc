// Query rewriting: soundness (same answers on every graph tested) and the
// individual rewrite rules.

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "graph/generators.h"
#include "query/analysis.h"
#include "query/builder.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "relations/builtin.h"

namespace ecrpq {
namespace {

AlphabetPtr Ab() { return Alphabet::FromLabels({"a", "b"}); }

TEST(Optimizer, FusesUnaryAtoms) {
  auto alphabet = Ab();
  auto query = ParseQuery(
      "Ans(x, y) <- (x, p, y), a*(p), .*b(p), (a|b)*(p)", *alphabet);
  ASSERT_TRUE(query.ok());
  auto optimized = OptimizeQuery(query.value());
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
  // Three unary atoms become one ((a|b)* is universal and dropped; the
  // other two fuse; a* ∩ Σ*b = ∅ → proven empty).
  EXPECT_EQ(optimized.value().query.relation_atoms().size(), 1u);
  EXPECT_GE(optimized.value().report.fused_language_atoms, 1);
  EXPECT_GE(optimized.value().report.dropped_universal, 1);
  EXPECT_TRUE(optimized.value().report.proven_empty);
}

TEST(Optimizer, DropsUniversalRelations) {
  auto alphabet = Ab();
  auto universal = std::make_shared<RegularRelation>(UniversalRelation(2, 2));
  auto query = QueryBuilder()
                   .Atom("x", "p", "y")
                   .Atom("x", "q", "y")
                   .Relation(universal, {"p", "q"}, "all")
                   .Head({"x"})
                   .Build();
  ASSERT_TRUE(query.ok());
  auto optimized = OptimizeQuery(query.value());
  ASSERT_TRUE(optimized.ok());
  EXPECT_TRUE(optimized.value().query.relation_atoms().empty());
  EXPECT_EQ(optimized.value().report.dropped_universal, 1);
  // Dropping the binary atom also splits the synchronization component.
  QueryAnalysis analysis = Analyze(optimized.value().query);
  EXPECT_EQ(analysis.components.size(), 2u);
}

TEST(Optimizer, KeepsConstrainingRelations) {
  auto alphabet = Ab();
  auto query = ParseQuery(
      "Ans() <- (x, p, y), (x, q, y), el(p, q), a+(p)", *alphabet);
  ASSERT_TRUE(query.ok());
  auto optimized = OptimizeQuery(query.value());
  ASSERT_TRUE(optimized.ok());
  EXPECT_EQ(optimized.value().query.relation_atoms().size(), 2u);
  EXPECT_FALSE(optimized.value().report.proven_empty);
}

TEST(Optimizer, ReportDescribe) {
  auto alphabet = Ab();
  auto query = ParseQuery("Ans() <- (x, p, y), a*(p), a+(p)", *alphabet);
  ASSERT_TRUE(query.ok());
  auto optimized = OptimizeQuery(query.value());
  ASSERT_TRUE(optimized.ok());
  EXPECT_NE(optimized.value().report.Describe().find("fused=1"),
            std::string::npos);
}

// Property: optimization preserves answers on random graphs.
class OptimizerSoundness : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerSoundness, SameAnswers) {
  Rng rng(GetParam() + 5);
  auto alphabet = Ab();
  GraphDb g = RandomGraph(alphabet, 5, 12, &rng);
  const char* queries[] = {
      "Ans(x, y) <- (x, p, y), a*(p), (a|b)*(p)",
      "Ans(x, y) <- (x, p, y), a*b(p), .*b(p)",
      "Ans() <- (x, p, y), (x, q, y), el(p, q), .*(p)",
      "Ans(x) <- (x, p, y), (y, q, z), ab*(p), b+(q), .*(q)",
  };
  for (const char* text : queries) {
    SCOPED_TRACE(text);
    auto query = ParseQuery(text, g.alphabet());
    ASSERT_TRUE(query.ok());
    auto optimized = OptimizeQuery(query.value());
    ASSERT_TRUE(optimized.ok());
    EvalOptions options;
    options.build_path_answers = false;
    options.max_configs = 500000;
    Evaluator evaluator(&g, options);
    auto before = evaluator.Evaluate(query.value());
    auto after = evaluator.Evaluate(optimized.value().query);
    ASSERT_TRUE(before.ok()) << before.status().ToString();
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_EQ(before.value().tuples(), after.value().tuples());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerSoundness, ::testing::Range(0, 8));

}  // namespace
}  // namespace ecrpq
