// Cross-engine property tests: every engine agrees with brute-force
// reference semantics on random graphs, and engines agree with each other.
//
// Brute force enumerates assignments with path length <= L; to compare
// against the exact engines we restrict to graphs where relevant answers
// are short (DAG word-like graphs) or compare only brute-force-found
// answers (soundness direction) plus engine answers realizable within L
// (completeness direction via answer enumeration).

#include <gtest/gtest.h>

#include <set>

#include "core/eval_bruteforce.h"
#include "core/eval_product.h"
#include "core/evaluator.h"
#include "graph/generators.h"
#include "relations/builtin.h"
#include "query/parser.h"

namespace ecrpq {
namespace {

// DAG graphs keep all simple answers short, so brute force with a generous
// bound is exact for queries whose relations cannot be satisfied by paths
// longer than the longest simple path... To stay exact we use layered DAGs
// whose path lengths are bounded by the layer count.
GraphDb SmallDag(uint64_t seed) {
  Rng rng(seed);
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  return LayeredGraph(alphabet, 4, 2, 2, &rng);
}

const char* kQueries[] = {
    // CRPQs.
    "Ans(x, y) <- (x, p, y), a*(p)",
    "Ans(x, z) <- (x, p, y), (y, q, z), a+(p), b*(q)",
    "Ans() <- (x, p, y), ab(p)",
    // ECRPQs with binary relations.
    "Ans(x, y) <- (x, p, z), (z, q, y), eq(p, q)",
    "Ans(x, y) <- (x, p, y), (x, q, y), el(p, q)",
    "Ans(x, y) <- (x, p, y), (x, q, y), prefix(p, q)",
    "Ans() <- (x, p, y), (x, q, z), edit1(p, q)",
    // Repetition (Prop 6.8).
    "Ans(x, w) <- (x, p, y), (z, p, w), a*(p)",
    // Multi-component.
    "Ans(x, u) <- (x, p, y), (u, q, v), a(p), b(q)",
};

class EngineVsBruteForce
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EngineVsBruteForce, ProductEngineMatches) {
  auto [seed, query_index] = GetParam();
  GraphDb g = SmallDag(seed);
  auto query = ParseQuery(kQueries[query_index], g.alphabet());
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  EvalOptions options;
  options.build_path_answers = false;
  options.bruteforce_max_len = 4;  // layered graph: max path length is 3
  auto brute = EvaluateBruteForce(g, query.value(), options);
  ASSERT_TRUE(brute.ok()) << brute.status().ToString();
  auto product = EvaluateProduct(g, query.value(), options);
  ASSERT_TRUE(product.ok()) << product.status().ToString();
  EXPECT_EQ(brute.value().tuples(), product.value().tuples())
      << kQueries[query_index];
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineVsBruteForce,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Range(0, 9)));

// On cyclic graphs brute force is only sound up to its bound; engine
// answers must be a superset, and every brute-force answer must be found.
class CyclicSoundness : public ::testing::TestWithParam<int> {};

TEST_P(CyclicSoundness, BruteForceAnswersAreFound) {
  Rng rng(GetParam());
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = RandomGraph(alphabet, 4, 8, &rng);
  for (const char* text : kQueries) {
    SCOPED_TRACE(text);
    auto query = ParseQuery(text, g.alphabet());
    ASSERT_TRUE(query.ok());
    EvalOptions options;
    options.build_path_answers = false;
    options.bruteforce_max_len = 3;
    options.max_configs = 500000;
    auto brute = EvaluateBruteForce(g, query.value(), options);
    ASSERT_TRUE(brute.ok());
    auto product = EvaluateProduct(g, query.value(), options);
    ASSERT_TRUE(product.ok()) << product.status().ToString();
    std::set<std::vector<NodeId>> engine_tuples(
        product.value().tuples().begin(), product.value().tuples().end());
    for (const auto& tuple : brute.value().tuples()) {
      EXPECT_TRUE(engine_tuples.count(tuple));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CyclicSoundness, ::testing::Range(0, 8));

// Engine-claimed path answers are real: enumerate and validate against the
// graph, the relations, and brute force membership.
class PathAnswerSoundness : public ::testing::TestWithParam<int> {};

TEST_P(PathAnswerSoundness, EnumeratedTuplesAreValid) {
  Rng rng(GetParam() + 77);
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = RandomGraph(alphabet, 4, 7, &rng);
  auto query = ParseQuery(
      "Ans(x, y, p, q) <- (x, p, z), (z, q, y), prefix(p, q)",
      g.alphabet());
  ASSERT_TRUE(query.ok());
  EvalOptions options;
  options.max_configs = 500000;
  Evaluator evaluator(&g, options);
  auto result = evaluator.Evaluate(query.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  RegularRelation prefix = PrefixRelation(2);
  for (size_t i = 0; i < result.value().tuples().size() && i < 4; ++i) {
    const auto& tuple = result.value().tuples()[i];
    for (const PathTuple& paths :
         result.value().path_answers(i).Enumerate(8, 5)) {
      ASSERT_EQ(paths.size(), 2u);
      EXPECT_TRUE(paths[0].IsValidIn(g));
      EXPECT_TRUE(paths[1].IsValidIn(g));
      EXPECT_EQ(paths[0].start(), tuple[0]);
      EXPECT_EQ(paths[1].end(), tuple[1]);
      EXPECT_EQ(paths[0].end(), paths[1].start());
      EXPECT_TRUE(prefix.Contains({paths[0].Label(), paths[1].Label()}));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathAnswerSoundness, ::testing::Range(0, 6));

}  // namespace
}  // namespace ecrpq
