// Exact rational arithmetic, simplex, and branch & bound ILP.

#include <gtest/gtest.h>

#include "solver/ilp.h"
#include "solver/rational.h"
#include "solver/simplex.h"

namespace ecrpq {
namespace {

TEST(Rational, Arithmetic) {
  Rational half(1, 2);
  Rational third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(Rational(2, 4), half);
  EXPECT_EQ(Rational(-1, -2), half);
  EXPECT_EQ(Rational(1, -2), -half);
  EXPECT_TRUE(third < half);
  EXPECT_EQ((-half).Floor(), -1);
  EXPECT_EQ((-half).Ceil(), 0);
  EXPECT_EQ(Rational(7, 2).Floor(), 3);
  EXPECT_EQ(Rational(7, 2).Ceil(), 4);
  EXPECT_TRUE(Rational(4, 2).IsInteger());
}

TEST(Simplex, SimpleMaximization) {
  // max x + y s.t. x + 2y <= 4, 3x + y <= 6  => optimum at (8/5, 6/5).
  std::vector<std::vector<double>> a = {{1, 2}, {3, 1}};
  std::vector<double> b = {4, 6};
  std::vector<double> c = {1, 1};
  LpResult result = SolveLpMax(a, b, c);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 14.0 / 5, 1e-9);
  EXPECT_NEAR(result.values[0], 8.0 / 5, 1e-9);
  EXPECT_NEAR(result.values[1], 6.0 / 5, 1e-9);
}

TEST(Simplex, Infeasible) {
  std::vector<std::vector<double>> a = {{1}};
  std::vector<double> b = {-1};
  EXPECT_FALSE(LpFeasible(a, b));
  LpResult result = SolveLpMax(a, b, {1.0});
  EXPECT_EQ(result.status, LpStatus::kInfeasible);
}

TEST(Simplex, Unbounded) {
  std::vector<std::vector<double>> a = {{1, -1}};
  std::vector<double> b = {0};
  LpResult result = SolveLpMax(a, b, {1.0, 0.0});
  EXPECT_EQ(result.status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNeedsPhase1) {
  // x >= 2 encoded as -x <= -2; feasible, max -x is -2.
  std::vector<std::vector<double>> a = {{-1}};
  std::vector<double> b = {-2};
  LpResult result = SolveLpMax(a, b, {-1.0});
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, -2.0, 1e-9);
  EXPECT_NEAR(result.values[0], 2.0, 1e-9);
}

TEST(Ilp, FeasibilityWitness) {
  IlpProblem problem;
  int x = problem.AddVariable(0, 10);
  int y = problem.AddVariable(0, 10);
  problem.AddConstraint({{{x, 3}, {y, 5}}, Cmp::kEq, 14});
  auto solution = SolveIlp(problem);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  ASSERT_TRUE(solution.value().feasible);
  EXPECT_EQ(3 * solution.value().values[x] + 5 * solution.value().values[y],
            14);
}

TEST(Ilp, InfeasibleParity) {
  // 2x = 7 has no integer solution though the LP relaxation is feasible.
  IlpProblem problem;
  int x = problem.AddVariable(0, 100);
  problem.AddConstraint({{{x, 2}}, Cmp::kEq, 7});
  auto solution = SolveIlp(problem);
  ASSERT_TRUE(solution.ok());
  EXPECT_FALSE(solution.value().feasible);
}

TEST(Ilp, ChineseRemainderStyle) {
  // x ≡ 2 mod 3, x ≡ 3 mod 5 => minimal x is 8.
  IlpProblem problem;
  int x = problem.AddVariable(0, 1000);
  int k3 = problem.AddVariable(0, 1000);
  int k5 = problem.AddVariable(0, 1000);
  problem.AddConstraint({{{x, 1}, {k3, -3}}, Cmp::kEq, 2});
  problem.AddConstraint({{{x, 1}, {k5, -5}}, Cmp::kEq, 3});
  auto solution = MinimizeIlp(problem, {1, 0, 0});
  ASSERT_TRUE(solution.ok());
  ASSERT_TRUE(solution.value().feasible);
  EXPECT_EQ(solution.value().values[x], 8);
}

TEST(Ilp, MinimizeObjective) {
  IlpProblem problem;
  int x = problem.AddVariable(0, 100);
  int y = problem.AddVariable(0, 100);
  problem.AddConstraint({{{x, 1}, {y, 1}}, Cmp::kGe, 7});
  problem.AddConstraint({{{x, 1}, {y, -1}}, Cmp::kLe, 1});
  problem.AddConstraint({{{y, 1}, {x, -1}}, Cmp::kLe, 1});
  auto solution = MinimizeIlp(problem, {1, 1});
  ASSERT_TRUE(solution.ok());
  ASSERT_TRUE(solution.value().feasible);
  EXPECT_EQ(solution.value().values[x] + solution.value().values[y], 7);
}

TEST(Ilp, PropagationPrunesWithoutLp) {
  IlpProblem problem;
  int x = problem.AddVariable(0, 4);
  int y = problem.AddVariable(0, 4);
  problem.AddConstraint({{{x, 1}, {y, 1}}, Cmp::kGe, 10});
  auto solution = SolveIlp(problem);
  ASSERT_TRUE(solution.ok());
  EXPECT_FALSE(solution.value().feasible);
}

TEST(Ilp, NodeBudgetExhaustion) {
  IlpProblem problem;
  std::vector<int> vars;
  for (int i = 0; i < 12; ++i) vars.push_back(problem.AddVariable(0, 1));
  LinearConstraint c;
  for (int i = 0; i < 12; ++i) c.terms.emplace_back(vars[i], 2 * i + 3);
  c.cmp = Cmp::kEq;
  c.rhs = 1;  // unsatisfiable (all coefficients >= 3)
  problem.AddConstraint(std::move(c));
  IlpOptions options;
  options.max_nodes = 1;
  auto solution = SolveIlp(problem, options);
  if (!solution.ok()) {
    EXPECT_EQ(solution.status().code(), StatusCode::kResourceExhausted);
  } else {
    EXPECT_FALSE(solution.value().feasible);
  }
}

TEST(Ilp, NegativeCoefficientTightening) {
  // x - 2y >= 0, y >= 3  =>  min x is 6.
  IlpProblem problem;
  int x = problem.AddVariable(0, 100);
  int y = problem.AddVariable(0, 100);
  problem.AddConstraint({{{x, 1}, {y, -2}}, Cmp::kGe, 0});
  problem.AddGe(y, 3);
  auto solution = MinimizeIlp(problem, {1, 0});
  ASSERT_TRUE(solution.ok());
  ASSERT_TRUE(solution.value().feasible);
  EXPECT_EQ(solution.value().values[x], 6);
}

}  // namespace
}  // namespace ecrpq
