// ExecuteOptions deadlines: a query past its deadline must come back as
// Status::Cancelled — never as a silent empty-OK result — whether the
// deadline expired before evaluation started or the DeadlineMonitor
// tripped the token mid-search, and whether or not a MutateGraph writer
// is racing the execution. A deadline-cancelled execution must also not
// pin its graph snapshot beyond the cursor's lifetime (the serving
// layer's cache-invalidation protocol depends on dead snapshots dying).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "api/api.h"
#include "util/cancellation.h"
#include "util/deadline.h"

namespace ecrpq {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

GraphDb Chain(int n) {
  GraphDb g;
  NodeId prev = g.AddNode("v0");
  for (int i = 1; i < n; ++i) {
    NodeId next = g.AddNode("v" + std::to_string(i));
    g.AddEdge(prev, "a", next);
    prev = next;
  }
  return g;
}

// A counting query whose threshold exceeds every path length in an
// n-chain: zero answers, but the counting engine must sweep an enormous
// length-annotated search space to prove it — minutes of work on a
// 2000-chain, yet cancellable at poll granularity (milliseconds).
constexpr char kBurnQuery[] = "Ans() <- (x, p, y), len(p) >= 2100";

TEST(Deadline, ExpiredBeforeRunIsCancelledNotEmptyOk) {
  Database db(Chain(50));
  auto prepared = db.Prepare("Ans(x, y) <- (x, p, y), 'a'+(p)");
  ASSERT_TRUE(prepared.ok());

  ExecuteOptions exec;
  exec.deadline = steady_clock::now() - milliseconds(5);
  auto cursor = prepared.value().Execute({}, exec);
  ASSERT_TRUE(cursor.ok());
  EXPECT_FALSE(cursor.value().Next());
  EXPECT_EQ(cursor.value().status().code(), StatusCode::kCancelled)
      << "an expired deadline must surface as Cancelled, not empty-OK: "
      << cursor.value().status().ToString();
}

TEST(Deadline, TimeoutTripsMidSearch) {
  Database db(Chain(2000));
  auto prepared = db.Prepare(kBurnQuery);
  ASSERT_TRUE(prepared.ok());

  ExecuteOptions exec;
  exec.set_timeout(milliseconds(100));
  auto start = steady_clock::now();
  auto cursor = prepared.value().Execute({}, exec);
  ASSERT_TRUE(cursor.ok());
  EXPECT_FALSE(cursor.value().Next());
  auto elapsed = steady_clock::now() - start;
  EXPECT_EQ(cursor.value().status().code(), StatusCode::kCancelled);
  // The uncancelled search runs for minutes; well under 30s here proves
  // the monitor tripped the token mid-search (generous bound for TSan).
  EXPECT_LT(elapsed, std::chrono::seconds(30));
}

TEST(Deadline, GenerousDeadlineDoesNotInterfere) {
  Database db(Chain(50));
  auto prepared = db.Prepare("Ans(x, y) <- (x, p, y), 'a'+(p)");
  ASSERT_TRUE(prepared.ok());

  ExecuteOptions exec;
  exec.set_timeout(std::chrono::seconds(60));
  auto cursor = prepared.value().Execute({}, exec);
  ASSERT_TRUE(cursor.ok());
  size_t rows = 0;
  while (cursor.value().Next()) ++rows;
  EXPECT_TRUE(cursor.value().status().ok());
  EXPECT_EQ(rows, 50u * 49u / 2u);

  // The guard disarmed on completion: a second run through the same
  // token-less path must not be hit by the first run's stale deadline.
  auto again = prepared.value().Execute({}, ExecuteOptions{});
  ASSERT_TRUE(again.ok());
  rows = 0;
  while (again.value().Next()) ++rows;
  EXPECT_TRUE(again.value().status().ok());
  EXPECT_EQ(rows, 50u * 49u / 2u);
}

TEST(Deadline, SharesCallerSuppliedToken) {
  Database db(Chain(2000));
  auto prepared = db.Prepare(kBurnQuery);
  ASSERT_TRUE(prepared.ok());

  // A caller token and a far deadline coexist: the explicit Cancel()
  // must win long before the deadline would fire.
  ExecuteOptions exec;
  exec.cancellation = std::make_shared<CancellationToken>();
  exec.set_timeout(std::chrono::seconds(120));
  std::thread killer([token = exec.cancellation] {
    std::this_thread::sleep_for(milliseconds(100));
    token->Cancel();
  });
  auto cursor = prepared.value().Execute({}, exec);
  ASSERT_TRUE(cursor.ok());
  EXPECT_FALSE(cursor.value().Next());
  EXPECT_EQ(cursor.value().status().code(), StatusCode::kCancelled);
  killer.join();
}

TEST(Deadline, CancelledExecuteRacingMutateGraphPinsNoStaleSnapshot) {
  Database db(Chain(2000));
  auto prepared = db.Prepare(kBurnQuery);
  ASSERT_TRUE(prepared.ok());

  std::weak_ptr<const GraphIndex> before = db.graph_index();

  // A writer appends edges every few milliseconds while the deadline
  // query burns; the snapshot protocol keeps both sides consistent.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load()) {
      db.MutateGraph([&](GraphDb& g) {
        NodeId fresh = g.AddNode("w" + std::to_string(i++));
        g.AddEdge(fresh, "a", 0);
      });
      std::this_thread::sleep_for(milliseconds(5));
    }
  });

  {
    ExecuteOptions exec;
    exec.set_timeout(milliseconds(150));
    auto cursor = prepared.value().Execute({}, exec);
    ASSERT_TRUE(cursor.ok());
    EXPECT_FALSE(cursor.value().Next());
    EXPECT_EQ(cursor.value().status().code(), StatusCode::kCancelled)
        << "racing a writer must not turn a deadline into empty-OK";
  }  // cursor destroyed: its snapshot pin is released

  stop.store(true);
  writer.join();

  // Force a fresh index for the mutated graph; with the cursor gone,
  // nothing may keep the pre-mutation snapshot alive.
  GraphIndexPtr current = db.graph_index();
  EXPECT_NE(before.lock(), current);
  EXPECT_TRUE(before.expired())
      << "deadline-cancelled execution left the stale snapshot pinned";

  // And the database still answers correctly after the race.
  auto check = db.Prepare("Ans(x) <- (x, p, \"v0\"), 'a'(p)");
  ASSERT_TRUE(check.ok());
  auto cursor = check.value().Execute();
  ASSERT_TRUE(cursor.ok());
  size_t rows = 0;
  while (cursor.value().Next()) ++rows;
  EXPECT_TRUE(cursor.value().status().ok());
  EXPECT_GE(rows, 1u);  // at least the writer's w* nodes point at v0
}

TEST(DeadlineMonitor, DisarmPreventsLateTrip) {
  auto token = std::make_shared<CancellationToken>();
  {
    DeadlineGuard guard(token, steady_clock::now() + milliseconds(50));
  }  // disarmed before the deadline
  std::this_thread::sleep_for(milliseconds(120));
  EXPECT_FALSE(token->cancelled());
}

// Regression: disarming AFTER the deadline fired (the normal order for
// every deadline-expired execution: the monitor pops the entry, then the
// guard destructs) must not leave a tombstone behind — in a long-running
// server that set grows one entry per tripped deadline, forever.
TEST(DeadlineMonitor, FiredDeadlineLeavesNoTombstone) {
  DeadlineMonitor& monitor = DeadlineMonitor::Shared();
  const size_t before = monitor.pending_tombstones();
  for (int i = 0; i < 16; ++i) {
    auto token = std::make_shared<CancellationToken>();
    DeadlineGuard guard(token, steady_clock::now() + milliseconds(5));
    for (int j = 0; j < 500 && !token->cancelled(); ++j) {
      std::this_thread::sleep_for(milliseconds(2));
    }
    ASSERT_TRUE(token->cancelled());
  }  // each guard disarmed after its deadline fired
  EXPECT_LE(monitor.pending_tombstones(), before)
      << "post-fire Disarm must be a true no-op, not a leaked tombstone";
}

TEST(DeadlineMonitor, TripsExpiredTokens) {
  auto token = std::make_shared<CancellationToken>();
  DeadlineGuard guard(token, steady_clock::now() + milliseconds(30));
  for (int i = 0; i < 200 && !token->cancelled(); ++i) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  EXPECT_TRUE(token->cancelled());
}

}  // namespace
}  // namespace ecrpq
