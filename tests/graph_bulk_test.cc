// Bulk graph construction equivalence: the size-then-fill paths
// (GraphDb::FromEdges / AddEdges, the edge-list format of graph/io.h) and
// the parallel CSR index build must be indistinguishable from their
// incremental counterparts — same adjacency, same per-node order, same
// index contents — at generator scale.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/index.h"
#include "graph/io.h"
#include "util/random.h"

namespace ecrpq {
namespace {

std::vector<Edge> RandomEdges(int num_nodes, int num_edges, int num_labels,
                              uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (int i = 0; i < num_edges; ++i) {
    edges.push_back({static_cast<NodeId>(rng.Below(num_nodes)),
                     static_cast<Symbol>(rng.Below(num_labels)),
                     static_cast<NodeId>(rng.Below(num_nodes))});
  }
  return edges;
}

// `exact_in` relaxes the in-adjacency check to multiset equality: the
// edge-list text orders edges by source node, so a reparse rebuilds each
// in-list in file order, not the original insertion order (the out-lists
// and the edge multiset are preserved exactly either way).
void ExpectSameAdjacency(const GraphDb& a, const GraphDb& b,
                         bool exact_in = true) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    ASSERT_EQ(a.Out(v), b.Out(v)) << "out-adjacency of node " << v;
    if (exact_in) {
      ASSERT_EQ(a.In(v), b.In(v)) << "in-adjacency of node " << v;
    } else {
      auto lhs = a.In(v);
      auto rhs = b.In(v);
      std::sort(lhs.begin(), lhs.end());
      std::sort(rhs.begin(), rhs.end());
      ASSERT_EQ(lhs, rhs) << "in-adjacency of node " << v;
    }
  }
}

void ExpectIndexesEqual(const GraphIndex& a, const GraphIndex& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_labels(), b.num_labels());
  auto same_span = [](auto lhs, auto rhs) {
    return std::equal(lhs.begin(), lhs.end(), rhs.begin(), rhs.end());
  };
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    ASSERT_EQ(a.out_degree(v), b.out_degree(v)) << v;
    ASSERT_EQ(a.in_degree(v), b.in_degree(v)) << v;
    ASSERT_TRUE(same_span(a.OutLabels(v), b.OutLabels(v))) << v;
    ASSERT_TRUE(same_span(a.OutTargets(v), b.OutTargets(v))) << v;
    ASSERT_TRUE(same_span(a.InLabels(v), b.InLabels(v))) << v;
    ASSERT_TRUE(same_span(a.InSources(v), b.InSources(v))) << v;
    ASSERT_EQ(a.OutLabelMask(v), b.OutLabelMask(v)) << v;
    ASSERT_EQ(a.InLabelMask(v), b.InLabelMask(v)) << v;
  }
  for (Symbol label = 0; label < a.num_labels(); ++label) {
    EXPECT_EQ(a.LabelCount(label), b.LabelCount(label)) << label;
    EXPECT_EQ(a.LabelSourceCount(label), b.LabelSourceCount(label)) << label;
    EXPECT_EQ(a.LabelTargetCount(label), b.LabelTargetCount(label)) << label;
  }
  EXPECT_EQ(a.NodesByDegree(), b.NodesByDegree());
  EXPECT_EQ(a.NodesByInDegree(), b.NodesByInDegree());
}

// FromEdges / AddEdges carry a documented contract: equivalent to calling
// AddEdge per element in order — same node ids, same per-node adjacency
// order — just without the per-edge reallocation churn.
TEST(GraphBulk, BulkConstructionMatchesIncremental) {
  auto alphabet = Alphabet::FromLabels({"a", "b", "c", "d"});
  constexpr int kNodes = 2000;
  constexpr int kEdges = 12000;
  std::vector<Edge> edges = RandomEdges(kNodes, kEdges, 4, /*seed=*/11);

  GraphDb bulk = GraphDb::FromEdges(alphabet, kNodes, edges);

  GraphDb incremental(alphabet);
  for (int i = 0; i < kNodes; ++i) incremental.AddNode();
  for (const Edge& e : edges) incremental.AddEdge(e.from, e.label, e.to);

  GraphDb batched(alphabet);
  batched.AddNodes(kNodes);
  batched.AddEdges(edges);

  ExpectSameAdjacency(bulk, incremental);
  ExpectSameAdjacency(batched, incremental);
}

// GraphToEdgeListText -> ParseEdgeListText round-trips node count, symbol
// ids, and exact per-node edge order on a generator-scale graph.
TEST(GraphBulk, EdgeListRoundTrip) {
  auto alphabet = Alphabet::FromLabels({"a", "b", "c", "d"});
  Rng rng(7);
  GraphDb g = PowerLawGraph(alphabet, 5000, 30000, &rng);
  std::string text = GraphToEdgeListText(g);
  auto parsed = ParseEdgeListText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().alphabet().size(), g.alphabet().size());
  ExpectSameAdjacency(g, parsed.value(), /*exact_in=*/false);
}

// The header's declared node count preserves trailing isolated nodes,
// which no edge line would otherwise mention.
TEST(GraphBulk, EdgeListPreservesIsolatedNodes) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g = GraphDb::FromEdges(alphabet, 10, {{0, 0, 1}});
  auto parsed = ParseEdgeListText(GraphToEdgeListText(g));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().num_nodes(), 10);
  EXPECT_EQ(parsed.value().num_edges(), 1);
}

// The parallel CSR fill writes disjoint per-node slices, so the built
// index must match the serial build exactly — checked on a graph big
// enough (600k edges) to cross the auto-parallel threshold, so the
// argument-less Build really exercises the multi-lane fill.
TEST(GraphBulk, IndexBuildParallelMatchesSerialOnLargeGraph) {
  auto alphabet = Alphabet::FromLabels({"a", "b", "c", "d"});
  Rng rng(42);
  GraphDb g = PowerLawGraph(alphabet, 100000, 600000, &rng);
  auto serial = GraphIndex::Build(g, /*num_threads=*/1);
  auto parallel = GraphIndex::Build(g, /*num_threads=*/8);
  auto automatic = GraphIndex::Build(g);
  ExpectIndexesEqual(*serial, *parallel);
  ExpectIndexesEqual(*serial, *automatic);
}

// A bulk-built graph indexes identically to its per-edge incremental
// twin: the CSR sort normalizes whatever per-node order the construction
// path produced.
TEST(GraphBulk, IndexOfBulkGraphMatchesIncrementalGraph) {
  auto alphabet = Alphabet::FromLabels({"a", "b", "c"});
  constexpr int kNodes = 3000;
  constexpr int kEdges = 18000;
  std::vector<Edge> edges = RandomEdges(kNodes, kEdges, 3, /*seed=*/23);

  GraphDb bulk = GraphDb::FromEdges(alphabet, kNodes, edges);
  GraphDb incremental(alphabet);
  for (int i = 0; i < kNodes; ++i) incremental.AddNode();
  for (const Edge& e : edges) incremental.AddEdge(e.from, e.label, e.to);

  ExpectIndexesEqual(*GraphIndex::Build(bulk, /*num_threads=*/1),
                     *GraphIndex::Build(incremental, /*num_threads=*/1));
}

}  // namespace
}  // namespace ecrpq
