// Linear constraints on occurrence counts and path lengths (Theorem 8.5).

#include <gtest/gtest.h>

#include "core/eval_bruteforce.h"
#include "core/eval_counting.h"
#include "core/evaluator.h"
#include "graph/generators.h"
#include "query/parser.h"

namespace ecrpq {
namespace {

TEST(Counting, AirlineRatioExample) {
  // The Section 8.2 example: a route where Singapore Airlines (a) covers at
  // least 80% of the journey: occ(a) - 4*occ(b) >= 0.
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g(alphabet);
  NodeId london = g.AddNode("London");
  NodeId mid = g.AddNode("mid");
  NodeId sydney = g.AddNode("Sydney");
  // Route 1: 4 a-legs then 1 b-leg (80% a: satisfies).
  NodeId at = london;
  for (int i = 0; i < 3; ++i) {
    NodeId next = g.AddNode();
    g.AddEdge(at, Symbol{0}, next);
    at = next;
  }
  g.AddEdge(at, Symbol{0}, mid);
  g.AddEdge(mid, Symbol{1}, sydney);

  auto query = ParseQuery(
      R"(Ans() <- ("London", p, "Sydney"), occ(p, a) - 4*occ(p, b) >= 0)",
      g.alphabet());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto result = EvaluateCounting(g, query.value(), EvalOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().AsBool());

  // Stricter ratio (>= 90%): occ(a) - 9*occ(b) >= 0 fails on this route.
  auto strict = ParseQuery(
      R"(Ans() <- ("London", p, "Sydney"), occ(p, a) - 9*occ(p, b) >= 0)",
      g.alphabet());
  ASSERT_TRUE(strict.ok());
  auto strict_result = EvaluateCounting(g, strict.value(), EvalOptions{});
  ASSERT_TRUE(strict_result.ok()) << strict_result.status().ToString();
  EXPECT_FALSE(strict_result.value().AsBool());
}

TEST(Counting, LengthConstraints) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g = CycleGraph(alphabet, 3, "a");
  // A loop of length >= 5 exists (6 = two rounds); length = 4 does not.
  auto ge = ParseQuery(R"(Ans() <- ("c0", p, "c0"), len(p) >= 5)",
                       g.alphabet());
  ASSERT_TRUE(ge.ok());
  auto r1 = EvaluateCounting(g, ge.value(), EvalOptions{});
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_TRUE(r1.value().AsBool());

  auto eq4 = ParseQuery(R"(Ans() <- ("c0", p, "c0"), len(p) = 4)",
                        g.alphabet());
  ASSERT_TRUE(eq4.ok());
  auto r2 = EvaluateCounting(g, eq4.value(), EvalOptions{});
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2.value().AsBool());
}

TEST(Counting, CrossPathConstraint) {
  // |p| = 2|q|, p in the 3-cycle, q in the 2-cycle of a disjoint graph.
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g(alphabet);
  for (int i = 0; i < 3; ++i) g.AddNode("x" + std::to_string(i));
  for (int i = 0; i < 2; ++i) g.AddNode("y" + std::to_string(i));
  for (int i = 0; i < 3; ++i) {
    g.AddEdge(*g.FindNode("x" + std::to_string(i)), Symbol{0},
              *g.FindNode("x" + std::to_string((i + 1) % 3)));
  }
  for (int i = 0; i < 2; ++i) {
    g.AddEdge(*g.FindNode("y" + std::to_string(i)), Symbol{0},
              *g.FindNode("y" + std::to_string((i + 1) % 2)));
  }
  // Loop lengths: p in 3N, q in 2N; |p| = 2|q| and |p| >= 1: p = 6, q = 3?
  // q must be a y-loop: 2N. 2|q| ∈ 4N; need 3N ∩ 4N ∋ |p|: |p| = 12,
  // |q| = 6 works.
  auto query = ParseQuery(
      R"(Ans() <- ("x0", p, "x0"), ("y0", q, "y0"), )"
      R"(len(p) - 2*len(q) = 0, len(p) >= 1)",
      g.alphabet());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto result = EvaluateCounting(g, query.value(), EvalOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().AsBool());

  // |p| = 2|q|, |q| odd: |p| = 2·odd ≡ 2 mod 4, but p ∈ 3N ∩ (2 mod 4)
  // = {6, 18, ...}: 6 = 2*3, q = 3 odd — satisfiable! Tighten: |q| = 1:
  // impossible (q loops have even length).
  auto no = ParseQuery(
      R"(Ans() <- ("y0", q, "y0"), len(q) = 1)", g.alphabet());
  ASSERT_TRUE(no.ok());
  auto none = EvaluateCounting(g, no.value(), EvalOptions{});
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none.value().AsBool());
}

TEST(Counting, WithRegularRelationsToo) {
  // ECRPQ + counting: equal paths with at least two a's.
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g(alphabet);
  NodeId u = g.AddNode("u");
  g.AddEdge(u, Symbol{0}, u);
  g.AddEdge(u, Symbol{1}, u);
  auto query = ParseQuery(
      R"(Ans() <- ("u", p, "u"), ("u", q, "u"), eq(p, q), )"
      R"(occ(p, a) >= 2, len(q) <= 3)",
      g.alphabet());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto result = EvaluateCounting(g, query.value(), EvalOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().AsBool());
}

TEST(Counting, HeadVariablesEnumerated) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = WordGraph(alphabet, {0, 0, 1});  // w0 -a- w1 -a- w2 -b- w3
  // Nodes reachable from somewhere with exactly two a's and no b.
  auto query = ParseQuery(
      "Ans(y) <- (x, p, y), occ(p, a) = 2, occ(p, b) = 0", g.alphabet());
  ASSERT_TRUE(query.ok());
  auto result = EvaluateCounting(g, query.value(), EvalOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().tuples().size(), 1u);
  EXPECT_EQ(result.value().tuples()[0][0], *g.FindNode("w2"));
}

// Property: counting engine agrees with brute force on small DAGs.
class CountingVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(CountingVsBruteForce, Agrees) {
  Rng rng(GetParam() + 31);
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = LayeredGraph(alphabet, 4, 2, 2, &rng);
  for (const char* text :
       {"Ans(x) <- (x, p, y), occ(p, a) - occ(p, b) >= 1",
        "Ans(x, y) <- (x, p, y), len(p) = 2",
        "Ans() <- (x, p, y), (y, q, z), len(p) - len(q) = 1"}) {
    SCOPED_TRACE(text);
    auto query = ParseQuery(text, g.alphabet());
    ASSERT_TRUE(query.ok());
    EvalOptions options;
    options.bruteforce_max_len = 4;
    auto brute = EvaluateBruteForce(g, query.value(), options);
    ASSERT_TRUE(brute.ok());
    auto counting = EvaluateCounting(g, query.value(), options);
    ASSERT_TRUE(counting.ok()) << counting.status().ToString();
    EXPECT_EQ(brute.value().tuples(), counting.value().tuples());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountingVsBruteForce, ::testing::Range(0, 4));

TEST(Counting, AutoDispatch) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g = CycleGraph(alphabet, 2, "a");
  auto query = ParseQuery(R"(Ans() <- ("c0", p, "c1"), len(p) >= 3)",
                          g.alphabet());
  ASSERT_TRUE(query.ok());
  Evaluator evaluator(&g);
  auto result = evaluator.Evaluate(query.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats().engine, "counting");
  EXPECT_TRUE(result.value().AsBool());  // length 3 = c0->c1 + full loop
}

}  // namespace
}  // namespace ecrpq
