// The durable write path end to end: OpenDurable recovery, the
// write-ahead commit protocol, a deterministic crash-point matrix over
// every injected I/O fault, ENOSPC-style degraded mode with probing
// recovery, MutateGraph's synchronous checkpoint, a randomized
// crash+recover-vs-twin property test, and degraded-mode serving over
// a real socket.
//
// "Crash" here = destroy the Database mid-fault and reopen the data
// dir. With faults sticky until Reset, the destructor's best-effort
// flush fails too, so nothing beyond the faulted operation reaches the
// disk — the on-disk state is exactly what a kill at that point leaves.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/api.h"
#include "server/client.h"
#include "server/server.h"
#include "util/io.h"
#include "wal/durable.h"
#include "wal/wal.h"
#include "wal/wal_format.h"

namespace ecrpq {
namespace {

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/ecrpq-durability-test-XXXXXX";
    char* made = mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path_ = made;
  }
  ~TempDir() {
    std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] int rc = std::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

GraphDb SeedGraph() {
  GraphDb g;
  NodeId ann = g.AddNode("ann");
  NodeId bob = g.AddNode("bob");
  NodeId eva = g.AddNode("eva");
  g.AddEdge(ann, "advisor", eva);
  g.AddEdge(bob, "advisor", eva);
  return g;
}

// Synchronous compaction + no background threads: every test run is
// deterministic, and compaction-time checkpoints happen inline.
DatabaseOptions DeterministicOptions() {
  DatabaseOptions options;
  options.background_compaction = false;
  return options;
}

GraphMutation BatchN(int i) {
  GraphMutation m;
  std::string a = "u" + std::to_string(i);
  std::string b = "u" + std::to_string(i + 1);
  m.add_edges.push_back({a, "step", b});
  m.add_edges.push_back({b, "back", a});
  if (i % 3 == 1) {
    // Exercise removals and anonymous node creation too.
    m.remove_edges.push_back({"u" + std::to_string(i - 1), "back",
                              "u" + std::to_string(i - 2)});
    m.add_nodes.push_back("");
  }
  return m;
}

std::string Fingerprint(const Database& db) {
  return EncodeCheckpoint(db.graph());
}

// ---- basic lifecycle --------------------------------------------------------

TEST(Durability, FreshOpenSeedsAndReopenRecovers) {
  TempDir dir;
  DurabilityOptions durability;
  std::string fingerprint;
  {
    WalRecoveryInfo info;
    auto opened = Database::OpenDurable(dir.path(), durability,
                                        DeterministicOptions(), SeedGraph(),
                                        &info);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    Database& db = *opened.value();
    EXPECT_TRUE(db.durable());
    EXPECT_FALSE(db.write_degraded());
    EXPECT_FALSE(info.checkpoint_loaded);  // fresh dir: seed, not recovery
    EXPECT_EQ(db.graph().num_edges(), 2);

    for (int i = 0; i < 5; ++i) {
      auto committed = db.CommitDelta(BatchN(i));
      ASSERT_TRUE(committed.ok()) << committed.status().ToString();
      EXPECT_EQ(committed.value().lsn, static_cast<uint64_t>(i + 1));
    }
    EXPECT_EQ(db.applied_lsn(), 5u);
    fingerprint = Fingerprint(db);

    // Queries run on the durable Database like any other.
    auto rows = db.Execute("Ans(x) <- (x, p, y), 'advisor'(p)");
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows.value().tuples().size(), 2u);
  }
  {
    WalRecoveryInfo info;
    auto reopened = Database::OpenDurable(dir.path(), durability,
                                         DeterministicOptions(), GraphDb(),
                                         &info);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_TRUE(info.checkpoint_loaded);
    EXPECT_EQ(info.last_lsn, 5u);
    // The seed is ignored on a non-fresh dir; recovered state wins.
    EXPECT_EQ(Fingerprint(*reopened.value()), fingerprint);
    EXPECT_EQ(reopened.value()->applied_lsn(), 5u);
  }
}

TEST(Durability, SecondOpenOnLockedDirFails) {
  TempDir dir;
  DurabilityOptions durability;
  auto first = Database::OpenDurable(dir.path(), durability,
                                     DeterministicOptions(), SeedGraph());
  ASSERT_TRUE(first.ok());
  auto second = Database::OpenDurable(dir.path(), durability,
                                      DeterministicOptions(), SeedGraph());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Durability, IdLevelCommitValidatesAndRecovers) {
  TempDir dir;
  DurabilityOptions durability;
  std::string fingerprint;
  {
    auto opened = Database::OpenDurable(dir.path(), durability,
                                        DeterministicOptions(), SeedGraph());
    ASSERT_TRUE(opened.ok());
    Database& db = *opened.value();
    // Out-of-range ids are rejected BEFORE reaching the log.
    auto bad = db.CommitDelta({{999, 0, 0}}, {});
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
    auto good = db.CommitDelta({{0, 0, 1}, {1, 0, 2}}, {});
    ASSERT_TRUE(good.ok()) << good.status().ToString();
    EXPECT_EQ(good.value().lsn, 1u);
    fingerprint = Fingerprint(db);
  }
  auto reopened = Database::OpenDurable(dir.path(), durability,
                                        DeterministicOptions(), GraphDb());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(Fingerprint(*reopened.value()), fingerprint);
}

// ---- crash-point matrix -----------------------------------------------------

// Runs the standard workload (seed + kBatches CommitDeltas) against a
// fault-injected data dir, returns how many batches acked. The Database
// is destroyed with the fault still armed — the crash.
constexpr int kBatches = 6;

int RunWorkload(const std::string& dir, FileSystem* fs) {
  DurabilityOptions durability;
  durability.fs = fs;
  auto opened = Database::OpenDurable(dir, durability, DeterministicOptions(),
                                      SeedGraph());
  if (!opened.ok()) return -1;  // crashed during open itself
  Database& db = *opened.value();
  int acked = 0;
  for (int i = 0; i < kBatches; ++i) {
    auto committed = db.CommitDelta(BatchN(i));
    if (committed.ok()) {
      EXPECT_EQ(acked, i) << "acks must form a prefix";
      ++acked;
    }
  }
  return acked;
}

// Fingerprints of the graph after seed + first r batches, r = 0..k.
std::vector<std::string> TwinPrefixes() {
  std::vector<std::string> prefixes;
  Database twin(SeedGraph(), DeterministicOptions());
  prefixes.push_back(Fingerprint(twin));
  for (int i = 0; i < kBatches; ++i) {
    twin.ApplyDelta(BatchN(i));
    prefixes.push_back(Fingerprint(twin));
  }
  return prefixes;
}

struct FaultCase {
  const char* name;
  int FaultPlan::* counter;
  int torn_bytes;
};

TEST(DurabilityCrashMatrix, EveryFaultPointRecoversToAnAckedPrefix) {
  const std::vector<std::string> prefixes = TwinPrefixes();

  // Count the clean run's operations per type.
  int total_ops;
  {
    TempDir clean;
    auto plan = std::make_shared<FaultPlan>();
    FaultInjectingFileSystem fs(PosixFileSystem(), plan);
    int acked = RunWorkload(clean.path(), &fs);
    ASSERT_EQ(acked, kBatches);
    std::lock_guard<std::mutex> lock(plan->mutex);
    total_ops = plan->ops_seen;
  }
  ASSERT_GT(total_ops, 10);

  const FaultCase cases[] = {
      {"append", &FaultPlan::fail_append_after, 0},
      {"append-torn-1byte", &FaultPlan::fail_append_after, 1},
      {"append-short-write", &FaultPlan::fail_append_after, -1},
      {"sync", &FaultPlan::fail_sync_after, 0},
      {"rename", &FaultPlan::fail_rename_after, 0},
      {"remove", &FaultPlan::fail_remove_after, 0},
  };

  for (const FaultCase& fc : cases) {
    // Fault the Nth operation of the matching type for every N until a
    // run sails through unfaulted (the type's total count is below N).
    for (int n = 1; n <= total_ops; ++n) {
      TempDir dir;
      auto plan = std::make_shared<FaultPlan>();
      {
        std::lock_guard<std::mutex> lock(plan->mutex);
        (*plan).*fc.counter = n;
        plan->torn_bytes = fc.torn_bytes;
      }
      FaultInjectingFileSystem fs(PosixFileSystem(), plan);
      int acked = RunWorkload(dir.path(), &fs);
      bool fired;
      {
        std::lock_guard<std::mutex> lock(plan->mutex);
        fired = plan->tripped;
      }
      SCOPED_TRACE(std::string(fc.name) + " op " + std::to_string(n) +
                   ", acked " + std::to_string(acked));
      if (!fired) {
        EXPECT_EQ(acked, kBatches);
        break;  // fewer than n ops of this type exist
      }

      // The crash happened; recovery (clean disk) must succeed and land
      // on a twin prefix that covers every acked batch.
      plan->Reset();
      DurabilityOptions durability;
      auto reopened = Database::OpenDurable(dir.path(), durability,
                                            DeterministicOptions(),
                                            SeedGraph());
      ASSERT_TRUE(reopened.ok())
          << "recovery failed: " << reopened.status().ToString();
      std::string recovered = Fingerprint(*reopened.value());
      int matched = -1;
      for (size_t r = 0; r < prefixes.size(); ++r) {
        if (prefixes[r] == recovered) matched = static_cast<int>(r);
      }
      ASSERT_NE(matched, -1) << "recovered state is not any batch prefix";
      // acked == -1 means the crash hit OpenDurable itself (nothing
      // acked). Otherwise every acked batch must have survived.
      EXPECT_GE(matched, acked < 0 ? 0 : acked)
          << "acked batch lost in recovery";

      // And the recovered Database keeps working durably.
      auto committed = reopened.value()->CommitDelta(BatchN(100));
      EXPECT_TRUE(committed.ok()) << committed.status().ToString();
    }
  }
}

// ---- degraded mode ----------------------------------------------------------

TEST(DurabilityDegraded, AppendFaultRejectsWritesKeepsReadsThenProbes) {
  TempDir dir;
  auto plan = std::make_shared<FaultPlan>();
  FaultInjectingFileSystem fs(PosixFileSystem(), plan);
  DurabilityOptions durability;
  durability.fs = &fs;
  durability.probe_interval_ms = 0;  // probe on every rejected write
  auto opened = Database::OpenDurable(dir.path(), durability,
                                      DeterministicOptions(), SeedGraph());
  ASSERT_TRUE(opened.ok());
  Database& db = *opened.value();
  ASSERT_TRUE(db.CommitDelta(BatchN(0)).ok());

  // ENOSPC from here on.
  {
    std::lock_guard<std::mutex> lock(plan->mutex);
    plan->fail_append_after = 1;
  }
  auto rejected = db.CommitDelta(BatchN(1));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.status().message().find("DEGRADED"), std::string::npos);
  EXPECT_TRUE(db.write_degraded());
  // The rejected batch must not have touched the graph.
  EXPECT_EQ(db.applied_lsn(), 1u);

  // Reads keep serving while degraded.
  auto rows = db.Execute("Ans(x) <- (x, p, y), 'step'(p)");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().tuples().size(), 1u);

  // Legacy ApplyDelta reports the rejection instead of lying.
  auto summary = db.ApplyDelta(BatchN(1));
  EXPECT_TRUE(summary.rejected);

  // Disk heals; the next probe (or probing write) recovers.
  plan->Reset();
  EXPECT_TRUE(db.ProbeDurability());
  EXPECT_FALSE(db.write_degraded());
  auto committed = db.CommitDelta(BatchN(1));
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();

  // The whole story survives a restart.
  std::string fingerprint = Fingerprint(db);
  opened.value().reset();
  auto reopened = Database::OpenDurable(dir.path(), DurabilityOptions{},
                                        DeterministicOptions(), GraphDb());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(Fingerprint(*reopened.value()), fingerprint);
}

TEST(DurabilityDegraded, MutateGraphCheckpointFailureBlocksUntilProbe) {
  TempDir dir;
  auto plan = std::make_shared<FaultPlan>();
  FaultInjectingFileSystem fs(PosixFileSystem(), plan);
  DurabilityOptions durability;
  durability.fs = &fs;
  durability.probe_interval_ms = 0;
  auto opened = Database::OpenDurable(dir.path(), durability,
                                      DeterministicOptions(), SeedGraph());
  ASSERT_TRUE(opened.ok());
  Database& db = *opened.value();

  // MutateGraph's required checkpoint fails at the publish rename: the
  // in-memory graph is now ahead of anything recoverable.
  {
    std::lock_guard<std::mutex> lock(plan->mutex);
    plan->fail_rename_after = 1;
  }
  db.MutateGraph([](GraphDb& g) {
    g.AddEdge(g.AddNode("mx"), "mlabel", g.AddNode("my"));
  });
  EXPECT_TRUE(db.write_degraded());
  auto rejected = db.CommitDelta(BatchN(0));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);

  // Probe republishes the checkpoint once the disk heals.
  plan->Reset();
  EXPECT_TRUE(db.ProbeDurability());
  EXPECT_FALSE(db.write_degraded());
  ASSERT_TRUE(db.CommitDelta(BatchN(0)).ok());

  std::string fingerprint = Fingerprint(db);
  opened.value().reset();
  auto reopened = Database::OpenDurable(dir.path(), DurabilityOptions{},
                                        DeterministicOptions(), GraphDb());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // The MutateGraph edge and the post-recovery batch both survived.
  EXPECT_EQ(Fingerprint(*reopened.value()), fingerprint);
  EXPECT_TRUE(reopened.value()->graph().FindNode("mx").has_value());
}

// ---- fsync policies ---------------------------------------------------------

TEST(Durability, IntervalAndNeverPoliciesFlushOnDemand) {
  for (FsyncPolicy policy : {FsyncPolicy::kInterval, FsyncPolicy::kNever}) {
    TempDir dir;
    DurabilityOptions durability;
    durability.fsync = policy;
    durability.fsync_interval_ms = 10000;  // flusher never fires in-test
    auto opened = Database::OpenDurable(dir.path(), durability,
                                        DeterministicOptions(), SeedGraph());
    ASSERT_TRUE(opened.ok());
    Database& db = *opened.value();
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(db.CommitDelta(BatchN(i)).ok());
    EXPECT_EQ(db.durable_log()->stats().last_lsn, 3u);
    // The drain path: FlushDurable makes everything durable now.
    ASSERT_TRUE(db.FlushDurable().ok());
    EXPECT_EQ(db.durable_log()->stats().durable_lsn, 3u);

    std::string fingerprint = Fingerprint(db);
    opened.value().reset();
    auto reopened = Database::OpenDurable(dir.path(), DurabilityOptions{},
                                          DeterministicOptions(), GraphDb());
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(Fingerprint(*reopened.value()), fingerprint);
  }
}

// ---- randomized property test ----------------------------------------------

// 100 random mutation batches through crash+recover vs an uncrashed
// twin: after every crash/reopen cycle the durable Database must be
// byte-identical to the twin that never crashed (fsync=always: acked
// means recoverable, and every batch here is acked).
TEST(DurabilityProperty, RandomBatchesSurviveRepeatedCrashes) {
  TempDir dir;
  uint64_t rng = 0x9e3779b97f4a7c15ull;  // fixed seed: deterministic
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  Database twin(SeedGraph(), DeterministicOptions());
  auto opened = Database::OpenDurable(dir.path(), DurabilityOptions{},
                                      DeterministicOptions(), SeedGraph());
  ASSERT_TRUE(opened.ok());

  for (int i = 0; i < 100; ++i) {
    GraphMutation m;
    int adds = static_cast<int>(next() % 4);
    for (int a = 0; a <= adds; ++a) {
      std::string from = "r" + std::to_string(next() % 40);
      std::string to = "r" + std::to_string(next() % 40);
      std::string label = "l" + std::to_string(next() % 5);
      m.add_edges.push_back({from, label, to});
      if (next() % 8 == 0) {
        // Sometimes remove what we just added (multiset semantics) or a
        // probably-absent edge (skipped, counted).
        m.remove_edges.push_back(next() % 2 == 0
                                     ? m.add_edges.back()
                                     : EdgeSpec{from, "missing", to});
      }
    }
    if (next() % 10 == 0) m.add_nodes.push_back("");  // anonymous nodes

    auto committed = opened.value()->CommitDelta(m);
    ASSERT_TRUE(committed.ok()) << committed.status().ToString();
    twin.ApplyDelta(m);

    if (next() % 7 == 0) {
      // Crash and recover; the twin never does.
      opened.value().reset();
      opened = Database::OpenDurable(dir.path(), DurabilityOptions{},
                                     DeterministicOptions(), GraphDb());
      ASSERT_TRUE(opened.ok())
          << "crash " << i << ": " << opened.status().ToString();
      ASSERT_EQ(Fingerprint(*opened.value()), Fingerprint(twin))
          << "diverged after crash at batch " << i;
    }
  }
  EXPECT_EQ(Fingerprint(*opened.value()), Fingerprint(twin));
}

// ---- degraded-mode serving --------------------------------------------------

TEST(DurabilityServing, DegradedServerRejectsWritesKeepsReading) {
  TempDir dir;
  auto plan = std::make_shared<FaultPlan>();
  FaultInjectingFileSystem fs(PosixFileSystem(), plan);
  DurabilityOptions durability;
  durability.fs = &fs;
  durability.probe_interval_ms = 0;
  auto opened = Database::OpenDurable(dir.path(), durability,
                                      DeterministicOptions(), SeedGraph());
  ASSERT_TRUE(opened.ok());
  Database& db = *opened.value();

  ServingOptions options;
  options.port = 0;
  Server server(&db, options);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Healthy: MUTATE acks.
  uint64_t nodes = 0, edges = 0;
  ASSERT_TRUE(client.Mutate({{"ann", "coauthor", "bob"}}, &nodes, &edges).ok());

  // Disk dies.
  {
    std::lock_guard<std::mutex> lock(plan->mutex);
    plan->fail_append_after = 1;
  }
  Status rejected = client.Mutate({{"x", "l", "y"}}, &nodes, &edges);
  ASSERT_FALSE(rejected.ok());
  // The typed error crosses the wire: kUnavailable + DEGRADED marker.
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.message().find("DEGRADED"), std::string::npos);

  // Reads still serve, and STATS reports the degraded flag.
  uint32_t stmt_id = 0;
  ASSERT_TRUE(
      client.Prepare("Ans(x) <- (x, p, y), 'advisor'(p)", &stmt_id).ok());
  Client::RowsPage page;
  ASSERT_TRUE(client.Execute(stmt_id, {}, &page).ok());
  EXPECT_EQ(page.rows.size(), 2u);
  std::string stats;
  ASSERT_TRUE(client.Stats(&stats).ok());
  EXPECT_NE(stats.find("wal.enabled=1"), std::string::npos);
  EXPECT_NE(stats.find("wal.degraded=1"), std::string::npos);
  EXPECT_NE(stats.find("server.mutations_rejected=1"), std::string::npos);

  // Disk heals: the next probing write recovers and acks.
  plan->Reset();
  EXPECT_TRUE(db.ProbeDurability());
  ASSERT_TRUE(client.Mutate({{"x", "l", "y"}}, &nodes, &edges).ok());
  ASSERT_TRUE(client.Stats(&stats).ok());
  EXPECT_NE(stats.find("wal.degraded=0"), std::string::npos);

  server.Stop();
}

}  // namespace
}  // namespace ecrpq
