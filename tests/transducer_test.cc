// Rational relations via transducers and the Prop 8.4 boundary.

#include <gtest/gtest.h>

#include "automata/operations.h"
#include "automata/regex.h"
#include "relations/transducer.h"

namespace ecrpq {
namespace {

Word W(std::initializer_list<int> symbols) {
  Word w;
  for (int s : symbols) w.push_back(s);
  return w;
}

TEST(Transducer, RestrictionRelation) {
  // Restriction to letter 0 (drop letter 1): reads w, outputs w|{0}.
  // Contains(input, output).
  Transducer t = RestrictionTransducer(2, {true, false});
  EXPECT_TRUE(t.Contains(W({0, 1, 0, 1}), W({0, 0})));
  EXPECT_TRUE(t.Contains(W({1, 1}), W({})));
  EXPECT_FALSE(t.Contains(W({1}), W({0})));
  EXPECT_FALSE(t.Contains(W({0}), W({0, 0})));
  EXPECT_FALSE(t.Contains(W({0, 0}), W({0, 1, 0, 1})));
}

TEST(Transducer, ApplyToRegularLanguage) {
  // Image of (01)* under "drop letter 1" is 0*.
  Transducer t = RestrictionTransducer(2, {false, true});
  // Note roles: t reads the word and emits the restriction; Apply computes
  // the image of the input language.
  Alphabet alphabet;
  alphabet.Intern("0");
  alphabet.Intern("1");
  Nfa input = ParseRegexStrict("(01)*", alphabet).value()->ToNfa(2);
  Nfa image = t.Apply(input);
  // Restriction keeps letter 1 here: image = 1*.
  Nfa expected = ParseRegexStrict("1*", alphabet).value()->ToNfa(2);
  EXPECT_TRUE(AreEquivalent(image, expected));
}

TEST(Transducer, AsynchronousNotLetterToLetter) {
  Transducer t = RestrictionTransducer(2, {true, false});
  EXPECT_FALSE(t.IsLetterToLetter());
  EXPECT_FALSE(t.ToRegularRelation().ok());
}

TEST(Transducer, LetterToLetterConversion) {
  // Swap 0 and 1: a synchronous transducer convertible to a regular
  // relation.
  Transducer t(2);
  StateId s = t.AddState();
  t.SetInitial(s);
  t.SetAccepting(s);
  t.AddRule(s, W({0}), W({1}), s);
  t.AddRule(s, W({1}), W({0}), s);
  EXPECT_TRUE(t.IsLetterToLetter());
  auto rel = t.ToRegularRelation();
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(rel.value().Contains({W({0, 1}), W({1, 0})}));
  EXPECT_FALSE(rel.value().Contains({W({0}), W({0})}));
}

TEST(Pcp, BoundedSolver) {
  // Classic solvable instance: a=(1,10111,10), b=(111,10,0):
  // solution 2,1,1,3.
  PcpInstance solvable;
  solvable.a = {W({1}), W({1, 0, 1, 1, 1}), W({1, 0})};
  solvable.b = {W({1, 1, 1}), W({1, 0}), W({0})};
  EXPECT_TRUE(SolvePcpBounded(solvable, 10));

  // Unsolvable: first letters never match.
  PcpInstance unsolvable;
  unsolvable.a = {W({0, 0})};
  unsolvable.b = {W({1})};
  EXPECT_FALSE(SolvePcpBounded(unsolvable, 12));

  // Length mismatch forever: a grows strictly faster on every tile.
  PcpInstance growing;
  growing.a = {W({0, 0}), W({0, 0, 0})};
  growing.b = {W({0}), W({0, 0})};
  EXPECT_FALSE(SolvePcpBounded(growing, 12));
}

}  // namespace
}  // namespace ecrpq
