// Parikh-image flow encodings (Section 8.2, Verma-Seidl-Schwentick style).

#include <gtest/gtest.h>

#include <set>

#include "automata/operations.h"
#include "automata/regex.h"
#include "solver/parikh.h"

namespace ecrpq {
namespace {

Nfa FromRegex(std::string_view text) {
  Alphabet alphabet;
  alphabet.Intern("a");
  alphabet.Intern("b");
  auto re = ParseRegexStrict(text, alphabet);
  EXPECT_TRUE(re.ok());
  return re.value()->ToNfa(2);
}

// Reference: all Parikh vectors of accepted words up to a length bound.
std::set<std::vector<int64_t>> ParikhVectorsUpTo(const Nfa& nfa, int max_len) {
  std::set<std::vector<int64_t>> out;
  for (const Word& w : EnumerateWords(nfa, 1 << 20, max_len)) {
    std::vector<int64_t> counts(nfa.num_symbols(), 0);
    for (Symbol s : w) ++counts[s];
    out.insert(counts);
  }
  return out;
}

// Decides membership of a concrete Parikh vector via the flow encoding.
bool FlowMembership(const Nfa& nfa, const std::vector<int64_t>& counts) {
  std::vector<LinearConstraint> constraints;
  for (size_t a = 0; a < counts.size(); ++a) {
    constraints.push_back(
        {{{static_cast<int>(a), 1}}, Cmp::kEq, counts[a]});
  }
  auto result = ExistsWordWithCounts(nfa, constraints);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value().has_value();
}

TEST(Parikh, MembershipMatchesEnumerationSmall) {
  for (const char* regex : {"(ab)*", "a*b*", "a(a|b)*b", "ab|ba|\\e"}) {
    SCOPED_TRACE(regex);
    Nfa nfa = FromRegex(regex);
    std::set<std::vector<int64_t>> reference = ParikhVectorsUpTo(nfa, 5);
    for (int64_t na = 0; na <= 5; ++na) {
      for (int64_t nb = 0; nb + na <= 5; ++nb) {
        std::vector<int64_t> v = {na, nb};
        EXPECT_EQ(FlowMembership(nfa, v), reference.count(v) > 0)
            << "na=" << na << " nb=" << nb;
      }
    }
  }
}

TEST(Parikh, DisconnectedCycleNotCounted) {
  // Automaton: initial/accepting state 0 with no arcs, plus an unreachable
  // cycle on states 1-2 producing 'a's. Flow encodings without a
  // connectivity constraint wrongly admit (2,0); ours must not.
  Nfa nfa(2);
  StateId s0 = nfa.AddState();
  StateId s1 = nfa.AddState();
  StateId s2 = nfa.AddState();
  nfa.SetInitial(s0);
  nfa.SetAccepting(s0);
  nfa.AddTransition(s1, 0, s2);
  nfa.AddTransition(s2, 0, s1);
  EXPECT_TRUE(FlowMembership(nfa, {0, 0}));
  EXPECT_FALSE(FlowMembership(nfa, {2, 0}));
}

TEST(Parikh, ReachableCycleRequiresEntering) {
  // A cycle reachable from the initial state but the accepting state is
  // before it: counts from the cycle must not be claimable.
  Nfa nfa(1);
  StateId s0 = nfa.AddState();
  StateId s1 = nfa.AddState();
  nfa.SetInitial(s0);
  nfa.SetAccepting(s0);
  nfa.AddTransition(s0, 0, s1);
  nfa.AddTransition(s1, 0, s1);
  EXPECT_TRUE(FlowMembership(nfa, {0}));
  EXPECT_FALSE(FlowMembership(nfa, {1}));  // would strand at s1
  EXPECT_FALSE(FlowMembership(nfa, {5}));
}

TEST(Parikh, InequalityConstraints) {
  // (ab)* with constraint x_a >= 3: minimal witness (3,3).
  Nfa nfa = FromRegex("(ab)*");
  auto result =
      ExistsWordWithCounts(nfa, {{{{0, 1}}, Cmp::kGe, 3}});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.value().has_value());
  EXPECT_GE((*result.value())[0], 3);
  EXPECT_EQ((*result.value())[0], (*result.value())[1]);
}

TEST(Parikh, RatioConstraintAirlineStyle) {
  // Over a*b*: 4x_a - x_b >= 0 and x_a + x_b >= 5 is satisfiable;
  // over b* alone it is not (x_a = 0 forces x_b <= 0).
  Nfa mixed = FromRegex("a*b*");
  auto yes = ExistsWordWithCounts(
      mixed, {{{{0, 4}, {1, -1}}, Cmp::kGe, 0}, {{{0, 1}, {1, 1}}, Cmp::kGe, 5}});
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(yes.value().has_value());

  Nfa only_b = FromRegex("b+");
  auto no = ExistsWordWithCounts(
      only_b,
      {{{{0, 4}, {1, -1}}, Cmp::kGe, 0}, {{{0, 1}, {1, 1}}, Cmp::kGe, 5}});
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(no.value().has_value());
}

TEST(Parikh, EmptyLanguage) {
  auto result = ExistsWordWithCounts(EmptyNfa(2), {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().has_value());
}

TEST(Parikh, EpsilonArcsCarryNoLetter) {
  // a* ε-concatenated with b: ε arcs must not contribute counts.
  Nfa a_star = FromRegex("a*");
  Nfa b = FromRegex("b");
  Nfa nfa = ConcatNfa(a_star, b);
  EXPECT_TRUE(FlowMembership(nfa, {2, 1}));
  EXPECT_FALSE(FlowMembership(nfa, {2, 0}));
  EXPECT_FALSE(FlowMembership(nfa, {2, 2}));
}

TEST(Parikh, SharedCountersAcrossGraphs) {
  // Two automata a* and b* with a shared budget x_a(first) == x_b(second).
  ParikhConstraintBuilder builder;
  auto x1 = builder.AddAutomaton(FromRegex("a*"));
  ASSERT_TRUE(x1.ok());
  auto x2 = builder.AddAutomaton(FromRegex("b*"));
  ASSERT_TRUE(x2.ok());
  builder.AddConstraint(
      {{{x1.value()[0], 1}, {x2.value()[1], -1}}, Cmp::kEq, 0});
  builder.AddConstraint({{{x1.value()[0], 1}}, Cmp::kGe, 4});
  auto solution = builder.Solve();
  ASSERT_TRUE(solution.ok());
  ASSERT_TRUE(solution.value().feasible);
}

}  // namespace
}  // namespace ecrpq
