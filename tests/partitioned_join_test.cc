// Skew robustness of the radix-partitioned join pipeline (core/ops.h).
//
// Power-law key distributions concentrate a large fraction of rows on a
// handful of hot keys, so a few partitions carry most of the build and a
// few probe buckets dominate the match volume. The partitioned HashJoinOp
// and SemiJoinFilterOp must still produce byte-identical tables — rows AND
// row order — to the serial implementations at every lane count, and the
// per-lane build/probe counters must merge to the same totals. This file
// runs under the CI ThreadSanitizer job (full ctest), so the partition
// scatter and the two-pass probe are also raced deliberately here.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/evaluator.h"
#include "core/ops.h"
#include "util/random.h"

namespace ecrpq {
namespace {

// A key sampler with a power-law-ish profile: ~30% of draws hit one hot
// key, ~20% spread over a warm band of 8, the rest over a cold range.
NodeId SkewedKey(Rng* rng, int cold_range) {
  const uint64_t roll = rng->Below(100);
  if (roll < 30) return 0;                                 // hot key
  if (roll < 50) return static_cast<NodeId>(1 + rng->Below(8));  // warm
  return static_cast<NodeId>(9 + rng->Below(cold_range));        // cold
}

// Distinct rows (the BindingTable contract), preserving first-seen order.
void Dedup(BindingTable* t) {
  std::set<std::vector<NodeId>> seen;
  std::vector<std::vector<NodeId>> rows;
  for (auto& row : t->rows) {
    if (seen.insert(row).second) rows.push_back(std::move(row));
  }
  t->rows = std::move(rows);
}

// left(v0, v1) and right(v1, v2) joined on the skewed column v1. The
// right side's keys stop short of the left's cold range, so the semi-join
// genuinely removes rows.
void BuildSkewedTables(BindingTable* left, BindingTable* right) {
  Rng rng(97);
  left->vars = {0, 1};
  right->vars = {1, 2};
  for (int i = 0; i < 9000; ++i) {
    left->rows.push_back({static_cast<NodeId>(rng.Below(4000)),
                          SkewedKey(&rng, /*cold_range=*/400)});
    right->rows.push_back({SkewedKey(&rng, /*cold_range=*/200),
                           static_cast<NodeId>(rng.Below(4000))});
  }
  Dedup(left);
  Dedup(right);
}

const OperatorStats& LastOp(const EvalStats& stats) {
  EXPECT_FALSE(stats.operators.empty());
  return stats.operators.back();
}

TEST(PartitionedJoin, SkewedHashJoinMatchesSerialAtEveryLaneCount) {
  BindingTable left, right;
  BuildSkewedTables(&left, &right);
  // Both sides comfortably above the stay-inline row threshold.
  ASSERT_GE(left.rows.size(), 4096u);
  ASSERT_GE(right.rows.size(), 4096u);

  EvalStats serial_stats;
  const BindingTable serial = HashJoinOp(left, right, serial_stats, 1);
  ASSERT_FALSE(serial.rows.empty());
  const OperatorStats& serial_op = LastOp(serial_stats);
  EXPECT_EQ(serial_op.op, "HashJoin");
  EXPECT_EQ(serial_op.build_rows, right.rows.size());
  EXPECT_EQ(serial_op.probe_rows, left.rows.size());

  for (int threads : {2, 4, 8}) {
    EvalStats stats;
    const BindingTable parallel = HashJoinOp(left, right, stats, threads);
    EXPECT_EQ(parallel.vars, serial.vars) << "threads=" << threads;
    EXPECT_EQ(parallel.rows, serial.rows)  // content AND order
        << "threads=" << threads;
    EXPECT_EQ(stats.join_tuples, serial_stats.join_tuples)
        << "threads=" << threads;
    // The per-lane build/probe counters must merge to the serial totals
    // regardless of how the morsels were distributed over lanes.
    const OperatorStats& op = LastOp(stats);
    EXPECT_EQ(op.op, "HashJoin");
    EXPECT_EQ(op.threads, threads);
    EXPECT_EQ(op.build_rows, serial_op.build_rows) << "threads=" << threads;
    EXPECT_EQ(op.probe_rows, serial_op.probe_rows) << "threads=" << threads;
    EXPECT_EQ(op.rows_in, serial_op.rows_in);
    EXPECT_EQ(op.rows_out, serial_op.rows_out);
  }
}

TEST(PartitionedJoin, SkewedSemiJoinFilterMatchesSerialAtEveryLaneCount) {
  BindingTable left, right;
  BuildSkewedTables(&left, &right);

  EvalStats serial_stats;
  BindingTable serial_target = left;
  const bool serial_shrank =
      SemiJoinFilterOp(&serial_target, right, serial_stats, 1);
  // Cold left keys in [209, 409) have no right partner, so rows must
  // actually have been removed (the operator only records stats then).
  ASSERT_TRUE(serial_shrank);
  ASSERT_LT(serial_target.rows.size(), left.rows.size());
  const OperatorStats& serial_op = LastOp(serial_stats);
  EXPECT_EQ(serial_op.op, "SemiJoinFilter");
  EXPECT_EQ(serial_op.build_rows, right.rows.size());
  EXPECT_EQ(serial_op.probe_rows, left.rows.size());

  for (int threads : {2, 4, 8}) {
    EvalStats stats;
    BindingTable target = left;
    const bool shrank = SemiJoinFilterOp(&target, right, stats, threads);
    EXPECT_EQ(shrank, serial_shrank) << "threads=" << threads;
    EXPECT_EQ(target.vars, serial_target.vars);
    EXPECT_EQ(target.rows, serial_target.rows)  // content AND order
        << "threads=" << threads;
    const OperatorStats& op = LastOp(stats);
    EXPECT_EQ(op.op, "SemiJoinFilter");
    EXPECT_EQ(op.threads, threads);
    EXPECT_EQ(op.build_rows, serial_op.build_rows) << "threads=" << threads;
    EXPECT_EQ(op.probe_rows, serial_op.probe_rows) << "threads=" << threads;
    EXPECT_EQ(op.rows_in, serial_op.rows_in);
    EXPECT_EQ(op.rows_out, serial_op.rows_out);
  }
}

// Hash-collision safety net: many distinct keys land in few partitions
// when the key space is tiny, and every probe hit must re-check the real
// key columns, not just the 64-bit hash.
TEST(PartitionedJoin, TinyKeySpaceCrossCheck) {
  Rng rng(7);
  BindingTable left, right;
  left.vars = {0, 1};
  right.vars = {1, 2};
  for (int i = 0; i < 6000; ++i) {
    left.rows.push_back({static_cast<NodeId>(rng.Below(3000)),
                         static_cast<NodeId>(rng.Below(3))});
    right.rows.push_back({static_cast<NodeId>(rng.Below(3)),
                          static_cast<NodeId>(rng.Below(3000))});
  }
  Dedup(&left);
  Dedup(&right);

  EvalStats serial_stats, parallel_stats;
  const BindingTable serial = HashJoinOp(left, right, serial_stats, 1);
  const BindingTable parallel = HashJoinOp(left, right, parallel_stats, 8);
  EXPECT_EQ(serial.rows, parallel.rows);
  EXPECT_EQ(serial_stats.join_tuples, parallel_stats.join_tuples);
}

}  // namespace
}  // namespace ecrpq
