// Prop 5.2 answer automata: representing (possibly infinite) path outputs.

#include <gtest/gtest.h>

#include "core/eval_product.h"
#include "core/evaluator.h"
#include "graph/generators.h"
#include "query/parser.h"

namespace ecrpq {
namespace {

QueryResult Eval(const GraphDb& g, std::string_view text) {
  auto query = ParseQuery(text, g.alphabet());
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  Evaluator evaluator(&g);
  auto result = evaluator.Evaluate(query.value());
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(PathAnswers, FinitePathOutput) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = WordGraph(alphabet, {0, 1});  // w0 -a-> w1 -b-> w2
  QueryResult r = Eval(g, "Ans(x, y, p) <- (x, p, y), ab(p)");
  ASSERT_EQ(r.tuples().size(), 1u);
  ASSERT_TRUE(r.has_path_answers());
  const PathAnswerSet& answers = r.path_answers(0);
  EXPECT_FALSE(answers.IsEmpty());
  EXPECT_FALSE(answers.IsInfinite());
  EXPECT_EQ(answers.CountTuples(10), 1u);
  auto tuples = answers.Enumerate(10, 10);
  ASSERT_EQ(tuples.size(), 1u);
  ASSERT_EQ(tuples[0].size(), 1u);
  EXPECT_EQ(tuples[0][0].length(), 2);
  EXPECT_TRUE(answers.Contains(tuples[0]));
}

TEST(PathAnswers, InfinitePathOutputOnCycle) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g = CycleGraph(alphabet, 2, "a");
  QueryResult r = Eval(g, "Ans(x, p) <- (x, p, x), a+(p)");
  ASSERT_EQ(r.tuples().size(), 2u);
  for (size_t i = 0; i < r.tuples().size(); ++i) {
    const PathAnswerSet& answers = r.path_answers(i);
    EXPECT_FALSE(answers.IsEmpty());
    EXPECT_TRUE(answers.IsInfinite());
    // Loops of length 2, 4, 6, ... from each node.
    EXPECT_EQ(answers.CountTuples(6), 3u);
    auto tuples = answers.Enumerate(3, 6);
    ASSERT_EQ(tuples.size(), 3u);
    EXPECT_EQ(tuples[0][0].length(), 2);
  }
}

TEST(PathAnswers, TupleOutputsAreSynchronized) {
  // The alignment-style query: p and q must have equal labels; outputs are
  // pairs of paths.
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g(alphabet);
  NodeId u1 = g.AddNode("u1");
  NodeId u2 = g.AddNode("u2");
  NodeId v1 = g.AddNode("v1");
  NodeId v2 = g.AddNode("v2");
  g.AddEdge(u1, Symbol{0}, u2);  // a
  g.AddEdge(v1, Symbol{0}, v2);  // a
  g.AddEdge(v1, Symbol{1}, v2);  // b
  QueryResult r = Eval(
      g, R"(Ans(p, q) <- ("u1", p, x), ("v1", q, y), eq(p, q), a(p))");
  // Boolean-ish head with two path variables; one node tuple (empty).
  ASSERT_EQ(r.tuples().size(), 1u);
  const PathAnswerSet& answers = r.path_answers(0);
  EXPECT_EQ(answers.CountTuples(5), 1u);
  auto tuples = answers.Enumerate(5, 5);
  ASSERT_EQ(tuples.size(), 1u);
  ASSERT_EQ(tuples[0].size(), 2u);
  EXPECT_EQ(tuples[0][0].Label(), tuples[0][1].Label());
  EXPECT_EQ(tuples[0][0].start(), u1);
  EXPECT_EQ(tuples[0][1].start(), v1);
}

TEST(PathAnswers, ProjectionDropsAuxiliaryTracks) {
  // Head keeps p only; q ranges over an infinite set but the projection
  // is finite.
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g(alphabet);
  NodeId u = g.AddNode("u");
  NodeId v = g.AddNode("v");
  g.AddEdge(u, Symbol{0}, v);   // a edge u->v
  g.AddEdge(v, Symbol{1}, v);   // b loop at v
  QueryResult r = Eval(g, R"(Ans(p) <- ("u", p, x), (x, q, y), a(p), b*(q))");
  ASSERT_EQ(r.tuples().size(), 1u);
  const PathAnswerSet& answers = r.path_answers(0);
  EXPECT_FALSE(answers.IsEmpty());
  // q is infinite (b*), but p has exactly one binding: the a-edge.
  EXPECT_FALSE(answers.IsInfinite());
  EXPECT_EQ(answers.CountTuples(10), 1u);
}

TEST(PathAnswers, ContainsRejectsForeignPaths) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = WordGraph(alphabet, {0, 1});
  QueryResult r = Eval(g, "Ans(p) <- (x, p, y), a(p)");
  ASSERT_EQ(r.tuples().size(), 1u);
  const PathAnswerSet& answers = r.path_answers(0);
  // The b-edge path is a valid path but not an answer.
  Path b_path(*g.FindNode("w1"), {{Symbol{1}, *g.FindNode("w2")}});
  EXPECT_FALSE(answers.Contains({b_path}));
  Path a_path(*g.FindNode("w0"), {{Symbol{0}, *g.FindNode("w1")}});
  EXPECT_TRUE(answers.Contains({a_path}));
}

TEST(PathAnswers, EmptyAnswerSet) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = WordGraph(alphabet, {0});
  auto query = ParseQuery("Ans(p) <- (x, p, y), bb(p)", g.alphabet());
  ASSERT_TRUE(query.ok());
  Evaluator evaluator(&g);
  auto result = evaluator.Evaluate(query.value());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().tuples().empty());
  EXPECT_FALSE(result.value().AsBool());
}

TEST(PathAnswers, RepresentationMatchesPaperExampleShape) {
  // ρ-query style: return the two property sequences relating fixed nodes
  // (Section 4). Check the answer automaton produces synchronized pairs.
  Rng rng(5);
  std::vector<std::pair<std::string, std::string>> subs;
  GraphDb g = RdfPropertyGraph(6, 3, 2, &rng, &subs);
  std::string rho =
      "(['p0','p0']|['p0','p1']|['p1','p0']|['p1','p1']|['p2','p2'])+";
  auto query = ParseQuery(
      "Ans(x, y, pi1, pi2) <- (x, pi1, z1), (y, pi2, z2), " + rho +
          "(pi1, pi2)",
      g.alphabet());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EvalOptions options;
  options.max_configs = 500000;
  Evaluator evaluator(&g, options);
  auto result = evaluator.Evaluate(query.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  if (!result.value().tuples().empty()) {
    const PathAnswerSet& answers = result.value().path_answers(0);
    auto tuples = answers.Enumerate(3, 4);
    for (const PathTuple& tuple : tuples) {
      ASSERT_EQ(tuple.size(), 2u);
      EXPECT_EQ(tuple[0].length(), tuple[1].length());  // ρ-iso implies el
    }
  }
}

}  // namespace
}  // namespace ecrpq
