// GraphIndex correctness: the CSR label slices must be exactly the
// GraphDb adjacency (as multisets, per node and label), and the engines
// must compute identical answer sets with and without the index.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/eval_bruteforce.h"
#include "core/eval_crpq.h"
#include "core/eval_product.h"
#include "core/evaluator.h"
#include "graph/generators.h"
#include "graph/index.h"
#include "query/parser.h"

namespace ecrpq {
namespace {

// Per-(node, label) target multiset straight from the GraphDb.
std::map<std::pair<NodeId, Symbol>, std::vector<NodeId>> Reference(
    const GraphDb& g, bool out_side) {
  std::map<std::pair<NodeId, Symbol>, std::vector<NodeId>> ref;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& [label, other] : out_side ? g.Out(v) : g.In(v)) {
      ref[{v, label}].push_back(other);
    }
  }
  for (auto& [key, targets] : ref) std::sort(targets.begin(), targets.end());
  return ref;
}

void CheckIndexMatchesGraph(const GraphDb& g) {
  auto index = GraphIndex::Build(g);
  ASSERT_EQ(index->num_nodes(), g.num_nodes());
  ASSERT_EQ(index->num_edges(), g.num_edges());
  ASSERT_EQ(index->num_labels(), g.alphabet().size());

  for (bool out_side : {true, false}) {
    auto ref = Reference(g, out_side);
    int64_t covered = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      for (Symbol a = 0; a < g.alphabet().size(); ++a) {
        auto slice = out_side ? index->Out(v, a) : index->In(v, a);
        std::vector<NodeId> got(slice.begin(), slice.end());
        auto it = ref.find({v, a});
        std::vector<NodeId> want =
            (it == ref.end()) ? std::vector<NodeId>{} : it->second;
        EXPECT_EQ(got, want) << "node " << v << " label " << a << " out="
                             << out_side;
        covered += static_cast<int64_t>(got.size());
        // The label-presence mask agrees with the slice (exact: test
        // alphabets are far below 63 labels).
        uint64_t mask = out_side ? index->OutLabelMask(v)
                                 : index->InLabelMask(v);
        EXPECT_EQ((mask >> a) & 1, got.empty() ? 0u : 1u);
      }
      // Full per-node rows are label-sorted and complete.
      auto labels = out_side ? index->OutLabels(v) : index->InLabels(v);
      EXPECT_TRUE(std::is_sorted(labels.begin(), labels.end()));
      EXPECT_EQ(static_cast<int>(labels.size()),
                out_side ? index->out_degree(v) : index->in_degree(v));
    }
    // Every edge is in exactly one slice.
    EXPECT_EQ(covered, g.num_edges());
  }

  // Label counts sum to the edge count; permutation is a degree-sorted
  // bijection on nodes.
  int64_t total = 0;
  for (Symbol a = 0; a < g.alphabet().size(); ++a) {
    total += index->LabelCount(a);
  }
  if (g.alphabet().size() > 0) EXPECT_EQ(total, g.num_edges());
  std::vector<NodeId> perm = index->NodesByDegree();
  for (size_t i = 1; i < perm.size(); ++i) {
    EXPECT_GE(index->out_degree(perm[i - 1]) + index->in_degree(perm[i - 1]),
              index->out_degree(perm[i]) + index->in_degree(perm[i]));
  }
  std::sort(perm.begin(), perm.end());
  for (size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(perm[i], static_cast<NodeId>(i));
  }
}

class IndexVsGraphDb : public ::testing::TestWithParam<int> {};

TEST_P(IndexVsGraphDb, RandomGraphSlices) {
  Rng rng(GetParam());
  auto alphabet = Alphabet::FromLabels({"a", "b", "c"});
  GraphDb g = RandomGraph(alphabet, 3 + GetParam() % 17,
                          2 * (3 + GetParam() % 29), &rng);
  CheckIndexMatchesGraph(g);
}

TEST_P(IndexVsGraphDb, LayeredGraphSlices) {
  Rng rng(GetParam() + 1000);
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = LayeredGraph(alphabet, 2 + GetParam() % 5, 1 + GetParam() % 4,
                           1 + GetParam() % 3, &rng);
  CheckIndexMatchesGraph(g);
}

INSTANTIATE_TEST_SUITE_P(Seeds100, IndexVsGraphDb, ::testing::Range(0, 100));

TEST(GraphIndex, EmptyAndEdgelessGraphs) {
  GraphDb empty;
  CheckIndexMatchesGraph(empty);
  GraphDb isolated;
  isolated.AddNode("x");
  isolated.AddNode("y");
  CheckIndexMatchesGraph(isolated);
}

// Engine equivalence: indexed evaluation returns exactly the same answer
// sets as the index-free scan path and as brute force on small graphs.
const char* kEquivalenceQueries[] = {
    "Ans(x, y) <- (x, p, y), a*(p)",
    "Ans(x, z) <- (x, p, y), (y, q, z), a+(p), b*(q)",
    "Ans(x, y) <- (x, p, z), (z, q, y), eq(p, q)",
    "Ans(x, y) <- (x, p, y), (x, q, y), prefix(p, q)",
    "Ans(x, w) <- (x, p, y), (z, p, w), a*(p)",
};

class EngineIndexEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EngineIndexEquivalence, ProductMatchesScanAndBruteForce) {
  Rng rng(GetParam());
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = LayeredGraph(alphabet, 4, 2, 2, &rng);
  for (const char* text : kEquivalenceQueries) {
    SCOPED_TRACE(text);
    auto query = ParseQuery(text, g.alphabet());
    ASSERT_TRUE(query.ok()) << query.status().ToString();

    EvalOptions indexed;
    indexed.build_path_answers = false;
    indexed.bruteforce_max_len = 4;
    EvalOptions scan = indexed;
    scan.use_graph_index = false;

    auto with_index = EvaluateProduct(g, query.value(), indexed);
    auto without = EvaluateProduct(g, query.value(), scan);
    auto brute = EvaluateBruteForce(g, query.value(), indexed);
    ASSERT_TRUE(with_index.ok()) << with_index.status().ToString();
    ASSERT_TRUE(without.ok()) << without.status().ToString();
    ASSERT_TRUE(brute.ok()) << brute.status().ToString();
    EXPECT_EQ(with_index.value().tuples(), without.value().tuples());
    EXPECT_EQ(with_index.value().tuples(), brute.value().tuples());
  }
}

TEST_P(EngineIndexEquivalence, CrpqMatchesScan) {
  Rng rng(GetParam() + 31);
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = RandomGraph(alphabet, 8, 20, &rng);
  auto query = ParseQuery("Ans(x, z) <- (x, p, y), (y, q, z), a+(p), b*(q)",
                          g.alphabet());
  ASSERT_TRUE(query.ok());

  EvalOptions indexed;
  indexed.build_path_answers = false;
  EvalOptions scan = indexed;
  scan.use_graph_index = false;

  auto with_index = EvaluateCrpq(g, query.value(), indexed);
  auto without = EvaluateCrpq(g, query.value(), scan);
  ASSERT_TRUE(with_index.ok()) << with_index.status().ToString();
  ASSERT_TRUE(without.ok()) << without.status().ToString();
  EXPECT_EQ(with_index.value().tuples(), without.value().tuples());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineIndexEquivalence,
                         ::testing::Range(0, 10));

// ReachabilityPairs (the CRPQ building block) agrees slice-by-slice with
// the scan implementation, pair-for-pair.
TEST(GraphIndex, ReachabilityPairsMatchScan) {
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    auto alphabet = Alphabet::FromLabels({"a", "b", "c"});
    GraphDb g = RandomGraph(alphabet, 10, 30, &rng);
    auto index = GraphIndex::Build(g);
    auto scan = ReachabilityPairs(g, {});
    auto sliced = ReachabilityPairs(g, {}, index.get());
    EXPECT_EQ(scan, sliced) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ecrpq
