// End-to-end integration tests: every worked example from the paper.

#include <gtest/gtest.h>

#include <functional>

#include "api/api.h"
#include "automata/regex.h"
#include "core/eval_negation.h"
#include "graph/generators.h"
#include "relations/builtin.h"

namespace ecrpq {
namespace {

// Evaluates through the public Database facade; `setup` may register
// custom relations on the session before the query is prepared.
QueryResult Eval(const GraphDb& g, const std::string& text,
                 const std::function<void(Database&)>& setup = {}) {
  DatabaseOptions options;
  options.eval.max_configs = 2000000;
  Database db(g, options);
  if (setup) setup(db);
  auto result = db.Execute(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// Introduction: the student-advisor graph. CRPQs find academic ancestors;
// the ECRPQ finds pairs of scientists with same-length advisor paths to a
// common ancestor.
TEST(PaperExamples, AdvisorGenealogy) {
  GraphDb g;
  Symbol adv = g.alphabet_ptr()->Intern("advisor");
  NodeId alice = g.AddNode("alice");
  NodeId bob = g.AddNode("bob");
  NodeId carol = g.AddNode("carol");    // advisor of alice and bob
  NodeId dana = g.AddNode("dana");      // advisor of carol
  NodeId erik = g.AddNode("erik");      // long chain to dana
  NodeId frank = g.AddNode("frank");
  g.AddEdge(alice, adv, carol);
  g.AddEdge(bob, adv, carol);
  g.AddEdge(carol, adv, dana);
  g.AddEdge(erik, adv, frank);
  g.AddEdge(frank, adv, dana);

  // CRPQ: academic ancestors of alice.
  QueryResult ancestors =
      Eval(g, R"(Ans(y) <- ("alice", p, y), 'advisor'+(p))");
  EXPECT_EQ(ancestors.tuples().size(), 2u);  // carol, dana

  // ECRPQ: pairs with same-length advisor paths to dana.
  QueryResult same_len = Eval(
      g,
      R"(Ans(x, y) <- (x, p, "dana"), (y, q, "dana"), )"
      R"('advisor'+(p), 'advisor'+(q), el(p, q))");
  std::set<std::vector<NodeId>> tuples(same_len.tuples().begin(),
                                       same_len.tuples().end());
  // alice/bob at distance 2 pair with each other and with erik (also 2).
  EXPECT_TRUE(tuples.count({alice, bob}));
  EXPECT_TRUE(tuples.count({alice, erik}));
  EXPECT_TRUE(tuples.count({carol, frank}));  // both distance 1
  EXPECT_FALSE(tuples.count({alice, carol}));  // 2 vs 1
}

// Section 3: the pattern aXbX via an ECRPQ (built by the paper's recipe).
TEST(PaperExamples, PatternViaEquality) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  // a · w · b · w with w = ba: graph of "a ba b ba".
  GraphDb g = WordGraph(alphabet, {0, 1, 0, 1, 1, 0});
  QueryResult r = Eval(g,
                       "Ans(x0, x4) <- (x0, p1, x1), (x1, p2, x2), "
                       "(x2, p3, x3), (x3, p4, x4), a(p1), b(p3), "
                       "eq(p2, p4)");
  bool found = false;
  for (const auto& tuple : r.tuples()) {
    if (tuple[0] == *g.FindNode("w0") && tuple[1] == *g.FindNode("w6")) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// Section 4: ρ-isoAssociated nodes in an RDF/S graph.
TEST(PaperExamples, RhoIsoAssociations) {
  GraphDb g;
  Symbol p0 = g.alphabet_ptr()->Intern("p0");
  Symbol p1 = g.alphabet_ptr()->Intern("p1");
  Symbol p2 = g.alphabet_ptr()->Intern("p2");
  // Subproperty: p0 ≺ p1. p2 unrelated.
  NodeId x = g.AddNode("x");
  NodeId y = g.AddNode("y");
  NodeId x1 = g.AddNode("x1");
  NodeId y1 = g.AddNode("y1");
  NodeId z = g.AddNode("z");
  g.AddEdge(x, p0, x1);
  g.AddEdge(y, p1, y1);
  g.AddEdge(z, p2, x1);

  QueryResult r = Eval(
      g, "Ans(x, y) <- (x, pi1, z1), (y, pi2, z2), rho(pi1, pi2)",
      [&](Database& db) {
        db.RegisterRelation(
            "rho", std::make_shared<RegularRelation>(
                       RhoIsomorphismRelation(3, {{p0, p1}})));
      });
  std::set<std::vector<NodeId>> tuples(r.tuples().begin(), r.tuples().end());
  // x (via p0) and y (via p1) are ρ-isoAssociated; z (p2) only pairs with
  // nodes via the empty sequence (every node pairs with every node via ε —
  // the paper's relation includes the empty sequence).
  EXPECT_TRUE(tuples.count({x, y}));
  EXPECT_TRUE(tuples.count({y, x}));
  // Nonempty association involving z's p2 edge exists only with another
  // p2... no other p2 edge from a different node, but (z, z) via ε holds.
  EXPECT_TRUE(tuples.count({z, z}));
}

// Section 4: approximate matching — nodes connected by words at edit
// distance <= 1 from each other across two sequences.
TEST(PaperExamples, EditDistanceAcrossSequences) {
  auto alphabet = Alphabet::FromLabels({"a", "c", "g", "t"});
  // x spells acgt; y spells agt (one deletion).
  GraphDb g = TwoWordGraph(alphabet, {0, 1, 2, 3}, {0, 2, 3});
  QueryResult r = Eval(
      g,
      R"(Ans() <- ("x0", p, "x4"), ("y0", q, "y3"), edit1(p, q))");
  EXPECT_TRUE(r.AsBool());
  // Edit distance 2 needed against agg — edit1 fails, edit2 succeeds.
  GraphDb g2 = TwoWordGraph(alphabet, {0, 1, 2, 3}, {0, 2, 2});
  QueryResult r_fail = Eval(
      g2,
      R"(Ans() <- ("x0", p, "x4"), ("y0", q, "y3"), edit1(p, q))");
  EXPECT_FALSE(r_fail.AsBool());
  QueryResult r_ok = Eval(
      g2,
      R"(Ans() <- ("x0", p, "x4"), ("y0", q, "y3"), edit2(p, q))");
  EXPECT_TRUE(r_ok.AsBool());
}

// Section 8.1: the query ¬∃π((x,π,y) ∧ L(π)) — "no path labeled in L".
TEST(PaperExamples, NegationNoPathInL) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g(alphabet);
  NodeId u = g.AddNode("u");
  NodeId v = g.AddNode("v");
  g.AddEdge(u, Symbol{0}, v);
  auto lang = std::make_shared<RegularRelation>(RegularRelation::FromLanguage(
      2, ParseRegexStrict("b", *alphabet).value()->ToNfa(2)));
  auto no_b_path = Formula::Not(Formula::ExistsPath(
      "pi", Formula::And(Formula::PathAtom("x", "pi", "y"),
                         Formula::Relation(lang, {"pi"}))));
  auto yes = EvaluateFormula(g, no_b_path, {{"x", u}, {"y", v}}, {});
  ASSERT_TRUE(yes.ok()) << yes.status().ToString();
  EXPECT_TRUE(yes.value());  // only an a-edge, no b path
  GraphDb g2(alphabet);
  NodeId u2 = g2.AddNode("u");
  NodeId v2 = g2.AddNode("v");
  g2.AddEdge(u2, Symbol{1}, v2);
  auto no = EvaluateFormula(g2, no_b_path, {{"x", u2}, {"y", v2}}, {});
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(no.value());
}

// Section 8.2: itinerary with Singapore Airlines >= 80% of the journey.
TEST(PaperExamples, AirlineItinerary) {
  auto alphabet = Alphabet::FromLabels({"sq", "other"});
  GraphDb g(alphabet);
  NodeId london = g.AddNode("London");
  NodeId sydney = g.AddNode("Sydney");
  NodeId at = london;
  for (int leg = 0; leg < 8; ++leg) {  // 8 slices with SQ
    NodeId next = g.AddNode();
    g.AddEdge(at, Symbol{0}, next);
    at = next;
  }
  g.AddEdge(at, Symbol{1}, sydney);  // 1 slice with another airline
  QueryResult r = Eval(
      g,
      R"(Ans() <- ("London", p, "Sydney"), )"
      R"(occ(p, sq) - 4*occ(p, 'other') >= 0)");
  EXPECT_TRUE(r.AsBool());
}

// Section 4 alignment: output the mismatch positions between two aligned
// sequences (k = 1) using per-segment path variables.
TEST(PaperExamples, AlignmentWithGapOutput) {
  auto alphabet = Alphabet::FromLabels({"a", "c", "g", "t", "eps"});
  // x = ac|g|t, y = ac|t|t: mismatch g vs t at position 3.
  // Model ε via an explicit 'eps' loop on every node (the paper's
  // assumption) so gaps are expressible.
  GraphDb g(alphabet);
  std::vector<NodeId> xs, ys;
  Word x_word = {0, 1, 2, 3}, y_word = {0, 1, 3, 3};
  NodeId prev = g.AddNode("x0");
  xs.push_back(prev);
  for (size_t i = 0; i < x_word.size(); ++i) {
    NodeId n = g.AddNode("x" + std::to_string(i + 1));
    g.AddEdge(prev, x_word[i], n);
    prev = n;
    xs.push_back(n);
  }
  prev = g.AddNode("y0");
  ys.push_back(prev);
  for (size_t i = 0; i < y_word.size(); ++i) {
    NodeId n = g.AddNode("y" + std::to_string(i + 1));
    g.AddEdge(prev, y_word[i], n);
    prev = n;
    ys.push_back(n);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    g.AddEdge(v, Symbol{4}, v);  // eps loops
  }
  // Mismatch relation: pairs of single distinct letters (incl. eps).
  std::vector<std::pair<Symbol, Symbol>> mismatches;
  for (Symbol s = 0; s < 5; ++s) {
    for (Symbol t = 0; t < 5; ++t) {
      if (s != t) mismatches.emplace_back(s, t);
    }
  }
  // Body: x-side = π0 (match) π1 (mismatch) π2 (match), y-side likewise,
  // with π0=ρ0, π2=ρ2 and mismatch(π1, ρ1).
  QueryResult r = Eval(
      g,
      R"(Ans(p1, r1) <- ("x0", p0, m1), (m1, p1, m2), (m2, p2, "x4"), )"
      R"(("y0", r0, n1), (n1, r1, n2), (n2, r2, "y4"), )"
      R"(eq(p0, r0), eq(p2, r2), mismatch(p1, r1))",
      [&](Database& db) {
        db.RegisterRelation(
            "mismatch", std::make_shared<RegularRelation>(
                            SynchronousPairsRelation(5, mismatches)));
      });
  ASSERT_FALSE(r.tuples().empty());
  ASSERT_TRUE(r.has_path_answers());
  // Some enumerated answer shows the g-vs-t mismatch.
  bool found_mismatch = false;
  for (const PathTuple& tuple : r.path_answers(0).Enumerate(50, 8)) {
    if (tuple[0].Label() == Word{2} && tuple[1].Label() == Word{3}) {
      found_mismatch = true;
    }
  }
  EXPECT_TRUE(found_mismatch);
}

}  // namespace
}  // namespace ecrpq
