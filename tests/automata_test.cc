// NFA/DFA construction and language operations.

#include <gtest/gtest.h>

#include "automata/operations.h"
#include "automata/regex.h"
#include "util/random.h"

namespace ecrpq {
namespace {

Nfa MakeNfa(std::string_view regex, int num_symbols) {
  Alphabet alphabet;
  alphabet.Intern("a");
  alphabet.Intern("b");
  alphabet.Intern("c");
  auto parsed = ParseRegexStrict(regex, alphabet);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.value()->ToNfa(num_symbols);
}

Word W(std::initializer_list<int> symbols) {
  Word w;
  for (int s : symbols) w.push_back(s);
  return w;
}

TEST(Nfa, AcceptsBasics) {
  Nfa nfa = MakeNfa("ab*", 2);
  EXPECT_TRUE(nfa.Accepts(W({0})));
  EXPECT_TRUE(nfa.Accepts(W({0, 1})));
  EXPECT_TRUE(nfa.Accepts(W({0, 1, 1, 1})));
  EXPECT_FALSE(nfa.Accepts(W({})));
  EXPECT_FALSE(nfa.Accepts(W({1})));
  EXPECT_FALSE(nfa.Accepts(W({0, 0})));
}

TEST(Nfa, EmptyWordHandling) {
  Nfa star = MakeNfa("a*", 2);
  EXPECT_TRUE(star.AcceptsEmptyWord());
  Nfa plus = MakeNfa("a+", 2);
  EXPECT_FALSE(plus.AcceptsEmptyWord());
}

TEST(Operations, UnionIntersection) {
  Nfa a = MakeNfa("a*b", 2);
  Nfa b = MakeNfa("ab*", 2);
  Nfa u = UnionNfa(a, b);
  EXPECT_TRUE(u.Accepts(W({0, 0, 1})));
  EXPECT_TRUE(u.Accepts(W({0, 1, 1})));
  Nfa i = IntersectNfa(a, b);
  EXPECT_TRUE(i.Accepts(W({0, 1})));
  EXPECT_FALSE(i.Accepts(W({0, 0, 1})));
  EXPECT_FALSE(i.Accepts(W({0, 1, 1})));
}

TEST(Operations, ComplementRoundTrip) {
  Nfa a = MakeNfa("(ab)*", 2);
  Nfa c = ComplementNfa(a);
  EXPECT_FALSE(c.Accepts(W({})));
  EXPECT_FALSE(c.Accepts(W({0, 1})));
  EXPECT_TRUE(c.Accepts(W({0})));
  EXPECT_TRUE(c.Accepts(W({1, 0})));
  EXPECT_TRUE(AreEquivalent(a, ComplementNfa(c)));
}

TEST(Operations, InclusionAndEquivalence) {
  Nfa ab_star = MakeNfa("(a|b)*", 2);
  Nfa a_star = MakeNfa("a*", 2);
  EXPECT_TRUE(IsSubsetOf(a_star, ab_star));
  EXPECT_FALSE(IsSubsetOf(ab_star, a_star));
  Nfa aa = MakeNfa("a(aa)*", 2);
  Nfa odd_a = MakeNfa("(aa)*a", 2);
  EXPECT_TRUE(AreEquivalent(aa, odd_a));
}

TEST(Operations, EmptinessAndInfinity) {
  EXPECT_TRUE(IsEmpty(EmptyNfa(2)));
  EXPECT_FALSE(IsEmpty(UniverseNfa(2)));
  EXPECT_TRUE(IsInfinite(MakeNfa("a*", 2)));
  EXPECT_FALSE(IsInfinite(MakeNfa("a|bb", 2)));
  // A cycle that is not co-reachable does not make the language infinite.
  Nfa nfa(2);
  StateId s0 = nfa.AddState();
  StateId s1 = nfa.AddState();
  nfa.SetInitial(s0);
  nfa.SetAccepting(s0);
  nfa.AddTransition(s0, 0, s1);
  nfa.AddTransition(s1, 0, s1);
  EXPECT_FALSE(IsInfinite(nfa));
}

TEST(Operations, ShortestWord) {
  EXPECT_EQ(ShortestWord(MakeNfa("a*", 2)), W({}));
  EXPECT_EQ(ShortestWord(MakeNfa("aab|b", 2)), W({1}));
  EXPECT_EQ(ShortestWord(EmptyNfa(2)), std::nullopt);
  EXPECT_EQ(ShortestWord(MakeNfa("abc", 3)), W({0, 1, 2}));
}

TEST(Operations, EnumerateWordsOrdered) {
  std::vector<Word> words = EnumerateWords(MakeNfa("a*b", 2), 4, 10);
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], W({1}));
  EXPECT_EQ(words[1], W({0, 1}));
  EXPECT_EQ(words[2], W({0, 0, 1}));
  EXPECT_EQ(words[3], W({0, 0, 0, 1}));
}

TEST(Operations, CountWordsDistinct) {
  // Ambiguous NFA: two runs for "a"; the distinct count must still be 1.
  Nfa nfa(1);
  StateId s0 = nfa.AddState();
  StateId s1 = nfa.AddState();
  StateId s2 = nfa.AddState();
  nfa.SetInitial(s0);
  nfa.SetAccepting(s1);
  nfa.SetAccepting(s2);
  nfa.AddTransition(s0, 0, s1);
  nfa.AddTransition(s0, 0, s2);
  EXPECT_EQ(CountWordsOfLength(nfa, 1), 1u);
  EXPECT_EQ(CountWordsOfLength(MakeNfa("(a|b)(a|b)", 2), 2), 4u);
  EXPECT_EQ(CountWordsUpTo(MakeNfa("(a|b)*", 2), 3), 1u + 2 + 4 + 8);
}

TEST(Operations, DeterminizeMinimize) {
  Nfa nfa = MakeNfa("(a|b)*abb", 2);
  Dfa dfa = Determinize(nfa);
  EXPECT_TRUE(dfa.Accepts(W({0, 1, 1})));
  EXPECT_FALSE(dfa.Accepts(W({0, 1})));
  Dfa min = Minimize(dfa);
  // The canonical DFA for (a|b)*abb has 4 states.
  EXPECT_EQ(min.num_states(), 4);
  EXPECT_TRUE(AreEquivalent(min.ToNfa(), nfa));
}

TEST(Operations, TrimRemovesDeadStates) {
  Nfa nfa(2);
  StateId s0 = nfa.AddState();
  StateId s1 = nfa.AddState();
  StateId dead = nfa.AddState();
  nfa.SetInitial(s0);
  nfa.SetAccepting(s1);
  nfa.AddTransition(s0, 0, s1);
  nfa.AddTransition(s0, 1, dead);
  Nfa trimmed = Trim(nfa);
  EXPECT_EQ(trimmed.num_states(), 2);
  EXPECT_TRUE(trimmed.Accepts(W({0})));
}

TEST(Operations, ReverseLanguage) {
  Nfa nfa = MakeNfa("ab", 2);
  Nfa rev = Reverse(nfa);
  EXPECT_TRUE(rev.Accepts(W({1, 0})));
  EXPECT_FALSE(rev.Accepts(W({0, 1})));
}

TEST(Operations, FromWordsTrie) {
  Nfa nfa = FromWords(2, {W({}), W({0, 1}), W({0, 0})});
  EXPECT_TRUE(nfa.Accepts(W({})));
  EXPECT_TRUE(nfa.Accepts(W({0, 1})));
  EXPECT_TRUE(nfa.Accepts(W({0, 0})));
  EXPECT_FALSE(nfa.Accepts(W({0})));
  EXPECT_FALSE(nfa.Accepts(W({1})));
}

// Property sweep: random regexes obey De Morgan's law and determinization
// preserves the language.
class RandomRegexTest : public ::testing::TestWithParam<int> {};

RegexPtr RandomRegex(Rng* rng, int depth) {
  if (depth == 0 || rng->Chance(0.3)) {
    switch (rng->Below(3)) {
      case 0:
        return Regex::Letter(static_cast<Symbol>(rng->Below(2)));
      case 1:
        return Regex::Epsilon();
      default:
        return Regex::Any();
    }
  }
  switch (rng->Below(4)) {
    case 0:
      return Regex::Union(RandomRegex(rng, depth - 1),
                          RandomRegex(rng, depth - 1));
    case 1:
      return Regex::Concat(RandomRegex(rng, depth - 1),
                           RandomRegex(rng, depth - 1));
    case 2:
      return Regex::Star(RandomRegex(rng, depth - 1));
    default:
      return Regex::Optional(RandomRegex(rng, depth - 1));
  }
}

TEST_P(RandomRegexTest, DeMorgan) {
  Rng rng(GetParam());
  Nfa a = RandomRegex(&rng, 3)->ToNfa(2);
  Nfa b = RandomRegex(&rng, 3)->ToNfa(2);
  Nfa lhs = ComplementNfa(UnionNfa(a, b));
  Nfa rhs = IntersectNfa(ComplementNfa(a), ComplementNfa(b));
  EXPECT_TRUE(AreEquivalent(lhs, rhs));
}

TEST_P(RandomRegexTest, DeterminizePreservesLanguage) {
  Rng rng(GetParam() + 1000);
  Nfa nfa = RandomRegex(&rng, 3)->ToNfa(2);
  Dfa dfa = Determinize(nfa);
  Dfa min = Minimize(dfa);
  for (const Word& w : EnumerateWords(UniverseNfa(2), 64, 5)) {
    EXPECT_EQ(nfa.Accepts(w), dfa.Accepts(w));
    EXPECT_EQ(nfa.Accepts(w), min.Accepts(w));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRegexTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace ecrpq
