// Degenerate and adversarial inputs across the stack: empty graphs,
// self-loops, parallel edges, all-constant queries, empty languages,
// ε answers. Queries run through the public Database facade; the one
// builder-constructed query exercises the engine layer directly.

#include <gtest/gtest.h>

#include "api/api.h"
#include "graph/generators.h"
#include "query/builder.h"
#include "relations/builtin.h"

namespace ecrpq {
namespace {

TEST(EdgeCases, GraphWithoutNodes) {
  auto alphabet = Alphabet::FromLabels({"a"});
  Database db{GraphDb(alphabet)};
  auto result = db.Execute("Ans() <- (x, p, y), a*(p)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().AsBool());  // no nodes, no assignments
}

TEST(EdgeCases, GraphWithoutEdges) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g(alphabet);
  g.AddNode("lonely");
  Database db(std::move(g));
  auto result = db.Execute("Ans(x) <- (x, p, x), a*(p)");
  ASSERT_TRUE(result.ok());
  // The empty path satisfies a*.
  EXPECT_EQ(result.value().tuples().size(), 1u);
}

TEST(EdgeCases, SelfLoopSingleNode) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g(alphabet);
  NodeId v = g.AddNode("v");
  g.AddEdge(v, Symbol{0}, v);
  g.AddEdge(v, Symbol{1}, v);
  // Squared strings on a free monoid: everything is reachable; check a
  // couple of invariants rather than sizes.
  DatabaseOptions options;
  options.eval.max_configs = 200000;
  Database db(std::move(g), options);
  auto result =
      db.Execute("Ans(p, q) <- (x, p, y), (x, q, y), eq(p, q), a.*(p)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().tuples().size(), 1u);
  const PathAnswerSet& answers = result.value().path_answers(0);
  EXPECT_TRUE(answers.IsInfinite());
  for (const PathTuple& tuple : answers.Enumerate(5, 4)) {
    EXPECT_EQ(tuple[0].Label(), tuple[1].Label());
    EXPECT_GE(tuple[0].length(), 1);
  }
}

TEST(EdgeCases, ParallelEdgesDistinctPaths) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g(alphabet);
  NodeId u = g.AddNode("u");
  NodeId v = g.AddNode("v");
  g.AddEdge(u, Symbol{0}, v);
  g.AddEdge(u, Symbol{0}, v);  // parallel duplicate
  Database db(std::move(g));
  auto result = db.Execute("Ans(p) <- (x, p, y), a(p)");
  ASSERT_TRUE(result.ok());
  // Parallel edges with identical label and endpoints are one path VALUE
  // in the representation (same nodes, same label).
  EXPECT_EQ(result.value().path_answers(0).CountTuples(3), 1u);
}

TEST(EdgeCases, AllConstantQuery) {
  auto alphabet = Alphabet::FromLabels({"a"});
  Database db(WordGraph(alphabet, {0, 0}));
  auto yes = db.Execute(R"(Ans() <- ("w0", p, "w2"), aa(p))");
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(yes.value().AsBool());
  auto no = db.Execute(R"(Ans() <- ("w2", p, "w0"), a*(p))");
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(no.value().AsBool());
}

TEST(EdgeCases, EmptyLanguageAtom) {
  auto alphabet = Alphabet::FromLabels({"a"});
  Database db(CycleGraph(alphabet, 3, "a"));
  auto result = db.Execute("Ans(x) <- (x, p, y), \\0(p)");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().tuples().empty());
}

TEST(EdgeCases, EpsilonOnlyLanguage) {
  auto alphabet = Alphabet::FromLabels({"a"});
  Database db(WordGraph(alphabet, {0}));
  auto result = db.Execute("Ans(x, y) <- (x, p, y), \\e(p)");
  ASSERT_TRUE(result.ok());
  // Only empty paths: x == y for both nodes.
  EXPECT_EQ(result.value().tuples().size(), 2u);
  for (const auto& tuple : result.value().tuples()) {
    EXPECT_EQ(tuple[0], tuple[1]);
  }
}

TEST(EdgeCases, SameVariableBothEndpoints) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g(alphabet);
  NodeId u = g.AddNode("u");
  NodeId v = g.AddNode("v");
  g.AddEdge(u, Symbol{0}, v);
  g.AddEdge(v, Symbol{1}, u);
  Database db(std::move(g));
  // Loops (x, p, x) with label ab: only from u.
  auto result = db.Execute("Ans(x) <- (x, p, x), ab(p)");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().tuples().size(), 1u);
  EXPECT_EQ(result.value().tuples()[0][0], u);
}

TEST(EdgeCases, TernaryRelationAtom) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g(alphabet);
  NodeId u = g.AddNode("u");
  g.AddEdge(u, Symbol{0}, u);
  g.AddEdge(u, Symbol{1}, u);
  Database db(std::move(g));
  // 3-ary all-equal across three loops.
  db.RegisterRelation(
      "eq3", std::make_shared<RegularRelation>(AllEqualRelation(2, 3)));
  auto result = db.Execute(
      "Ans() <- (x, p, y), (x, q, y), (x, r, y), eq3(p, q, r), ab(p)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().AsBool());
}

TEST(EdgeCases, RelationAlphabetMismatchRejected) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g = CycleGraph(alphabet, 2, "a");
  // A relation built for a 3-letter alphabet against a 1-letter graph.
  // Built through QueryBuilder, so this exercises the engine layer.
  auto query = QueryBuilder()
                   .Atom("x", "p", "y")
                   .Atom("x", "q", "y")
                   .Relation(std::make_shared<RegularRelation>(
                                 EqualityRelation(3)),
                             {"p", "q"})
                   .Head({})
                   .Build();
  ASSERT_TRUE(query.ok());
  Evaluator evaluator(&g);
  auto result = evaluator.Evaluate(query.value());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(EdgeCases, PathAnswerSetOnIsolatedAnswer) {
  // Head binding that has exactly the empty path as its only answer.
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g(alphabet);
  g.AddNode("solo");
  Database db(std::move(g));
  auto result = db.Execute("Ans(x, p) <- (x, p, x), a*(p)");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().tuples().size(), 1u);
  const PathAnswerSet& answers = result.value().path_answers(0);
  EXPECT_FALSE(answers.IsEmpty());
  EXPECT_FALSE(answers.IsInfinite());
  auto tuples = answers.Enumerate(5, 5);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0][0].length(), 0);
  EXPECT_TRUE(answers.Contains({Path(0)}));
}

}  // namespace
}  // namespace ecrpq
