// Degenerate and adversarial inputs across the stack: empty graphs,
// self-loops, parallel edges, all-constant queries, empty languages,
// ε answers.

#include <gtest/gtest.h>

#include "core/eval_product.h"
#include "core/evaluator.h"
#include "graph/generators.h"
#include "query/builder.h"
#include "query/parser.h"
#include "relations/builtin.h"

namespace ecrpq {
namespace {

TEST(EdgeCases, GraphWithoutNodes) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g(alphabet);
  auto query = ParseQuery("Ans() <- (x, p, y), a*(p)", g.alphabet());
  ASSERT_TRUE(query.ok());
  Evaluator evaluator(&g);
  auto result = evaluator.Evaluate(query.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().AsBool());  // no nodes, no assignments
}

TEST(EdgeCases, GraphWithoutEdges) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g(alphabet);
  g.AddNode("lonely");
  auto star = ParseQuery("Ans(x) <- (x, p, x), a*(p)", g.alphabet());
  ASSERT_TRUE(star.ok());
  Evaluator evaluator(&g);
  auto result = evaluator.Evaluate(star.value());
  ASSERT_TRUE(result.ok());
  // The empty path satisfies a*.
  EXPECT_EQ(result.value().tuples().size(), 1u);
}

TEST(EdgeCases, SelfLoopSingleNode) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g(alphabet);
  NodeId v = g.AddNode("v");
  g.AddEdge(v, Symbol{0}, v);
  g.AddEdge(v, Symbol{1}, v);
  // Squared strings on a free monoid: everything is reachable; check a
  // couple of invariants rather than sizes.
  auto query = ParseQuery(
      "Ans(p, q) <- (x, p, y), (x, q, y), eq(p, q), a.*(p)", g.alphabet());
  ASSERT_TRUE(query.ok());
  EvalOptions options;
  options.max_configs = 200000;
  Evaluator evaluator(&g, options);
  auto result = evaluator.Evaluate(query.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().tuples().size(), 1u);
  const PathAnswerSet& answers = result.value().path_answers(0);
  EXPECT_TRUE(answers.IsInfinite());
  for (const PathTuple& tuple : answers.Enumerate(5, 4)) {
    EXPECT_EQ(tuple[0].Label(), tuple[1].Label());
    EXPECT_GE(tuple[0].length(), 1);
  }
}

TEST(EdgeCases, ParallelEdgesDistinctPaths) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g(alphabet);
  NodeId u = g.AddNode("u");
  NodeId v = g.AddNode("v");
  g.AddEdge(u, Symbol{0}, v);
  g.AddEdge(u, Symbol{0}, v);  // parallel duplicate
  auto query = ParseQuery("Ans(p) <- (x, p, y), a(p)", g.alphabet());
  ASSERT_TRUE(query.ok());
  Evaluator evaluator(&g);
  auto result = evaluator.Evaluate(query.value());
  ASSERT_TRUE(result.ok());
  // Parallel edges with identical label and endpoints are one path VALUE
  // in the representation (same nodes, same label).
  EXPECT_EQ(result.value().path_answers(0).CountTuples(3), 1u);
}

TEST(EdgeCases, AllConstantQuery) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g = WordGraph(alphabet, {0, 0});
  auto yes = ParseQuery(R"(Ans() <- ("w0", p, "w2"), aa(p))", g.alphabet());
  ASSERT_TRUE(yes.ok());
  Evaluator evaluator(&g);
  EXPECT_TRUE(evaluator.Evaluate(yes.value()).value().AsBool());
  auto no = ParseQuery(R"(Ans() <- ("w2", p, "w0"), a*(p))", g.alphabet());
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(evaluator.Evaluate(no.value()).value().AsBool());
}

TEST(EdgeCases, EmptyLanguageAtom) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g = CycleGraph(alphabet, 3, "a");
  auto query = ParseQuery("Ans(x) <- (x, p, y), \\0(p)", g.alphabet());
  ASSERT_TRUE(query.ok());
  Evaluator evaluator(&g);
  auto result = evaluator.Evaluate(query.value());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().tuples().empty());
}

TEST(EdgeCases, EpsilonOnlyLanguage) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g = WordGraph(alphabet, {0});
  auto query = ParseQuery("Ans(x, y) <- (x, p, y), \\e(p)", g.alphabet());
  ASSERT_TRUE(query.ok());
  Evaluator evaluator(&g);
  auto result = evaluator.Evaluate(query.value());
  ASSERT_TRUE(result.ok());
  // Only empty paths: x == y for both nodes.
  EXPECT_EQ(result.value().tuples().size(), 2u);
  for (const auto& tuple : result.value().tuples()) {
    EXPECT_EQ(tuple[0], tuple[1]);
  }
}

TEST(EdgeCases, SameVariableBothEndpoints) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g(alphabet);
  NodeId u = g.AddNode("u");
  NodeId v = g.AddNode("v");
  g.AddEdge(u, Symbol{0}, v);
  g.AddEdge(v, Symbol{1}, u);
  // Loops (x, p, x) with label ab: only from u.
  auto query = ParseQuery("Ans(x) <- (x, p, x), ab(p)", g.alphabet());
  ASSERT_TRUE(query.ok());
  Evaluator evaluator(&g);
  auto result = evaluator.Evaluate(query.value());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().tuples().size(), 1u);
  EXPECT_EQ(result.value().tuples()[0][0], u);
}

TEST(EdgeCases, TernaryRelationAtom) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g(alphabet);
  NodeId u = g.AddNode("u");
  g.AddEdge(u, Symbol{0}, u);
  g.AddEdge(u, Symbol{1}, u);
  // 3-ary all-equal across three loops.
  RelationRegistry registry = RelationRegistry::Default();
  registry.Register("eq3", std::make_shared<RegularRelation>(
                               AllEqualRelation(2, 3)));
  auto query = ParseQuery(
      "Ans() <- (x, p, y), (x, q, y), (x, r, y), eq3(p, q, r), ab(p)",
      g.alphabet(), registry);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  Evaluator evaluator(&g);
  auto result = evaluator.Evaluate(query.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().AsBool());
}

TEST(EdgeCases, RelationAlphabetMismatchRejected) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g = CycleGraph(alphabet, 2, "a");
  // A relation built for a 3-letter alphabet against a 1-letter graph.
  auto query = QueryBuilder()
                   .Atom("x", "p", "y")
                   .Atom("x", "q", "y")
                   .Relation(std::make_shared<RegularRelation>(
                                 EqualityRelation(3)),
                             {"p", "q"})
                   .Head({})
                   .Build();
  ASSERT_TRUE(query.ok());
  Evaluator evaluator(&g);
  auto result = evaluator.Evaluate(query.value());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(EdgeCases, PathAnswerSetOnIsolatedAnswer) {
  // Head binding that has exactly the empty path as its only answer.
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g(alphabet);
  g.AddNode("solo");
  auto query = ParseQuery("Ans(x, p) <- (x, p, x), a*(p)", g.alphabet());
  ASSERT_TRUE(query.ok());
  Evaluator evaluator(&g);
  auto result = evaluator.Evaluate(query.value());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().tuples().size(), 1u);
  const PathAnswerSet& answers = result.value().path_answers(0);
  EXPECT_FALSE(answers.IsEmpty());
  EXPECT_FALSE(answers.IsInfinite());
  auto tuples = answers.Enumerate(5, 5);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0][0].length(), 0);
  EXPECT_TRUE(answers.Contains({Path(0)}));
}

}  // namespace
}  // namespace ecrpq
