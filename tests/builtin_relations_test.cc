// Built-in regular relations vs their mathematical definitions (Sections 1,
// 3 and 4 of the paper), including the edit-distance property sweep.

#include <gtest/gtest.h>

#include "automata/operations.h"
#include "relations/builtin.h"
#include "util/random.h"

namespace ecrpq {
namespace {

Word W(std::initializer_list<int> symbols) {
  Word w;
  for (int s : symbols) w.push_back(s);
  return w;
}

// All words over `base` letters with length <= max_len.
std::vector<Word> AllWords(int base, int max_len) {
  std::vector<Word> out = {{}};
  std::vector<Word> frontier = {{}};
  for (int l = 0; l < max_len; ++l) {
    std::vector<Word> next;
    for (const Word& w : frontier) {
      for (Symbol a = 0; a < base; ++a) {
        Word extended = w;
        extended.push_back(a);
        out.push_back(extended);
        next.push_back(std::move(extended));
      }
    }
    frontier = std::move(next);
  }
  return out;
}

TEST(Builtin, EqualityMatchesDefinition) {
  RegularRelation eq = EqualityRelation(2);
  for (const Word& x : AllWords(2, 3)) {
    for (const Word& y : AllWords(2, 3)) {
      EXPECT_EQ(eq.Contains({x, y}), x == y);
    }
  }
}

TEST(Builtin, EqualLengthMatchesDefinition) {
  RegularRelation el = EqualLengthRelation(2);
  for (const Word& x : AllWords(2, 3)) {
    for (const Word& y : AllWords(2, 3)) {
      EXPECT_EQ(el.Contains({x, y}), x.size() == y.size());
    }
  }
}

TEST(Builtin, ShorterMatchesDefinition) {
  RegularRelation lt = ShorterRelation(2);
  RegularRelation le = ShorterOrEqualRelation(2);
  for (const Word& x : AllWords(2, 3)) {
    for (const Word& y : AllWords(2, 3)) {
      EXPECT_EQ(lt.Contains({x, y}), x.size() < y.size());
      EXPECT_EQ(le.Contains({x, y}), x.size() <= y.size());
    }
  }
}

TEST(Builtin, PrefixMatchesDefinition) {
  RegularRelation prefix = PrefixRelation(2);
  RegularRelation strict = StrictPrefixRelation(2);
  for (const Word& x : AllWords(2, 3)) {
    for (const Word& y : AllWords(2, 3)) {
      bool is_prefix = x.size() <= y.size() &&
                       std::equal(x.begin(), x.end(), y.begin());
      EXPECT_EQ(prefix.Contains({x, y}), is_prefix);
      EXPECT_EQ(strict.Contains({x, y}), is_prefix && x != y);
    }
  }
}

TEST(Builtin, MorphismMatchesDefinition) {
  // h(a) = b, h(b) = b.
  RegularRelation h = MorphismRelation(2, {1, 1});
  EXPECT_TRUE(h.Contains({W({0, 1, 0}), W({1, 1, 1})}));
  EXPECT_FALSE(h.Contains({W({0}), W({0})}));
  EXPECT_FALSE(h.Contains({W({0}), W({1, 1})}));
  EXPECT_TRUE(h.Contains({W({}), W({})}));
}

TEST(Builtin, RhoIsomorphismSymmetrizes) {
  // Declared: 0 ≺ 1. ρ-iso allows (0,1) and (1,0) positions, plus nothing
  // else (a letter is not its own subproperty unless declared).
  RegularRelation rho = RhoIsomorphismRelation(3, {{0, 1}});
  EXPECT_TRUE(rho.Contains({W({0, 1}), W({1, 0})}));
  EXPECT_FALSE(rho.Contains({W({0}), W({0})}));
  EXPECT_FALSE(rho.Contains({W({0}), W({2})}));
  EXPECT_FALSE(rho.Contains({W({0, 0}), W({1})}));  // ρ-iso implies el
}

TEST(Builtin, AllEqualAndAllEqualLengthTernary) {
  RegularRelation eq3 = AllEqualRelation(2, 3);
  EXPECT_TRUE(eq3.Contains({W({0, 1}), W({0, 1}), W({0, 1})}));
  EXPECT_FALSE(eq3.Contains({W({0, 1}), W({0, 1}), W({1, 1})}));
  RegularRelation el3 = AllEqualLengthRelation(2, 3);
  EXPECT_TRUE(el3.Contains({W({0, 1}), W({1, 0}), W({1, 1})}));
  EXPECT_FALSE(el3.Contains({W({0}), W({1, 0}), W({1})}));
}

TEST(Builtin, FiniteRelationExactTuples) {
  RegularRelation rel = FiniteRelation(
      2, 2, {{W({0}), W({1, 1})}, {W({}), W({0})}});
  EXPECT_TRUE(rel.Contains({W({0}), W({1, 1})}));
  EXPECT_TRUE(rel.Contains({W({}), W({0})}));
  EXPECT_FALSE(rel.Contains({W({0}), W({1})}));
  EXPECT_FALSE(rel.IsInfinite());
}

TEST(Builtin, UniversalRelation) {
  RegularRelation all = UniversalRelation(2, 2);
  EXPECT_TRUE(all.Contains({W({}), W({})}));
  EXPECT_TRUE(all.Contains({W({0, 0, 0}), W({1})}));
}

TEST(Builtin, HammingDistanceMatchesDefinition) {
  for (int k = 0; k <= 2; ++k) {
    RegularRelation rel = HammingDistanceAtMostRelation(2, k);
    for (const Word& x : AllWords(2, 3)) {
      for (const Word& y : AllWords(2, 3)) {
        int mismatches = -1;
        if (x.size() == y.size()) {
          mismatches = 0;
          for (size_t i = 0; i < x.size(); ++i) {
            if (x[i] != y[i]) ++mismatches;
          }
        }
        bool expected = mismatches >= 0 && mismatches <= k;
        EXPECT_EQ(rel.Contains({x, y}), expected) << "k=" << k;
      }
    }
  }
}

TEST(Builtin, HammingImpliesEditDistance) {
  // Hamming(k) ⊆ Edit(k): substitutions are edits.
  RegularRelation hamming = HammingDistanceAtMostRelation(2, 2);
  RegularRelation edit = EditDistanceAtMostRelation(2, 2);
  for (const auto& m : hamming.EnumerateMembers(60, 3)) {
    EXPECT_TRUE(edit.Contains(m));
  }
}

TEST(EditDistance, DpReference) {
  EXPECT_EQ(EditDistance(W({}), W({})), 0);
  EXPECT_EQ(EditDistance(W({0}), W({})), 1);
  EXPECT_EQ(EditDistance(W({0, 1, 0}), W({0, 0})), 1);
  EXPECT_EQ(EditDistance(W({0, 1}), W({1, 0})), 2);
  EXPECT_EQ(EditDistance(W({0, 1, 1}), W({0, 1})), 1);
}

TEST(EditDistance, OneEditExamples) {
  RegularRelation d1 = OneEditOrEqualRelation(2);
  EXPECT_TRUE(d1.Contains({W({}), W({})}));
  EXPECT_TRUE(d1.Contains({W({0}), W({1})}));          // substitution
  EXPECT_TRUE(d1.Contains({W({0, 1}), W({0})}));       // deletion at end
  EXPECT_TRUE(d1.Contains({W({0, 1}), W({1})}));       // deletion at front
  EXPECT_TRUE(d1.Contains({W({0}), W({1, 0})}));       // insertion at front
  EXPECT_TRUE(d1.Contains({W({0, 0}), W({0, 1, 0})})); // insertion inside
  EXPECT_FALSE(d1.Contains({W({0, 0}), W({1, 1})}));
  EXPECT_FALSE(d1.Contains({W({}), W({0, 0})}));
}

// Property sweep: D≤k agrees with the DP edit distance on all word pairs.
class EditDistanceSweep : public ::testing::TestWithParam<int> {};

TEST_P(EditDistanceSweep, MatchesDp) {
  const int k = GetParam();
  RegularRelation rel = EditDistanceAtMostRelation(2, k);
  for (const Word& x : AllWords(2, 3)) {
    for (const Word& y : AllWords(2, 3)) {
      EXPECT_EQ(rel.Contains({x, y}), EditDistance(x, y) <= k)
          << "k=" << k << " |x|=" << x.size() << " |y|=" << y.size();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(K, EditDistanceSweep, ::testing::Values(0, 1, 2, 3));

// Random long-word checks (lengths beyond the exhaustive sweep).
class EditDistanceRandom : public ::testing::TestWithParam<int> {};

TEST_P(EditDistanceRandom, MatchesDpOnMutations) {
  Rng rng(GetParam());
  auto alphabet = Alphabet::FromLabels({"a", "c", "g", "t"});
  RegularRelation d2 = EditDistanceAtMostRelation(4, 2);
  for (int round = 0; round < 5; ++round) {
    Word x;
    for (int i = 0; i < 8; ++i) {
      x.push_back(static_cast<Symbol>(rng.Below(4)));
    }
    Word y = x;
    int edits = static_cast<int>(rng.Below(4));
    for (int e = 0; e < edits; ++e) {
      if (y.empty() || rng.Chance(0.3)) {
        y.insert(y.begin() + rng.Below(y.size() + 1),
                 static_cast<Symbol>(rng.Below(4)));
      } else if (rng.Chance(0.5)) {
        y[rng.Below(y.size())] = static_cast<Symbol>(rng.Below(4));
      } else {
        y.erase(y.begin() + rng.Below(y.size()));
      }
    }
    EXPECT_EQ(d2.Contains({x, y}), EditDistance(x, y) <= 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditDistanceRandom, ::testing::Range(0, 8));

}  // namespace
}  // namespace ecrpq
