// CRPQ fast path: per-atom reachability + join (Theorem 6.5).

#include <gtest/gtest.h>

#include "automata/regex.h"
#include "core/eval_crpq.h"
#include "core/eval_product.h"
#include "graph/generators.h"
#include "query/parser.h"

namespace ecrpq {
namespace {

TEST(CrpqFastPath, Applicability) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  auto crpq = ParseQuery("Ans(x) <- (x, p, y), a*(p)", *alphabet);
  ASSERT_TRUE(crpq.ok());
  EXPECT_TRUE(CrpqFastPathApplies(crpq.value()));
  auto ecrpq = ParseQuery(
      "Ans() <- (x, p, y), (x, q, y), el(p, q)", *alphabet);
  ASSERT_TRUE(ecrpq.ok());
  EXPECT_FALSE(CrpqFastPathApplies(ecrpq.value()));
  auto repeated = ParseQuery("Ans() <- (x, p, y), (y, p, z)", *alphabet);
  ASSERT_TRUE(repeated.ok());
  EXPECT_FALSE(CrpqFastPathApplies(repeated.value()));
  auto linear = ParseQuery("Ans() <- (x, p, y), len(p) >= 1", *alphabet);
  ASSERT_TRUE(linear.ok());
  EXPECT_FALSE(CrpqFastPathApplies(linear.value()));
}

TEST(CrpqFastPath, ReachabilityPairs) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = WordGraph(alphabet, {0, 0, 1});  // aab
  RegularRelation lang = RegularRelation::FromLanguage(
      2, ParseRegexStrict("a+", *alphabet).value()->ToNfa(2));
  auto pairs = ReachabilityPairs(g, {&lang});
  // a+ paths: w0->w1, w0->w2, w1->w2.
  EXPECT_EQ(pairs.size(), 3u);
}

// Cross-check the fast path against the general product engine.
class CrpqEngineAgreement : public ::testing::TestWithParam<int> {};

TEST_P(CrpqEngineAgreement, MatchesProductEngine) {
  Rng rng(GetParam());
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = RandomGraph(alphabet, 6, 14, &rng);
  const char* queries[] = {
      "Ans(x, y) <- (x, p, y), a*b(p)",
      "Ans(x, z) <- (x, p, y), (y, q, z), a+(p), b+(q)",
      "Ans(y) <- (x, p, y), (y, q, z), (y, r, w), .*(p), a*(q), b*(r)",
      "Ans() <- (x, p, y), ab(p)",
      "Ans(x) <- (x, p, x), a+(p)",
  };
  for (const char* text : queries) {
    SCOPED_TRACE(text);
    auto query = ParseQuery(text, g.alphabet());
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    EvalOptions options;
    auto fast = EvaluateCrpq(g, query.value(), options);
    auto slow = EvaluateProduct(g, query.value(), options);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    ASSERT_TRUE(slow.ok()) << slow.status().ToString();
    EXPECT_EQ(fast.value().tuples(), slow.value().tuples());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrpqEngineAgreement, ::testing::Range(0, 10));

TEST(CrpqFastPath, SemijoinOptionAgrees) {
  Rng rng(99);
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = RandomGraph(alphabet, 8, 20, &rng);
  auto query = ParseQuery(
      "Ans(x, w) <- (x, p, y), (y, q, z), (z, r, w), a*(p), b*(q), a*(r)",
      g.alphabet());
  ASSERT_TRUE(query.ok());
  EvalOptions with;
  with.use_semijoin_reduction = true;
  EvalOptions without;
  without.use_semijoin_reduction = false;
  auto r1 = EvaluateCrpq(g, query.value(), with);
  auto r2 = EvaluateCrpq(g, query.value(), without);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().tuples(), r2.value().tuples());
}

TEST(CrpqFastPath, ConstantEndpoints) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = WordGraph(alphabet, {0, 1, 0});
  auto query = ParseQuery(R"(Ans(y) <- ("w0", p, y), a.*(p))",
                          g.alphabet());
  ASSERT_TRUE(query.ok());
  auto result = EvaluateCrpq(g, query.value(), EvalOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Paths from w0 starting with a: a (w1), ab (w2), aba (w3).
  EXPECT_EQ(result.value().tuples().size(), 3u);
}

TEST(CrpqFastPath, RejectsOutsideFragment) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g = CycleGraph(alphabet, 2, "a");
  auto query = ParseQuery("Ans() <- (x, p, y), (x, q, y), el(p, q)",
                          g.alphabet());
  ASSERT_TRUE(query.ok());
  auto result = EvaluateCrpq(g, query.value(), EvalOptions{});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CrpqFastPath, AutoDispatchPicksIt) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g = CycleGraph(alphabet, 3, "a");
  auto query = ParseQuery("Ans(x) <- (x, p, y), a+(p)", g.alphabet());
  ASSERT_TRUE(query.ok());
  Evaluator evaluator(&g);
  auto result = evaluator.Evaluate(query.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats().engine, "crpq");
  EXPECT_EQ(result.value().tuples().size(), 3u);
}

}  // namespace
}  // namespace ecrpq
