// Direction equivalence: the search direction of a component leaf —
// forward from start anchors, backward over the reversed tape from end
// anchors, or bidirectional meet-in-the-middle — is an execution detail
// and must be invisible in results: identical binding sets and identical
// path-answer witnesses for every direction, serial and morsel-parallel.
// Also unit-checks the compiled reversed tape itself (Reverse(Nfa)
// composed with the reversed transition maps and in-letter masks accepts
// exactly the reversed language) and the planner's direction choices as
// surfaced by Explain and operator stats.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "automata/operations.h"
#include "core/eval_product.h"
#include "core/evaluator.h"
#include "core/planner.h"
#include "graph/graph.h"
#include "query/parser.h"
#include "util/random.h"

namespace ecrpq {
namespace {

// A random graph whose nodes are all named (so random queries can anchor
// constants on them).
GraphDb NamedRandomGraph(int nodes, int edges, uint64_t seed) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  Rng rng(seed);
  GraphDb g(alphabet);
  for (int i = 0; i < nodes; ++i) g.AddNode("n" + std::to_string(i));
  for (int e = 0; e < edges; ++e) {
    g.AddEdge(static_cast<NodeId>(rng.Below(nodes)),
              static_cast<Symbol>(rng.Below(2)),
              static_cast<NodeId>(rng.Below(nodes)));
  }
  return g;
}

// Random queries across the shapes the direction machinery dispatches:
// single-atom ReachabilityScan leaves and eq-synchronized ProductExpand
// pairs, with endpoints drawn from shared variables or node constants
// (constants are what anchor backward / bidirectional execution).
std::string RandomDirectionQuery(Rng* rng, int num_nodes, bool* has_paths) {
  static const char* kLanguages[] = {"a*", "b*", "a+", "ab", "(ab)*",
                                     "(a|b)*", "a(a|b)*", "(a|b)(a|b)*"};
  auto lang = [&]() { return kLanguages[rng->Below(8)]; };
  std::set<std::string> used_vars;
  int next_var = 0;
  auto pick_term = [&]() -> std::string {
    // 1 in 3: a node constant; otherwise a (possibly reused) variable.
    if (rng->Below(3) == 0) {
      return "\"n" + std::to_string(rng->Below(num_nodes)) + "\"";
    }
    std::string v;
    if (!used_vars.empty() && rng->Below(3) == 0) {
      auto it = used_vars.begin();
      std::advance(it, rng->Below(used_vars.size()));
      v = *it;
    } else {
      v = "x" + std::to_string(next_var++ % 4);
    }
    used_vars.insert(v);
    return v;
  };

  std::string body;
  int next_path = 0;
  std::vector<std::string> paths;
  const int num_groups = 1 + static_cast<int>(rng->Below(2));
  for (int c = 0; c < num_groups; ++c) {
    if (c > 0) body += ", ";
    if (rng->Below(3) == 0) {
      // eq-synchronized pair: one ProductExpand component.
      std::string p = "p" + std::to_string(next_path++);
      std::string q = "p" + std::to_string(next_path++);
      body += "(" + pick_term() + ", " + p + ", " + pick_term() + "), ";
      body += "(" + pick_term() + ", " + q + ", " + pick_term() + "), ";
      body += "eq(" + p + ", " + q + ")";
    } else {
      std::string p = "p" + std::to_string(next_path++);
      body += "(" + pick_term() + ", " + p + ", " + pick_term() + "), ";
      body += std::string(lang()) + "(" + p + ")";
      paths.push_back(p);
    }
  }
  std::vector<std::string> vars(used_vars.begin(), used_vars.end());
  std::string head;
  size_t head_arity = std::min<size_t>(vars.size(), 2);
  for (size_t i = 0; i < head_arity; ++i) {
    if (i > 0) head += ", ";
    head += vars[rng->Below(vars.size())];
  }
  // 1 in 4 queries with a head path variable: exercises path-answer
  // construction under every direction.
  *has_paths = false;
  if (!paths.empty() && rng->Below(4) == 0) {
    if (!head.empty()) head += ", ";
    head += paths[rng->Below(paths.size())];
    *has_paths = true;
  }
  return "Ans(" + head + ") <- " + body;
}

Result<QueryResult> RunDirected(const GraphDb& g, const Query& query,
                                SearchDirection direction, int num_threads,
                                bool with_paths) {
  EvalOptions options;
  options.direction = direction;
  options.num_threads = num_threads;
  options.build_path_answers = with_paths;
  Evaluator evaluator(&g, options);
  return evaluator.Evaluate(query);
}

// Witness fingerprint of one answer's path automaton: tuple count up to
// a length bound plus the rendered enumeration prefix.
std::string PathAnswerFingerprint(const GraphDb& g,
                                  const PathAnswerSet& answers) {
  std::string out = "count=" + std::to_string(answers.CountTuples(6));
  for (const PathTuple& tuple : answers.Enumerate(3, 6)) {
    out += ";";
    for (const Path& p : tuple) out += p.ToString(g) + "|";
  }
  return out;
}

// The property the tentpole rests on: for 100 random graph/query pairs,
// every forced direction (and the planner's auto choice) returns the
// same binding set and the same path-answer witnesses as the forward
// serial reference, at 1 and 4 worker lanes.
TEST(BidirectionalSearch, DirectionsAgreeOnRandomQueries) {
  int anchored_seen = 0;
  for (uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(9100 + seed);
    const int num_nodes = 8 + static_cast<int>(rng.Below(6));
    GraphDb g = NamedRandomGraph(num_nodes, 5 * num_nodes / 2, seed);
    bool with_paths = false;
    std::string text = RandomDirectionQuery(&rng, num_nodes, &with_paths);
    auto query = ParseQuery(text, g.alphabet());
    ASSERT_TRUE(query.ok()) << text;
    if (text.find('"') != std::string::npos) ++anchored_seen;

    auto reference = RunDirected(g, query.value(),
                                 SearchDirection::kForward, 1, with_paths);
    ASSERT_TRUE(reference.ok())
        << text << ": " << reference.status().ToString();

    for (SearchDirection dir :
         {SearchDirection::kAuto, SearchDirection::kForward,
          SearchDirection::kBackward, SearchDirection::kBidirectional}) {
      for (int threads : {1, 4}) {
        if (dir == SearchDirection::kForward && threads == 1) continue;
        auto run = RunDirected(g, query.value(), dir, threads, with_paths);
        ASSERT_TRUE(run.ok()) << text << " dir=" << SearchDirectionName(dir)
                              << " t=" << threads << ": "
                              << run.status().ToString();
        EXPECT_EQ(reference.value().tuples(), run.value().tuples())
            << text << " dir=" << SearchDirectionName(dir)
            << " t=" << threads;
        if (with_paths &&
            reference.value().tuples() == run.value().tuples()) {
          for (size_t i = 0; i < reference.value().tuples().size(); ++i) {
            EXPECT_EQ(
                PathAnswerFingerprint(g, reference.value().path_answers(i)),
                PathAnswerFingerprint(g, run.value().path_answers(i)))
                << text << " dir=" << SearchDirectionName(dir)
                << " t=" << threads << " tuple " << i;
          }
        }
      }
    }
  }
  // The generator must actually produce anchored queries, or the
  // backward/bidirectional paths were never stressed.
  EXPECT_GT(anchored_seen, 30);
}

// Reverse(Nfa) composed with the compiled reversed tape accepts exactly
// the reversed language, and the reversed structures are the exact
// transpose of the forward ones.
TEST(BidirectionalSearch, ReversedTapeIsExactTranspose) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  static const char* kRegexes[] = {"a*",        "ab",     "a(a|b)*b",
                                   "(ab|ba)*",  "a+b+",   "(a|b)(a|b)(a|b)",
                                   "b*a b* a b*"};
  GraphDb g(alphabet);
  g.AddNode("n0");
  for (const char* regex : kRegexes) {
    std::string text =
        "Ans() <- (x, p, y), " + std::string(regex) + "(p)";
    auto query = ParseQuery(text, g.alphabet());
    ASSERT_TRUE(query.ok()) << text;
    auto compiled = CompileQuery(query.value(), g.alphabet().size());
    ASSERT_TRUE(compiled.ok()) << text;
    const ResolvedRelation& rr = compiled.value()->relations[0];

    // Structural transpose: rev_transitions[s][sym] ∋ t  ⟺
    // transitions[t][sym] ∋ s; rev_initial = accepting; rev_accepting =
    // initial; rev_tape_masks[s] = OR of in-arc letters.
    const int n = rr.nfa.num_states();
    for (StateId s = 0; s < n; ++s) {
      EXPECT_EQ(rr.rev_accepting[s],
                std::find(rr.initial.begin(), rr.initial.end(), s) !=
                    rr.initial.end())
          << regex;
      EXPECT_EQ(std::find(rr.rev_initial.begin(), rr.rev_initial.end(),
                          s) != rr.rev_initial.end(),
                static_cast<bool>(rr.accepting[s]))
          << regex;
      uint64_t in_mask = 0;
      for (StateId t = 0; t < n; ++t) {
        for (const auto& [sym, dests] : rr.transitions[t]) {
          const bool fwd_edge =
              std::find(dests.begin(), dests.end(), s) != dests.end();
          auto it = rr.rev_transitions[s].find(sym);
          const bool rev_edge =
              it != rr.rev_transitions[s].end() &&
              std::find(it->second.begin(), it->second.end(), t) !=
                  it->second.end();
          EXPECT_EQ(fwd_edge, rev_edge) << regex << " state " << s;
          if (fwd_edge) in_mask |= 1ULL << sym;
        }
      }
      EXPECT_EQ(rr.rev_tape_masks[s][0], in_mask) << regex << " state " << s;
    }

    // Language reversal: Reverse(nfa) accepts exactly the reversed words.
    Nfa rev = Reverse(rr.nfa);
    std::vector<Word> fwd_words = EnumerateWords(rr.nfa, 200, 6);
    std::vector<Word> rev_words = EnumerateWords(rev, 200, 6);
    std::set<Word> reversed;
    for (Word w : fwd_words) {
      std::reverse(w.begin(), w.end());
      reversed.insert(std::move(w));
    }
    EXPECT_EQ(reversed, std::set<Word>(rev_words.begin(), rev_words.end()))
        << regex;
  }
}

// Planner direction choices surface in Explain and in the executed
// operator stats (direction= and meet_checks).
TEST(BidirectionalSearch, PlannerPicksAndReportsDirections) {
  GraphDb g = NamedRandomGraph(24, 72, /*seed=*/7);

  struct Case {
    const char* text;
    const char* direction;
  } cases[] = {
      // Both endpoints constant: meet-in-the-middle.
      {R"(Ans() <- ("n0", p, "n5"), a*(p))", "bidir"},
      // Constant target, free source: one backward search.
      {R"(Ans(x) <- (x, p, "n5"), a*(p))", "bwd"},
      // Constant source, free target: classic forward.
      {R"(Ans(y) <- ("n0", p, y), a*(p))", "fwd"},
  };
  for (const Case& c : cases) {
    auto query = ParseQuery(c.text, g.alphabet());
    ASSERT_TRUE(query.ok()) << c.text;
    auto compiled = CompileQuery(query.value(), g.alphabet().size());
    ASSERT_TRUE(compiled.ok());
    auto index = GraphIndex::Build(g);
    EvalOptions options;
    // Direction selection is the planner's job; pin it on so the test
    // holds in the ECRPQ_NO_PLANNER ctest pass too (where the legacy
    // path intentionally stays forward-only).
    options.use_planner = true;
    PhysicalPlan plan =
        PlanQuery(query.value(), *compiled.value(), index.get(), options);
    std::string described = plan.Describe(query.value());
    EXPECT_NE(described.find(std::string("direction=") + c.direction),
              std::string::npos)
        << c.text << "\n" << described;

    EvalOptions run_options;
    run_options.use_planner = true;
    Evaluator evaluator(&g, run_options);
    auto result = evaluator.Evaluate(query.value());
    ASSERT_TRUE(result.ok()) << c.text;
    bool found_leaf = false;
    for (const OperatorStats& op : result.value().stats().operators) {
      if (op.direction == c.direction) found_leaf = true;
    }
    EXPECT_TRUE(found_leaf)
        << c.text << ": no operator ran direction=" << c.direction;
  }

  // The bidirectional leaf reports its meet probes.
  auto query = ParseQuery(R"(Ans() <- ("n0", p, "n5"), (a|b)*(p))",
                          g.alphabet());
  ASSERT_TRUE(query.ok());
  EvalOptions meet_options;
  meet_options.use_planner = true;
  Evaluator evaluator(&g, meet_options);
  auto result = evaluator.Evaluate(query.value());
  ASSERT_TRUE(result.ok());
  uint64_t meet_checks = 0;
  for (const OperatorStats& op : result.value().stats().operators) {
    meet_checks += op.meet_checks;
  }
  EXPECT_GT(meet_checks, 0u);
}

// The in-degree-descending permutation used for backward seeding.
TEST(BidirectionalSearch, NodesByInDegreeOrdersBackwardSeeds) {
  GraphDb g = NamedRandomGraph(32, 96, /*seed=*/11);
  auto index = GraphIndex::Build(g);
  const std::vector<NodeId>& order = index->NodesByInDegree();
  ASSERT_EQ(order.size(), static_cast<size_t>(g.num_nodes()));
  std::set<NodeId> distinct(order.begin(), order.end());
  EXPECT_EQ(distinct.size(), order.size());
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(index->in_degree(order[i - 1]), index->in_degree(order[i]));
  }
}

}  // namespace
}  // namespace ecrpq
