// The serving subsystem end to end, over real sockets on a loopback
// ephemeral port: handshake enforcement, malformed-frame handling (fatal
// unframeable streams vs survivable bad payloads), prepared statements
// with paged cursors, snapshot-keyed result caching with MutateGraph
// invalidation, admission-control load shedding, out-of-band cancel and
// per-request deadlines cancelling mid-search, disconnect-triggered
// cancellation, and concurrent sessions racing a writer. Every test runs
// a Server in-process; the suite doubles as the TSan workload for the
// whole src/server/ layer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/api.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/result_cache.h"
#include "server/server.h"
#include "server/server_stats.h"
#include "server/session.h"

namespace ecrpq {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

GraphDb Chain(int n) {
  GraphDb g;
  NodeId prev = g.AddNode("v0");
  for (int i = 1; i < n; ++i) {
    NodeId next = g.AddNode("v" + std::to_string(i));
    g.AddEdge(prev, "a", next);
    prev = next;
  }
  return g;
}

// All ordered pairs on the chain: n*(n-1)/2 rows.
constexpr char kPairsQuery[] = "Ans(x, y) <- (x, p, y), 'a'+(p)";

// Zero answers behind minutes of counting-engine search on a 2000-chain;
// cancellable within milliseconds. The slow query of every test that
// needs an execute to still be running when something else happens.
constexpr char kBurnQuery[] = "Ans() <- (x, p, y), len(p) >= 2100";

struct TestServer {
  explicit TestServer(int chain, ServingOptions options = {})
      : db(Chain(chain)) {
    options.port = 0;
    server = std::make_unique<Server>(&db, options);
    start_status = server->Start();
  }
  ~TestServer() { server->Stop(); }

  Status ConnectClient(Client* client) {
    return client->Connect("127.0.0.1", server->port());
  }

  Database db;
  std::unique_ptr<Server> server;
  Status start_status;
};

// ---- handshake and framing --------------------------------------------------

TEST(ServerProtocol, FirstFrameMustBeHello) {
  TestServer ts(10);
  ASSERT_TRUE(ts.start_status.ok()) << ts.start_status.ToString();
  Client client;
  ASSERT_TRUE(client.ConnectRaw("127.0.0.1", ts.server->port()).ok());

  PrepareRequest req;
  req.text = kPairsQuery;
  ASSERT_TRUE(client.SendFrame(MakeFrame(MsgType::kPrepare, 1, req)).ok());
  Frame reply;
  ASSERT_TRUE(client.ReadFrame(&reply).ok());
  EXPECT_EQ(reply.type, MsgType::kError);
  // And the connection is gone.
  EXPECT_FALSE(client.ReadFrame(&reply).ok());
}

TEST(ServerProtocol, BadMagicOrVersionRejected) {
  TestServer ts(10);
  ASSERT_TRUE(ts.start_status.ok());
  Client client;
  ASSERT_TRUE(client.ConnectRaw("127.0.0.1", ts.server->port()).ok());

  HelloRequest hello;
  hello.magic = 0xdeadbeef;
  ASSERT_TRUE(client.SendFrame(MakeFrame(MsgType::kHello, 1, hello)).ok());
  Frame reply;
  ASSERT_TRUE(client.ReadFrame(&reply).ok());
  EXPECT_EQ(reply.type, MsgType::kError);
  EXPECT_FALSE(client.ReadFrame(&reply).ok());
}

TEST(ServerProtocol, UnframeableLengthIsFatal) {
  TestServer ts(10);
  ASSERT_TRUE(ts.start_status.ok());
  Client client;
  ASSERT_TRUE(client.ConnectRaw("127.0.0.1", ts.server->port()).ok());

  // body_len far beyond kMaxFrameBody: the server must not buffer it.
  const uint8_t lying[8] = {0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4};
  ASSERT_TRUE(client.SendRaw(lying, sizeof(lying)).ok());
  Frame reply;
  ASSERT_TRUE(client.ReadFrame(&reply).ok());
  EXPECT_EQ(reply.type, MsgType::kError);
  EXPECT_FALSE(client.ReadFrame(&reply).ok());
  EXPECT_GE(ts.server->stats().frames_malformed.load(), 1u);
}

TEST(ServerProtocol, MalformedPayloadSurvivable) {
  TestServer ts(10);
  ASSERT_TRUE(ts.start_status.ok());
  Client client;
  ASSERT_TRUE(ts.ConnectClient(&client).ok());

  // Decodable frame, garbage payload: a PREPARE whose string length
  // promises more bytes than the payload holds.
  Frame bad;
  bad.type = MsgType::kPrepare;
  bad.request_id = 7;
  bad.payload = {0xff, 0xff, 0xff, 0x0f};  // str len 0x0fffffff, no bytes
  ASSERT_TRUE(client.SendFrame(bad).ok());
  Frame reply;
  ASSERT_TRUE(client.ReadFrame(&reply).ok());
  EXPECT_EQ(reply.type, MsgType::kError);
  EXPECT_EQ(reply.request_id, 7u);

  // Unknown type: same story.
  Frame unknown;
  unknown.type = static_cast<MsgType>(0x6f);
  unknown.request_id = 8;
  ASSERT_TRUE(client.SendFrame(unknown).ok());
  ASSERT_TRUE(client.ReadFrame(&reply).ok());
  EXPECT_EQ(reply.type, MsgType::kError);
  EXPECT_EQ(reply.request_id, 8u);

  // The connection survived both: normal traffic still works.
  uint32_t stmt_id = 0;
  EXPECT_TRUE(client.Prepare(kPairsQuery, &stmt_id).ok());
}

// ---- statements, execution, paging ------------------------------------------

TEST(ServerSession, PrepareExecuteFetchPages) {
  TestServer ts(40);
  ASSERT_TRUE(ts.start_status.ok());
  Client client;
  ASSERT_TRUE(ts.ConnectClient(&client).ok());

  uint32_t stmt_id = 0;
  ASSERT_TRUE(client.Prepare(kPairsQuery, &stmt_id).ok());

  Client::ExecuteSpec spec;
  spec.page_size = 100;
  Client::RowsPage page;
  ASSERT_TRUE(client.Execute(stmt_id, spec, &page).ok());
  EXPECT_EQ(page.arity, 2u);
  size_t rows = page.rows.size();
  size_t pages = 1;
  while (!page.done) {
    ASSERT_NE(page.cursor_id, 0u);
    ASSERT_TRUE(client.Fetch(page.cursor_id, 100, &page).ok());
    rows += page.rows.size();
    ++pages;
    ASSERT_LT(pages, 100u) << "cursor never reported done";
  }
  EXPECT_EQ(rows, 40u * 39u / 2u);
  EXPECT_GT(pages, 1u);
  for (const auto& row : page.rows) EXPECT_EQ(row.size(), 2u);

  // Exhausted cursors go away; fetching again is an error.
  Client::RowsPage after;
  EXPECT_FALSE(client.Fetch(page.cursor_id, 100, &after).ok());

  EXPECT_TRUE(client.CloseStmt(stmt_id).ok());
  Client::RowsPage gone;
  EXPECT_FALSE(client.Execute(stmt_id, spec, &gone).ok());
}

TEST(ServerSession, RowLimitOverWire) {
  TestServer ts(40);
  ASSERT_TRUE(ts.start_status.ok());
  Client client;
  ASSERT_TRUE(ts.ConnectClient(&client).ok());

  uint32_t stmt_id = 0;
  ASSERT_TRUE(client.Prepare(kPairsQuery, &stmt_id).ok());
  Client::ExecuteSpec spec;
  spec.row_limit = 17;
  Client::RowsPage page;
  ASSERT_TRUE(client.Execute(stmt_id, spec, &page).ok());
  size_t rows = page.rows.size();
  while (!page.done) {
    ASSERT_TRUE(client.Fetch(page.cursor_id, 0, &page).ok());
    rows += page.rows.size();
  }
  EXPECT_EQ(rows, 17u);
}

TEST(ServerSession, ErrorsForBadStatementAndQuery) {
  TestServer ts(10);
  ASSERT_TRUE(ts.start_status.ok());
  Client client;
  ASSERT_TRUE(ts.ConnectClient(&client).ok());

  uint32_t stmt_id = 0;
  Status status = client.Prepare("this is not a query", &stmt_id);
  EXPECT_FALSE(status.ok());

  Client::RowsPage page;
  status = client.Execute(999, {}, &page);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

// ---- result cache -----------------------------------------------------------

TEST(ServerCache, HitThenMutateGraphInvalidates) {
  TestServer ts(40);
  ASSERT_TRUE(ts.start_status.ok());
  Client client;
  ASSERT_TRUE(ts.ConnectClient(&client).ok());

  uint32_t stmt_id = 0;
  ASSERT_TRUE(client.Prepare(kPairsQuery, &stmt_id).ok());

  Client::RowsPage first;
  ASSERT_TRUE(client.Execute(stmt_id, {}, &first).ok());
  EXPECT_FALSE(first.from_cache);
  const size_t before = first.rows.size();
  EXPECT_EQ(before, 40u * 39u / 2u);

  Client::RowsPage second;
  ASSERT_TRUE(client.Execute(stmt_id, {}, &second).ok());
  EXPECT_TRUE(second.from_cache) << "identical re-execute must hit";
  EXPECT_EQ(second.rows, first.rows);
  EXPECT_GE(ts.server->cache().hits(), 1u);

  // Mutate: the snapshot swaps, so the entry must die — and the fresh
  // answer must include the new edge's pairs (provable invalidation, not
  // just a cleared flag).
  uint64_t nodes = 0;
  uint64_t edges = 0;
  ASSERT_TRUE(client.Mutate({{"v39", "a", "w0"}}, &nodes, &edges).ok());

  Client::RowsPage third;
  ASSERT_TRUE(client.Execute(stmt_id, {}, &third).ok());
  EXPECT_FALSE(third.from_cache) << "stale snapshot served from cache";
  EXPECT_EQ(third.rows.size(), before + 40u)
      << "w0 is reachable from every chain node";
  EXPECT_GE(ts.server->cache().invalidations(), 1u);

  // Params are part of the key: same text, different binding, no hit.
  uint32_t param_stmt = 0;
  ASSERT_TRUE(client
                  .Prepare("Ans(y) <- ($s, p, y), 'a'+(p)", &param_stmt)
                  .ok());
  Client::ExecuteSpec with_v0;
  with_v0.params = {{"s", "v0"}};
  Client::ExecuteSpec with_v5;
  with_v5.params = {{"s", "v5"}};
  Client::RowsPage v0_page, v5_page;
  ASSERT_TRUE(client.Execute(param_stmt, with_v0, &v0_page).ok());
  ASSERT_TRUE(client.Execute(param_stmt, with_v5, &v5_page).ok());
  EXPECT_FALSE(v5_page.from_cache);
  EXPECT_NE(v0_page.rows.size(), v5_page.rows.size());
}

// Regression: the key must be injection-proof. Param values are
// client-supplied node names that may contain any byte, so a joiner
// character cannot delimit components — two different bindings colliding
// would serve one client's rows to another.
TEST(ServerCache, KeyCannotBeForgedAcrossBindings) {
  const std::string tricky =
      std::string("x") + '\x1f' + "b" + '\x1e' + "y";  // old separators
  EXPECT_NE(ResultCache::Key("q", {{"a", tricky}}),
            ResultCache::Key("q", {{"a", "x"}, {"b", "y"}}));
  // Bytes must not slide across the name/value boundary...
  EXPECT_NE(ResultCache::Key("q", {{"ab", "c"}}),
            ResultCache::Key("q", {{"a", "bc"}}));
  // ...nor across the text/params boundary.
  EXPECT_NE(ResultCache::Key("qa", {}), ResultCache::Key("q", {{"a", ""}}));
  // Canonicalization still holds: binding order is irrelevant.
  EXPECT_EQ(ResultCache::Key("q", {{"a", "1"}, {"b", "2"}}),
            ResultCache::Key("q", {{"b", "2"}, {"a", "1"}}));
}

TEST(ServerCache, BypassFlagSkipsCache) {
  TestServer ts(20);
  ASSERT_TRUE(ts.start_status.ok());
  Client client;
  ASSERT_TRUE(ts.ConnectClient(&client).ok());

  uint32_t stmt_id = 0;
  ASSERT_TRUE(client.Prepare(kPairsQuery, &stmt_id).ok());
  Client::RowsPage page;
  ASSERT_TRUE(client.Execute(stmt_id, {}, &page).ok());
  Client::ExecuteSpec bypass;
  bypass.bypass_cache = true;
  ASSERT_TRUE(client.Execute(stmt_id, bypass, &page).ok());
  EXPECT_FALSE(page.from_cache);
}

// The server-side row ceiling bounds what one execute may materialize:
// the result comes back truncated+flagged, and a truncated prefix is
// never cached (a later caller must get the real answer set).
TEST(ServerSession, ServerRowCapTruncatesAndSkipsCache) {
  ServingOptions options;
  options.max_result_rows = 10;
  TestServer ts(40, options);
  ASSERT_TRUE(ts.start_status.ok());
  Client client;
  ASSERT_TRUE(ts.ConnectClient(&client).ok());

  uint32_t stmt_id = 0;
  ASSERT_TRUE(client.Prepare(kPairsQuery, &stmt_id).ok());
  Client::RowsPage page;
  ASSERT_TRUE(client.Execute(stmt_id, {}, &page).ok());
  EXPECT_TRUE(page.truncated);
  EXPECT_TRUE(page.done);
  EXPECT_EQ(page.rows.size(), 10u) << "ceiling must stop materialization";

  ASSERT_TRUE(client.Execute(stmt_id, {}, &page).ok());
  EXPECT_FALSE(page.from_cache) << "truncated results must not be cached";
  EXPECT_EQ(ts.server->cache().size(), 0u);

  // A client limit under the ceiling behaves as before: exact, unflagged.
  Client::ExecuteSpec spec;
  spec.row_limit = 5;
  ASSERT_TRUE(client.Execute(stmt_id, spec, &page).ok());
  EXPECT_FALSE(page.truncated);
  EXPECT_EQ(page.rows.size(), 5u);
}

// Regression: a ROWS page was capped only by row count, so rows with
// long node names could encode past kMaxFrameBody — the client treats
// such a frame as a fatal protocol violation. Pages must be byte-capped
// and a single unsendable row must become a clean ERROR, not a torn
// stream.
TEST(ServerSession, OversizedRowsErrorInsteadOfBreakingFraming) {
  TestServer ts(2);
  ASSERT_TRUE(ts.start_status.ok());
  Client client;
  ASSERT_TRUE(ts.ConnectClient(&client).ok());

  // Two ~9 MiB node names, created by separate MUTATEs (together they
  // exceed one frame) and then connected so the pairs query must emit
  // the 18 MiB row (giant_a, giant_b) — beyond any legal frame.
  const std::string giant_a(9 * 1024 * 1024, 'A');
  const std::string giant_b(9 * 1024 * 1024, 'B');
  ASSERT_TRUE(client.Mutate({{giant_a, "a", "mid"}}, nullptr, nullptr).ok());
  ASSERT_TRUE(client.Mutate({{"mid", "a", giant_b}}, nullptr, nullptr).ok());

  uint32_t stmt_id = 0;
  ASSERT_TRUE(client.Prepare(kPairsQuery, &stmt_id).ok());
  Client::RowsPage page;
  Status status = client.Execute(stmt_id, {}, &page);
  while (status.ok() && !page.done) {
    status = client.Fetch(page.cursor_id, 0, &page);
  }
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted)
      << "the oversized row must surface as an explicit error: "
      << status.ToString();

  // The connection survived — framing never desynchronized.
  std::string text;
  EXPECT_TRUE(client.Stats(&text).ok());
}

// ---- admission control ------------------------------------------------------

TEST(ServerAdmission, ShedsBeyondCapacityWithExplicitOverloaded) {
  ServingOptions options;
  options.executor_threads = 2;
  options.max_in_flight = 1;
  options.max_queue = 0;
  TestServer ts(2000, options);
  ASSERT_TRUE(ts.start_status.ok());

  Client busy;
  ASSERT_TRUE(ts.ConnectClient(&busy).ok());
  uint32_t stmt_id = 0;
  ASSERT_TRUE(busy.Prepare(kBurnQuery, &stmt_id).ok());
  Client::ExecuteSpec slow;
  slow.bypass_cache = true;
  uint32_t burn_id = 0;
  ASSERT_TRUE(busy.SendExecute(stmt_id, slow, &burn_id).ok());
  std::this_thread::sleep_for(milliseconds(100));  // slot is taken

  Client second;
  ASSERT_TRUE(ts.ConnectClient(&second).ok());
  uint32_t stmt2 = 0;
  ASSERT_TRUE(second.Prepare(kPairsQuery, &stmt2).ok());
  Client::RowsPage page;
  Status status = second.Execute(stmt2, {}, &page);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("OVERLOADED"), std::string::npos)
      << "shed load must be explicit, never silent: " << status.ToString();
  EXPECT_GE(ts.server->stats().executes_overloaded.load(), 1u);

  // Freeing the slot restores service.
  ASSERT_TRUE(busy.Cancel(burn_id).ok());
  Client::RowsPage burned;
  EXPECT_EQ(busy.AwaitRows(burn_id, &burned).code(), StatusCode::kCancelled);
  status = second.Execute(stmt2, {}, &page);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

// Regression: two pipelined EXECUTEs under one request_id must not
// double-register the id — the pair would release one admission slot and
// leak the other permanently, bleeding capacity until every execute is
// shed OVERLOADED. The duplicate gets an ERROR and no slot.
TEST(ServerAdmission, DuplicateRequestIdRejectedWithoutLeakingSlot) {
  Database db(Chain(10));
  ResultCache cache;
  AdmissionController admission(4, 0);
  ServerStats stats;
  ServingOptions options;
  Session session(&db, &cache, &admission, &stats, &options, 1);

  ASSERT_EQ(session.Handle(MakeFrame(MsgType::kHello, 1, HelloRequest{}))
                .replies[0]
                .type,
            MsgType::kHelloOk);
  PrepareRequest prep;
  prep.text = kPairsQuery;
  Session::HandleResult prepared =
      session.Handle(MakeFrame(MsgType::kPrepare, 2, prep));
  ASSERT_EQ(prepared.replies[0].type, MsgType::kPrepareOk);
  PrepareReply prep_reply;
  ASSERT_TRUE(Decode(prepared.replies[0].payload, &prep_reply).ok());

  ExecuteRequest exec;
  exec.stmt_id = prep_reply.stmt_id;
  Frame frame = MakeFrame(MsgType::kExecute, 7, exec);
  ASSERT_FALSE(session.PreadmitExecute(frame).has_value());
  EXPECT_EQ(admission.admitted(), 1);

  std::optional<Frame> dup = session.PreadmitExecute(frame);
  ASSERT_TRUE(dup.has_value());
  EXPECT_EQ(dup->type, MsgType::kError);
  EXPECT_EQ(admission.admitted(), 1) << "duplicate must not hold a slot";

  Session::HandleResult done = session.Handle(frame);
  ASSERT_EQ(done.replies.size(), 1u);
  EXPECT_EQ(done.replies[0].type, MsgType::kRows);
  EXPECT_EQ(admission.admitted(), 0)
      << "exactly one release per admission, even after a duplicate";

  // Once the first finished, reusing its id is legal again.
  ASSERT_FALSE(session.PreadmitExecute(frame).has_value());
  EXPECT_EQ(admission.admitted(), 1);
  EXPECT_EQ(session.Handle(frame).replies[0].type, MsgType::kRows);
  EXPECT_EQ(admission.admitted(), 0);
}

TEST(ServerAdmission, DuplicateRequestIdOverWireDoesNotExhaustCapacity) {
  ServingOptions options;
  options.executor_threads = 2;
  options.max_in_flight = 2;
  options.max_queue = 0;
  TestServer ts(2000, options);
  ASSERT_TRUE(ts.start_status.ok());
  Client client;
  ASSERT_TRUE(ts.ConnectClient(&client).ok());
  uint32_t stmt_id = 0;
  ASSERT_TRUE(client.Prepare(kBurnQuery, &stmt_id).ok());

  ExecuteRequest req;
  req.stmt_id = stmt_id;
  req.flags = kExecFlagBypassCache;
  ASSERT_TRUE(client.SendFrame(MakeFrame(MsgType::kExecute, 100, req)).ok());
  std::this_thread::sleep_for(milliseconds(100));  // burn is in flight
  ASSERT_TRUE(client.SendFrame(MakeFrame(MsgType::kExecute, 100, req)).ok());

  Frame reply;
  ASSERT_TRUE(client.ReadFrame(&reply).ok());
  EXPECT_EQ(reply.type, MsgType::kError) << "duplicate id must be rejected";
  EXPECT_EQ(reply.request_id, 100u);

  CancelRequest cancel;
  cancel.target_request_id = 100;
  ASSERT_TRUE(client.SendFrame(MakeFrame(MsgType::kCancel, 101, cancel)).ok());
  bool saw_cancel_ack = false;
  bool saw_burn_reply = false;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(client.ReadFrame(&reply).ok());
    if (reply.request_id == 101) {
      EXPECT_EQ(reply.type, MsgType::kOk);
      saw_cancel_ack = true;
    } else {
      EXPECT_EQ(reply.request_id, 100u);
      EXPECT_EQ(reply.type, MsgType::kError);
      saw_burn_reply = true;
    }
  }
  EXPECT_TRUE(saw_cancel_ack);
  EXPECT_TRUE(saw_burn_reply);

  // Every admitted slot was released: the server reports zero in flight
  // and still serves at full capacity.
  std::string text;
  ASSERT_TRUE(client.Stats(&text).ok());
  EXPECT_NE(text.find("admission.in_flight=0"), std::string::npos) << text;
  uint32_t pairs_stmt = 0;
  ASSERT_TRUE(client.Prepare(kPairsQuery, &pairs_stmt).ok());
  Client::RowsPage page;
  EXPECT_TRUE(client.Execute(pairs_stmt, {}, &page).ok());
}

// ---- cancellation and deadlines ---------------------------------------------

TEST(ServerCancel, OutOfBandCancelStopsMidSearch) {
  TestServer ts(2000);
  ASSERT_TRUE(ts.start_status.ok());
  Client client;
  ASSERT_TRUE(ts.ConnectClient(&client).ok());

  uint32_t stmt_id = 0;
  ASSERT_TRUE(client.Prepare(kBurnQuery, &stmt_id).ok());
  Client::ExecuteSpec spec;
  spec.bypass_cache = true;
  uint32_t request_id = 0;
  auto start = steady_clock::now();
  ASSERT_TRUE(client.SendExecute(stmt_id, spec, &request_id).ok());
  std::this_thread::sleep_for(milliseconds(50));  // let the engine run
  ASSERT_TRUE(client.Cancel(request_id).ok());
  Client::RowsPage page;
  EXPECT_EQ(client.AwaitRows(request_id, &page).code(),
            StatusCode::kCancelled);
  EXPECT_LT(steady_clock::now() - start, std::chrono::seconds(30))
      << "cancel did not interrupt the search";
  EXPECT_GE(ts.server->stats().executes_cancelled.load(), 1u);
}

TEST(ServerDeadline, DeadlineCancelsMidSearchOverWire) {
  TestServer ts(2000);
  ASSERT_TRUE(ts.start_status.ok());
  Client client;
  ASSERT_TRUE(ts.ConnectClient(&client).ok());

  uint32_t stmt_id = 0;
  ASSERT_TRUE(client.Prepare(kBurnQuery, &stmt_id).ok());
  Client::ExecuteSpec spec;
  spec.deadline_ms = 100;
  spec.bypass_cache = true;
  auto start = steady_clock::now();
  Client::RowsPage page;
  Status status = client.Execute(stmt_id, spec, &page);
  EXPECT_EQ(status.code(), StatusCode::kCancelled) << status.ToString();
  EXPECT_LT(steady_clock::now() - start, std::chrono::seconds(30));
  EXPECT_GE(ts.server->stats().executes_deadline.load(), 1u);
}

TEST(ServerDisconnect, MidQueryDisconnectCancelsAndServerSurvives) {
  TestServer ts(2000);
  ASSERT_TRUE(ts.start_status.ok());

  {
    Client doomed;
    ASSERT_TRUE(ts.ConnectClient(&doomed).ok());
    uint32_t stmt_id = 0;
    ASSERT_TRUE(doomed.Prepare(kBurnQuery, &stmt_id).ok());
    Client::ExecuteSpec spec;
    spec.bypass_cache = true;
    uint32_t request_id = 0;
    ASSERT_TRUE(doomed.SendExecute(stmt_id, spec, &request_id).ok());
    std::this_thread::sleep_for(milliseconds(100));
    doomed.Close();  // hang up with the query running
  }

  // The server must notice and cancel the orphaned execution.
  auto deadline = steady_clock::now() + std::chrono::seconds(30);
  while (ts.server->stats().executes_cancelled.load() == 0 &&
         steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(20));
  }
  EXPECT_GE(ts.server->stats().executes_cancelled.load(), 1u)
      << "disconnect did not cancel the in-flight query";

  // And it still serves new clients.
  Client fresh;
  ASSERT_TRUE(ts.ConnectClient(&fresh).ok());
  uint32_t stmt_id = 0;
  ASSERT_TRUE(fresh.Prepare(kPairsQuery, &stmt_id).ok());
  Client::RowsPage page;
  EXPECT_TRUE(fresh.Execute(stmt_id, {}, &page).ok());
}

// ---- concurrency ------------------------------------------------------------

TEST(ServerConcurrency, ManySessionsRacingAWriter) {
  ServingOptions options;
  options.executor_threads = 4;
  options.max_in_flight = 8;
  options.max_queue = 64;
  TestServer ts(60, options);
  ASSERT_TRUE(ts.start_status.ok());
  const size_t base_rows = 60u * 59u / 2u;

  std::atomic<int> failures{0};
  std::atomic<int> mutations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&, t] {
      Client client;
      if (!ts.ConnectClient(&client).ok()) {
        failures.fetch_add(1);
        return;
      }
      uint32_t stmt_id = 0;
      if (!client.Prepare(kPairsQuery, &stmt_id).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < 15; ++i) {
        Client::ExecuteSpec spec;
        spec.bypass_cache = (t + i) % 2 == 0;
        Client::RowsPage page;
        Status status = client.Execute(stmt_id, spec, &page);
        if (!status.ok()) {
          failures.fetch_add(1);
          return;
        }
        size_t rows = page.rows.size();
        while (!page.done) {
          if (!client.Fetch(page.cursor_id, 0, &page).ok()) {
            failures.fetch_add(1);
            return;
          }
          rows += page.rows.size();
        }
        // Every snapshot the execution could have pinned contains at
        // least the base chain; the writer only ever adds pairs.
        if (rows < base_rows) failures.fetch_add(1);
      }
    });
  }
  std::thread writer([&] {
    Client client;
    if (!ts.ConnectClient(&client).ok()) {
      failures.fetch_add(1);
      return;
    }
    for (int i = 0; i < 10; ++i) {
      std::string fresh = "w" + std::to_string(i);
      if (!client.Mutate({{"v59", "a", fresh}}, nullptr, nullptr).ok()) {
        failures.fetch_add(1);
        return;
      }
      mutations.fetch_add(1);
      std::this_thread::sleep_for(milliseconds(10));
    }
  });
  for (std::thread& t : readers) t.join();
  writer.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mutations.load(), 10);

  // Post-race ground truth, bypassing the cache: the chain plus every
  // writer edge (each w* adds 60 new pairs: one per chain node).
  Client client;
  ASSERT_TRUE(ts.ConnectClient(&client).ok());
  uint32_t stmt_id = 0;
  ASSERT_TRUE(client.Prepare(kPairsQuery, &stmt_id).ok());
  Client::ExecuteSpec spec;
  spec.bypass_cache = true;
  Client::RowsPage page;
  ASSERT_TRUE(client.Execute(stmt_id, spec, &page).ok());
  size_t rows = page.rows.size();
  while (!page.done) {
    ASSERT_TRUE(client.Fetch(page.cursor_id, 0, &page).ok());
    rows += page.rows.size();
  }
  EXPECT_EQ(rows, base_rows + 10u * 60u);
}

// ---- observability ----------------------------------------------------------

TEST(ServerStatsRequest, ReportsCounters) {
  TestServer ts(20);
  ASSERT_TRUE(ts.start_status.ok());
  Client client;
  ASSERT_TRUE(ts.ConnectClient(&client).ok());

  uint32_t stmt_id = 0;
  ASSERT_TRUE(client.Prepare(kPairsQuery, &stmt_id).ok());
  Client::RowsPage page;
  ASSERT_TRUE(client.Execute(stmt_id, {}, &page).ok());

  std::string text;
  ASSERT_TRUE(client.Stats(&text).ok());
  EXPECT_NE(text.find("server.executes_ok=1"), std::string::npos) << text;
  EXPECT_NE(text.find("server.prepares=1"), std::string::npos);
  EXPECT_NE(text.find("latency.p99_us="), std::string::npos);
  EXPECT_NE(text.find("cache.size=1"), std::string::npos);
  EXPECT_NE(text.find("admission.capacity="), std::string::npos);
  EXPECT_NE(text.find("db.plan_cache_hits="), std::string::npos);
}

// Pipelining: several executes in flight on one connection, answered in
// order per the actor scheduling, each to its own request_id.
TEST(ServerSession, PipelinedRequestsCorrelateByRequestId) {
  TestServer ts(30);
  ASSERT_TRUE(ts.start_status.ok());
  Client client;
  ASSERT_TRUE(ts.ConnectClient(&client).ok());

  uint32_t stmt_id = 0;
  ASSERT_TRUE(client.Prepare(kPairsQuery, &stmt_id).ok());
  uint32_t ids[3] = {0, 0, 0};
  Client::ExecuteSpec spec;
  spec.bypass_cache = true;
  for (uint32_t& id : ids) {
    ASSERT_TRUE(client.SendExecute(stmt_id, spec, &id).ok());
  }
  // Collect out of order: the client library buffers by request_id.
  for (int i = 2; i >= 0; --i) {
    Client::RowsPage page;
    ASSERT_TRUE(client.AwaitRows(ids[i], &page).ok());
    EXPECT_EQ(page.rows.size(), 30u * 29u / 2u);
  }
}

}  // namespace
}  // namespace ecrpq
