// Delta-snapshot semantics: a GraphIndex::ApplyDelta chain must present
// the exact logical view a from-scratch Build of the mutated graph does —
// rows, masks, degrees, label statistics, degree permutations, engine
// results, and engine counters, byte for byte — while sharing the base
// arrays (O(delta) writes). Plus the Database-level write path: snapshot
// pinning, single-flight rebuilds, plan-cache survival, threshold and
// background compaction, and snapshot-keyed result-cache invalidation.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "core/eval_crpq.h"
#include "core/eval_product.h"
#include "core/evaluator.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/index.h"
#include "query/parser.h"
#include "server/result_cache.h"
#include "util/random.h"

namespace ecrpq {
namespace {

template <typename T>
std::vector<T> ToVec(std::span<const T> s) {
  return std::vector<T>(s.begin(), s.end());
}

// Full structural equality of two snapshots' logical views. `fresh` is a
// from-scratch Build of the mutated graph; `snap` the delta chain.
void CheckSameView(const GraphIndexPtr& fresh, const GraphIndexPtr& snap) {
  ASSERT_EQ(fresh->num_nodes(), snap->num_nodes());
  ASSERT_EQ(fresh->num_edges(), snap->num_edges());
  ASSERT_EQ(fresh->num_labels(), snap->num_labels());
  ASSERT_EQ(fresh->version(), snap->version());

  for (Symbol a = 0; a < fresh->num_labels(); ++a) {
    ASSERT_EQ(fresh->LabelCount(a), snap->LabelCount(a)) << "label " << a;
    ASSERT_EQ(fresh->LabelSourceCount(a), snap->LabelSourceCount(a))
        << "label " << a;
    ASSERT_EQ(fresh->LabelTargetCount(a), snap->LabelTargetCount(a))
        << "label " << a;
  }
  // Permutations must be IDENTICAL, not just degree-sorted: frontier
  // seeding order feeds engine counters, and those must match too.
  ASSERT_EQ(fresh->NodesByDegree(), snap->NodesByDegree());
  ASSERT_EQ(fresh->NodesByInDegree(), snap->NodesByInDegree());

  for (NodeId v = 0; v < fresh->num_nodes(); ++v) {
    ASSERT_EQ(ToVec(fresh->OutLabels(v)), ToVec(snap->OutLabels(v)))
        << "node " << v;
    ASSERT_EQ(ToVec(fresh->OutTargets(v)), ToVec(snap->OutTargets(v)))
        << "node " << v;
    ASSERT_EQ(ToVec(fresh->InLabels(v)), ToVec(snap->InLabels(v)))
        << "node " << v;
    ASSERT_EQ(ToVec(fresh->InSources(v)), ToVec(snap->InSources(v)))
        << "node " << v;
    ASSERT_EQ(fresh->OutLabelMask(v), snap->OutLabelMask(v)) << "node " << v;
    ASSERT_EQ(fresh->InLabelMask(v), snap->InLabelMask(v)) << "node " << v;
    ASSERT_EQ(fresh->out_degree(v), snap->out_degree(v)) << "node " << v;
    ASSERT_EQ(fresh->in_degree(v), snap->in_degree(v)) << "node " << v;
  }
}

// One random mutation batch applied to `g`, returned in index terms.
// Mixes adds between existing nodes, edges on freshly created nodes,
// occasional brand-new labels, removals of existing edges (including
// ones added by this very batch), forced duplicates, and occasional
// full-row wipes (tombstones).
GraphIndex::Delta RandomBatch(GraphDb* g, Rng* rng, int* next_label) {
  GraphIndex::Delta d;
  if (rng->Chance(0.3)) {
    g->AddNodes(static_cast<int>(rng->Range(1, 4)));
  }
  const int n_add = static_cast<int>(rng->Range(0, 60));
  for (int i = 0; i < n_add; ++i) {
    const NodeId from = static_cast<NodeId>(rng->Below(g->num_nodes()));
    const NodeId to = static_cast<NodeId>(rng->Below(g->num_nodes()));
    Symbol label;
    if (rng->Chance(0.02)) {
      const std::string name = "nl" + std::to_string((*next_label)++);
      g->AddEdge(from, name, to);
      label = *g->alphabet().Find(name);
    } else {
      label = static_cast<Symbol>(rng->Below(g->alphabet().size()));
      g->AddEdge(from, label, to);
    }
    d.added.push_back({from, label, to});
  }
  if (!d.added.empty() && rng->Chance(0.4)) {
    // Exact duplicate of an edge added above: multiset semantics.
    const Edge e = d.added[rng->Below(d.added.size())];
    g->AddEdge(e.from, e.label, e.to);
    d.added.push_back(e);
  }
  const int n_rem = static_cast<int>(rng->Range(0, 40));
  for (int i = 0; i < n_rem; ++i) {
    for (int tries = 0; tries < 20; ++tries) {
      const NodeId v = static_cast<NodeId>(rng->Below(g->num_nodes()));
      const auto& out = g->Out(v);
      if (out.empty()) continue;
      const auto [label, to] = out[rng->Below(out.size())];
      EXPECT_TRUE(g->RemoveEdge(v, label, to)) << "picked edge must exist";
      d.removed.push_back({v, label, to});
      break;
    }
  }
  if (rng->Chance(0.15)) {
    // Wipe one node's whole out-row: the empty merged row (tombstone)
    // must shadow its base row.
    const NodeId v = static_cast<NodeId>(rng->Below(g->num_nodes()));
    const auto out = g->Out(v);  // copy: RemoveEdge mutates it
    for (const auto& [label, to] : out) {
      EXPECT_TRUE(g->RemoveEdge(v, label, to)) << "wipe edge must exist";
      d.removed.push_back({v, label, to});
    }
  }
  d.new_num_nodes = g->num_nodes();
  d.new_num_labels = g->alphabet().size();
  d.new_version = g->version();
  return d;
}

Result<QueryResult> RunProduct(const GraphDb& g, const Query& q,
                               const EvalOptions& opts, GraphIndexPtr index) {
  return MaterializeResult([&](ResultSink& sink, EvalStats& stats) {
    return EvaluateProduct(g, q, opts, sink, stats, nullptr, std::move(index),
                           nullptr);
  });
}

Result<QueryResult> RunCrpq(const GraphDb& g, const Query& q,
                            const EvalOptions& opts, GraphIndexPtr index) {
  return MaterializeResult([&](ResultSink& sink, EvalStats& stats) {
    return EvaluateCrpq(g, q, opts, sink, stats, nullptr, std::move(index));
  });
}

// Both engines, at 1 and 4 threads, on the overlay snapshot vs the fresh
// build: tuples AND counters byte-identical.
void CheckEnginesIdentical(const GraphDb& g, const GraphIndexPtr& fresh,
                           const GraphIndexPtr& snap) {
  const char* kProductQuery = "Ans(x, z) <- (x, p, y), (y, q, z), ab(p), c(q)";
  const char* kCrpqQuery = "Ans(x, y) <- (x, p, y), a+(p)";
  auto product_q = ParseQuery(kProductQuery, g.alphabet());
  auto crpq_q = ParseQuery(kCrpqQuery, g.alphabet());
  ASSERT_TRUE(product_q.ok()) << product_q.status().ToString();
  ASSERT_TRUE(crpq_q.ok()) << crpq_q.status().ToString();

  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EvalOptions opts;
    opts.build_path_answers = false;
    opts.num_threads = threads;

    auto check = [&](const Result<QueryResult>& on_fresh,
                     const Result<QueryResult>& on_snap) {
      ASSERT_TRUE(on_fresh.ok()) << on_fresh.status().ToString();
      ASSERT_TRUE(on_snap.ok()) << on_snap.status().ToString();
      EXPECT_EQ(on_fresh.value().tuples(), on_snap.value().tuples());
      const EvalStats& a = on_fresh.value().stats();
      const EvalStats& b = on_snap.value().stats();
      EXPECT_EQ(a.configs_explored, b.configs_explored);
      EXPECT_EQ(a.arcs_explored, b.arcs_explored);
      EXPECT_EQ(a.start_assignments, b.start_assignments);
      EXPECT_EQ(a.join_tuples, b.join_tuples);
    };
    check(RunProduct(g, product_q.value(), opts, fresh),
          RunProduct(g, product_q.value(), opts, snap));
    check(RunCrpq(g, crpq_q.value(), opts, fresh),
          RunCrpq(g, crpq_q.value(), opts, snap));
  }
}

// The acceptance property: 100 random mutation batches on a >= 100k-edge
// graph, overlay chain vs from-scratch rebuild after every batch.
TEST(IndexDeltaProperty, HundredBatchesMatchFreshBuild) {
  Rng rng(20260807);
  auto alphabet =
      Alphabet::FromLabels({"a", "b", "c", "d", "e", "f", "g", "h"});
  GraphDb g = PowerLawGraph(alphabet, 25000, 110000, &rng);
  ASSERT_GE(g.num_edges(), 100000);

  GraphIndexPtr snap = GraphIndex::Build(g);
  int next_label = 0;
  for (int batch = 0; batch < 100; ++batch) {
    SCOPED_TRACE("batch " + std::to_string(batch));
    GraphIndex::Delta delta = RandomBatch(&g, &rng, &next_label);
    snap = snap->ApplyDelta(delta);
    ASSERT_TRUE(snap->has_delta());
    ASSERT_EQ(snap->version(), g.version());

    GraphIndexPtr fresh = GraphIndex::Build(g);
    CheckSameView(fresh, snap);
    if (batch % 25 == 24) {
      CheckEnginesIdentical(g, fresh, snap);
    }
  }
  // 100 batches deep, the chain still shares the original base arrays
  // (a rare all-skip batch pushes no segment, hence GE not EQ).
  EXPECT_GE(snap->num_delta_segments(), 90u);
  EXPECT_GT(snap->delta_nodes(), 0u);
}

TEST(IndexDelta, TombstoneShadowsBaseRow) {
  GraphDb g;
  NodeId x = g.AddNode("x");
  NodeId y = g.AddNode("y");
  NodeId z = g.AddNode("z");
  g.AddEdge(x, "a", y);
  g.AddEdge(x, "b", z);
  g.AddEdge(y, "a", z);
  auto base = GraphIndex::Build(g);
  ASSERT_EQ(base->out_degree(x), 2);

  Symbol a = *g.alphabet().Find("a");
  Symbol b = *g.alphabet().Find("b");
  ASSERT_TRUE(g.RemoveEdge(x, a, y));
  ASSERT_TRUE(g.RemoveEdge(x, b, z));
  GraphIndex::Delta d;
  d.removed = {{x, a, y}, {x, b, z}};
  d.new_num_nodes = g.num_nodes();
  d.new_num_labels = g.alphabet().size();
  d.new_version = g.version();
  auto snap = base->ApplyDelta(d);

  EXPECT_EQ(snap->out_degree(x), 0);
  EXPECT_TRUE(snap->Out(x, a).empty());
  EXPECT_TRUE(snap->OutLabels(x).empty());
  EXPECT_EQ(snap->OutLabelMask(x), 0u);
  EXPECT_EQ(snap->num_edges(), 1);
  // y's in-row is tombstoned too; z keeps one in-edge.
  EXPECT_EQ(snap->in_degree(y), 0);
  EXPECT_EQ(snap->in_degree(z), 1);
  // The base snapshot is untouched.
  EXPECT_EQ(base->out_degree(x), 2);
  CheckSameView(GraphIndex::Build(g), snap);
}

TEST(IndexDelta, DuplicateEdgeRemovesOneInstance) {
  GraphDb g;
  NodeId x = g.AddNode("x");
  NodeId y = g.AddNode("y");
  g.AddEdge(x, "a", y);
  g.AddEdge(x, "a", y);  // multiset: two instances
  auto base = GraphIndex::Build(g);
  ASSERT_EQ(base->Out(x, 0).size(), 2u);

  ASSERT_TRUE(g.RemoveEdge(x, 0, y));
  GraphIndex::Delta d;
  d.removed = {{x, 0, y}};
  d.new_num_nodes = g.num_nodes();
  d.new_num_labels = g.alphabet().size();
  d.new_version = g.version();
  auto snap = base->ApplyDelta(d);
  EXPECT_EQ(snap->Out(x, 0).size(), 1u);
  EXPECT_EQ(snap->num_edges(), 1);
  CheckSameView(GraphIndex::Build(g), snap);
}

TEST(IndexDelta, NodeOnlyBatchExtendsUniverse) {
  GraphDb g;
  NodeId x = g.AddNode("x");
  NodeId y = g.AddNode("y");
  g.AddEdge(x, "a", y);
  auto base = GraphIndex::Build(g);

  const NodeId fresh_node = g.AddNodes(3);
  GraphIndex::Delta d;
  d.new_num_nodes = g.num_nodes();
  d.new_num_labels = g.alphabet().size();
  d.new_version = g.version();
  auto snap = base->ApplyDelta(d);

  EXPECT_EQ(snap->num_nodes(), 5);
  EXPECT_FALSE(snap->has_delta());  // no rows changed...
  // ...but the fresh nodes resolve as empty rows, not out-of-bounds.
  EXPECT_EQ(snap->out_degree(fresh_node), 0);
  EXPECT_TRUE(snap->Out(fresh_node, 0).empty());
  EXPECT_TRUE(snap->OutLabels(fresh_node + 2).empty());
  EXPECT_EQ(snap->OutLabelMask(fresh_node), 0u);
  CheckSameView(GraphIndex::Build(g), snap);
}

TEST(IndexDelta, NewLabelGrowsStatistics) {
  GraphDb g;
  NodeId x = g.AddNode("x");
  NodeId y = g.AddNode("y");
  g.AddEdge(x, "a", y);
  auto base = GraphIndex::Build(g);
  ASSERT_EQ(base->num_labels(), 1);

  g.AddEdge(y, "brand_new", x);
  Symbol nl = *g.alphabet().Find("brand_new");
  GraphIndex::Delta d;
  d.added = {{y, nl, x}};
  d.new_num_nodes = g.num_nodes();
  d.new_num_labels = g.alphabet().size();
  d.new_version = g.version();
  auto snap = base->ApplyDelta(d);
  EXPECT_EQ(snap->num_labels(), 2);
  EXPECT_EQ(snap->LabelCount(nl), 1);
  EXPECT_EQ(snap->LabelSourceCount(nl), 1);
  EXPECT_EQ(snap->LabelTargetCount(nl), 1);
  CheckSameView(GraphIndex::Build(g), snap);
}

// ---- Database-level write path ---------------------------------------------

GraphDb NamedDemo() {
  GraphDb g;
  NodeId ann = g.AddNode("ann");
  NodeId bob = g.AddNode("bob");
  NodeId eva = g.AddNode("eva");
  g.AddNode("leo");
  g.AddEdge(ann, "advisor", eva);
  g.AddEdge(bob, "advisor", eva);
  g.AddEdge(bob, "coauthor", ann);
  return g;
}

TEST(DatabaseDelta, ReadersPinPreDeltaSnapshot) {
  // NamedDemo has 3 edges, so the default compact_delta_fraction (0.10)
  // would schedule a background fold for even a 1-edge batch — and the
  // fold racing db.graph_index() below would erase the delta this test
  // observes. Raise the threshold so the batch deterministically stays
  // a delta snapshot.
  DatabaseOptions opts;
  opts.compact_delta_fraction = 10.0;
  Database db(NamedDemo(), opts);
  GraphIndexPtr before = db.graph_index();
  ASSERT_NE(before, nullptr);
  const int edges_before = before->num_edges();

  GraphMutation m;
  m.add_edges.push_back({"eva", "advisor", "leo"});
  MutationSummary s = db.ApplyDelta(m);
  EXPECT_TRUE(s.delta_applied);
  EXPECT_EQ(s.added_edges, 1);
  EXPECT_EQ(s.num_edges, edges_before + 1);

  GraphIndexPtr after = db.graph_index();
  ASSERT_NE(after, nullptr);
  EXPECT_NE(before.get(), after.get());  // distinct snapshot identity
  EXPECT_TRUE(after->has_delta());
  EXPECT_EQ(after->num_edges(), edges_before + 1);
  // The pinned pre-delta snapshot still serves its own, older view.
  EXPECT_EQ(before->num_edges(), edges_before);
  EXPECT_FALSE(before->has_delta());
}

TEST(DatabaseDelta, MutationSummaryCountsSkipsAndNewNodes) {
  Database db(NamedDemo());
  (void)db.graph_index();  // lazy-build so the batch has a snapshot to advance
  GraphMutation m;
  m.add_nodes = {"zoe"};
  m.add_edges.push_back({"ann", "advisor", "zoe"});
  m.add_edges.push_back({"newguy", "coauthor", "zoe"});  // creates newguy
  m.remove_edges.push_back({"bob", "coauthor", "ann"});     // exists
  m.remove_edges.push_back({"bob", "coauthor", "eva"});     // no such edge
  m.remove_edges.push_back({"ghost", "coauthor", "ann"});   // no such node
  m.remove_edges.push_back({"ann", "nolabel", "eva"});      // no such label
  MutationSummary s = db.ApplyDelta(m);
  EXPECT_EQ(s.added_edges, 2);
  EXPECT_EQ(s.removed_edges, 1);
  EXPECT_EQ(s.skipped_removes, 3);
  EXPECT_EQ(s.new_nodes, 2);  // zoe + newguy
  EXPECT_TRUE(s.delta_applied);
  // Query through the delta snapshot sees the new edge and not the
  // removed one.
  auto r = db.Execute("Ans(y) <- (\"ann\", p, y), 'advisor'(p)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().tuples().size(), 2u);  // eva and zoe
  auto gone = db.Execute("Ans(y) <- (\"bob\", p, y), 'coauthor'(p)");
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone.value().tuples().empty());
}

TEST(DatabaseDelta, PlanCacheSurvivesAlphabetStableBatches) {
  Database db(NamedDemo());
  ASSERT_TRUE(db.Prepare("Ans(x, y) <- (x, p, y), 'advisor'+(p)").ok());
  ASSERT_EQ(db.plan_cache_size(), 1u);

  GraphMutation stable;
  stable.add_edges.push_back({"leo", "advisor", "ann"});
  db.ApplyDelta(stable);
  EXPECT_EQ(db.plan_cache_size(), 1u);  // alphabet unchanged: plans live

  GraphMutation growing;
  growing.add_edges.push_back({"leo", "mentor", "bob"});  // new label
  db.ApplyDelta(growing);
  EXPECT_EQ(db.plan_cache_size(), 0u);  // automata sized by alphabet
}

TEST(DatabaseDelta, SingleFlightCoalescesRacingBuilders) {
  Rng rng(7);
  auto alphabet = Alphabet::FromLabels({"a", "b", "c", "d"});
  Database db(PowerLawGraph(alphabet, 50000, 400000, &rng));
  (void)db.graph_index();  // initial build
  db.MutateGraph([](GraphDb&) {});  // invalidate wholesale

  const uint64_t before = db.index_full_builds();
  std::vector<std::thread> threads;
  std::vector<GraphIndexPtr> got(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&db, &got, t] { got[t] = db.graph_index(); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db.index_full_builds() - before, 1u);  // exactly one build
  for (int t = 1; t < 8; ++t) {
    EXPECT_EQ(got[0].get(), got[t].get());  // everyone got that one
  }
}

TEST(DatabaseDelta, SynchronousThresholdCompactionFolds) {
  DatabaseOptions opts;
  opts.background_compaction = false;
  opts.compact_delta_fraction = 0.0;  // any delta triggers the fold
  Database db(NamedDemo(), opts);
  (void)db.graph_index();
  GraphMutation m;
  m.add_edges.push_back({"eva", "advisor", "leo"});
  MutationSummary s = db.ApplyDelta(m);
  EXPECT_TRUE(s.delta_applied);
  GraphIndexPtr idx = db.graph_index();
  ASSERT_NE(idx, nullptr);
  EXPECT_FALSE(idx->has_delta());  // folded before the writer returned
  EXPECT_EQ(idx->num_edges(), 4);
}

TEST(DatabaseDelta, CompactIndexNowFoldsOnDemand) {
  DatabaseOptions opts;
  opts.compact_delta_fraction = 10.0;  // small batch stays delta (the
                                       // default 0.10 would background-fold
                                       // a 1-edge batch on this 3-edge demo)
  Database db(NamedDemo(), opts);
  (void)db.graph_index();
  GraphMutation m;
  m.add_edges.push_back({"eva", "advisor", "leo"});
  db.ApplyDelta(m);
  ASSERT_TRUE(db.graph_index()->has_delta());
  db.CompactIndexNow();
  GraphIndexPtr idx = db.graph_index();
  EXPECT_FALSE(idx->has_delta());
  EXPECT_EQ(idx->num_edges(), 4);
}

// Background compaction racing live readers and a writer; the sanitizer
// CI jobs (ASan/TSan) run this test to prove the fold/swap protocol is
// data-race free. Compaction triggers after every batch
// (compact_delta_fraction = 0).
TEST(DatabaseDelta, BackgroundCompactionRacesReadersCleanly) {
  Rng rng(11);
  auto alphabet = Alphabet::FromLabels({"a", "b", "c", "d"});
  DatabaseOptions opts;
  opts.background_compaction = true;
  opts.compact_delta_fraction = 0.0;
  Database db(PowerLawGraph(alphabet, 2000, 12000, &rng), opts);
  const int num_nodes = db.graph().num_nodes();

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&db, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = db.Execute("Ans(x, y) <- (x, p, y), ab(p)");
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  Rng wrng(13);
  for (int batch = 0; batch < 25; ++batch) {
    std::vector<Edge> add, remove;
    for (int i = 0; i < 50; ++i) {
      add.push_back({static_cast<NodeId>(wrng.Below(num_nodes)),
                     static_cast<Symbol>(wrng.Below(4)),
                     static_cast<NodeId>(wrng.Below(num_nodes))});
    }
    // Random removes: most miss (skipped), some hit earlier adds.
    for (int i = 0; i < 10; ++i) {
      remove.push_back({static_cast<NodeId>(wrng.Below(num_nodes)),
                        static_cast<Symbol>(wrng.Below(4)),
                        static_cast<NodeId>(wrng.Below(num_nodes))});
    }
    db.ApplyDelta(add, remove);
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  // Eventually the background fold lands; force the tail for determinism.
  db.CompactIndexNow();
  EXPECT_FALSE(db.graph_index()->has_delta());
}

TEST(DatabaseDelta, ResultCacheEntriesMissAfterSnapshotSwap) {
  Database db(NamedDemo());
  ResultCache cache(/*capacity=*/16, /*max_rows=*/128);
  GraphIndexPtr old_snap = db.graph_index();
  auto result = std::make_shared<CachedResult>();
  result->arity = 1;
  result->rows = {{"eva"}};
  cache.Insert("q1", old_snap, result);
  ASSERT_NE(cache.Lookup("q1", old_snap), nullptr);

  GraphMutation m;
  m.add_edges.push_back({"eva", "advisor", "leo"});
  db.ApplyDelta(m);
  GraphIndexPtr new_snap = db.graph_index();
  ASSERT_NE(old_snap.get(), new_snap.get());
  // Keyed on the old snapshot: the new one misses — invalidation IS the
  // snapshot swap, with no extra bookkeeping on the delta path.
  EXPECT_EQ(cache.Lookup("q1", new_snap), nullptr);
}

}  // namespace
}  // namespace ecrpq
