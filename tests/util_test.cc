// Status/Result semantics and the deterministic RNG.

#include <gtest/gtest.h>

#include <set>

#include "util/random.h"
#include "util/status.h"

namespace ecrpq {
namespace {

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arity");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultT, ValueAndError) {
  Result<int> ok(41);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 41);
  ok.value() += 1;
  EXPECT_EQ(ok.ValueOrDie(), 42);

  Result<int> err(Status::NotFound("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);

  // Move-out works.
  Result<std::string> str(std::string("payload"));
  std::string moved = std::move(str).value();
  EXPECT_EQ(moved, "payload");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng c(124);
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 10; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowAndRangeBounds) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Below(5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all residues hit
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
  // p = 0.5 is neither always-true nor always-false over many draws.
  int heads = 0;
  for (int i = 0; i < 1000; ++i) heads += rng.Chance(0.5);
  EXPECT_GT(heads, 300);
  EXPECT_LT(heads, 700);
}

TEST(Rng, PickCoversVector) {
  Rng rng(11);
  std::vector<int> items = {10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Pick(items));
  EXPECT_EQ(seen.size(), 3u);
}

}  // namespace
}  // namespace ecrpq
