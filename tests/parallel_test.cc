// Concurrency correctness: the morsel-driven parallel execution layer
// (core/parallel.h, util/thread_pool.h) must be invisible in results —
// identical answer sets and engine counters at every thread count — and
// the api layer must serve concurrent executions on one shared Database
// while the graph mutates through the snapshot protocol. Cancellation
// (external kill, limit/exists pushdown) must stop workers promptly.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/api.h"
#include "core/evaluator.h"
#include "core/parallel.h"
#include "graph/generators.h"
#include "query/parser.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace ecrpq {
namespace {

GraphDb SmallDag(uint64_t seed) {
  Rng rng(seed);
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  return LayeredGraph(alphabet, 4, 2, 2, &rng);
}

GraphDb MediumRandom(int nodes, uint64_t seed) {
  Rng rng(seed);
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  return RandomGraph(alphabet, nodes, 3 * nodes, &rng);
}

// Random multi-component queries over a small variable pool (the same
// family planner_test uses): single-atom ReachabilityScan components and
// eq-synchronized ProductExpand pairs, sharing variables 1 in 3 draws.
std::string RandomQuery(Rng* rng) {
  static const char* kLanguages[] = {"a*", "b*", "a+", "ab", "(ab)*",
                                     "(a|b)*", "a(a|b)*"};
  static const std::vector<std::vector<int>> kShapes = {
      {1, 1}, {2, 1}, {1, 2}, {1, 1, 1}};
  const std::vector<int>& shape = kShapes[rng->Next() % kShapes.size()];
  auto lang = [&]() { return kLanguages[rng->Next() % 7]; };

  std::string body;
  std::set<std::string> used_vars;
  int next_var = 0;
  int next_path = 0;
  auto pick_var = [&]() {
    std::string v;
    if (!used_vars.empty() && rng->Next() % 3 == 0) {
      auto it = used_vars.begin();
      std::advance(it, rng->Next() % used_vars.size());
      v = *it;
    } else {
      v = "x" + std::to_string(next_var++ % 4);
    }
    used_vars.insert(v);
    return v;
  };
  for (size_t c = 0; c < shape.size(); ++c) {
    if (c > 0) body += ", ";
    if (shape[c] == 1) {
      std::string p = "p" + std::to_string(next_path++);
      body += "(" + pick_var() + ", " + p + ", " + pick_var() + "), ";
      body += std::string(lang()) + "(" + p + ")";
    } else {
      std::string p = "p" + std::to_string(next_path++);
      std::string q = "p" + std::to_string(next_path++);
      body += "(" + pick_var() + ", " + p + ", " + pick_var() + "), ";
      body += "(" + pick_var() + ", " + q + ", " + pick_var() + "), ";
      body += "eq(" + p + ", " + q + ")";
    }
  }
  std::vector<std::string> vars(used_vars.begin(), used_vars.end());
  std::string head;
  const size_t head_arity = std::min<size_t>(vars.size(), 2);
  for (size_t i = 0; i < head_arity; ++i) {
    if (i > 0) head += ", ";
    head += vars[rng->Next() % vars.size()];
  }
  return "Ans(" + head + ") <- " + body;
}

Result<QueryResult> RunAtThreads(const GraphDb& g, const Query& query,
                                 int num_threads) {
  EvalOptions options;
  options.num_threads = num_threads;
  options.build_path_answers = false;
  Evaluator evaluator(&g, options);
  return evaluator.Evaluate(query);
}

constexpr int kGridRows = 224;
constexpr int kGridCols = 224;

// The 50k-node graph of the large-tier property test: a 224x224 labeled
// grid (50176 nodes, ~150k edges over {a, b, c, d}). Built once; every
// query against it is anchored, so each evaluation is ONE product search
// on the shared-frontier (or bidirectional) path rather than 50k seeded
// searches.
const GraphDb& LargeGrid() {
  static const GraphDb* g = [] {
    auto alphabet = Alphabet::FromLabels({"a", "b", "c", "d"});
    Rng rng(2026);
    return new GraphDb(GridGraph(alphabet, kGridRows, kGridCols, &rng));
  }();
  return *g;
}

std::string GridNode(Rng* rng) {
  return "\"g" + std::to_string(rng->Below(kGridRows)) + "_" +
         std::to_string(rng->Below(kGridCols)) + "\"";
}

// `len` concatenated letter atoms: a bounded-length language, so the
// frontier grows geometrically (eq-product branching ~outdeg^2 / labels =
// 2.25 per level on this grid) and then dries up when the length
// automaton runs out — closures stay finite and tractable.
std::string LetterBound(Rng* rng, int len) {
  static const char* kAtoms[] = {"a",     "b",     "c",        "d",
                                 "(a|b)", "(c|d)", "(a|b|c|d)"};
  std::string s;
  for (int i = 0; i < len; ++i) s += kAtoms[rng->Next() % 7];
  return s;
}

// Random ANCHORED queries over the grid. Every family pins at least one
// endpoint to a named node, steering evaluation into the machinery under
// test: the level-synchronous shared-frontier expansion (families 0-2,
// 4), whose eq-product levels grow to hundreds-to-thousands of
// configurations (genuinely multi-lane morsels at 2/4/8 threads, with
// per-lane outboxes, deferred re-inserts and barrier growth), and the
// bidirectional meet (family 3, both endpoints anchored).
std::string RandomLargeGridQuery(Rng* rng) {
  switch (rng->Next() % 5) {
    case 0:  // anchored bounded reachability scan
      return "Ans(y) <- (" + GridNode(rng) + ", p, y), " +
             LetterBound(rng, 2 + static_cast<int>(rng->Below(6))) + "(p)";
    case 1: {  // eq-product, shared anchored start: the big-frontier family
      std::string a = GridNode(rng);
      return "Ans(y, z) <- (" + a + ", p, y), (" + a + ", q, z), eq(p, q), " +
             LetterBound(rng, 4 + static_cast<int>(rng->Below(8))) + "(p)";
    }
    case 2:  // single-letter star: unbounded language, subcritical growth
      return "Ans(y) <- (" + GridNode(rng) + ", p, y), " +
             std::string(1, static_cast<char>('a' + rng->Below(4))) + "*(p)";
    case 3:  // doubly anchored boolean: bidirectional meet-in-the-middle
      return "Ans() <- (" + GridNode(rng) + ", p, " + GridNode(rng) + "), " +
             LetterBound(rng, 4 + static_cast<int>(rng->Below(5))) + "(p)";
    default:  // eq-product with two distinct anchors
      return "Ans(y, z) <- (" + GridNode(rng) + ", p, y), (" + GridNode(rng) +
             ", q, z), eq(p, q), " +
             LetterBound(rng, 4 + static_cast<int>(rng->Below(6))) + "(p)";
  }
}

// Sanitizer builds (CI's TSan/ASan jobs) run a subset of the query
// budget: same families, same per-query cost, ~10x instrumentation
// overhead. The full 100 run in every uninstrumented build.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr uint64_t kLargeGridQueries = 20;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr uint64_t kLargeGridQueries = 20;
#else
constexpr uint64_t kLargeGridQueries = 100;
#endif
#else
constexpr uint64_t kLargeGridQueries = 100;
#endif

// (a) 100 random queries: identical result sets AND identical engine
// counters at num_threads ∈ {1, 2, 8}. The counters are the stronger
// check: parallel lanes explore exactly the configurations the serial
// search does, merged at barriers — nothing double-counted or skipped.
TEST(ParallelExecution, ResultsIdenticalAcrossThreadCounts) {
  for (uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(7000 + seed);
    GraphDb g = SmallDag(seed % 7);
    std::string text = RandomQuery(&rng);
    auto query = ParseQuery(text, g.alphabet());
    ASSERT_TRUE(query.ok()) << text;

    auto serial = RunAtThreads(g, query.value(), 1);
    ASSERT_TRUE(serial.ok()) << text << ": " << serial.status().ToString();
    for (int threads : {2, 8}) {
      auto parallel = RunAtThreads(g, query.value(), threads);
      ASSERT_TRUE(parallel.ok())
          << text << " @" << threads << ": " << parallel.status().ToString();
      EXPECT_EQ(serial.value().tuples(), parallel.value().tuples())
          << text << " @" << threads;
      EXPECT_EQ(serial.value().stats().configs_explored,
                parallel.value().stats().configs_explored)
          << text << " @" << threads;
      EXPECT_EQ(serial.value().stats().arcs_explored,
                parallel.value().stats().arcs_explored)
          << text << " @" << threads;
      EXPECT_EQ(serial.value().stats().start_assignments,
                parallel.value().stats().start_assignments)
          << text << " @" << threads;
    }
  }
}

// The large-graph determinism contract of the epoch machinery: random
// anchored queries on the 50k-node grid must produce byte-identical
// answer sets AND engine counters at num_threads ∈ {1, 2, 4, 8}. Unlike
// the SmallDag test above, these frontiers are big enough that the
// parallel runs genuinely split levels across lanes through
// HybridVisitedTable / EpochVisitedSet — this is the property test that
// pins their exactly-once claiming; CI's TSan job covers the data-race
// side of the same code.
TEST(ParallelExecution, LargeGraphResultsIdenticalAcrossThreadCounts) {
  const GraphDb& g = LargeGrid();
  for (uint64_t seed = 0; seed < kLargeGridQueries; ++seed) {
    Rng rng(40000 + seed);
    std::string text = RandomLargeGridQuery(&rng);
    auto query = ParseQuery(text, g.alphabet());
    ASSERT_TRUE(query.ok()) << text;

    auto serial = RunAtThreads(g, query.value(), 1);
    ASSERT_TRUE(serial.ok()) << text << ": " << serial.status().ToString();
    for (int threads : {2, 4, 8}) {
      auto parallel = RunAtThreads(g, query.value(), threads);
      ASSERT_TRUE(parallel.ok())
          << text << " @" << threads << ": " << parallel.status().ToString();
      EXPECT_EQ(serial.value().tuples(), parallel.value().tuples())
          << text << " @" << threads;
      EXPECT_EQ(serial.value().stats().configs_explored,
                parallel.value().stats().configs_explored)
          << text << " @" << threads;
      EXPECT_EQ(serial.value().stats().arcs_explored,
                parallel.value().stats().arcs_explored)
          << text << " @" << threads;
      EXPECT_EQ(serial.value().stats().start_assignments,
                parallel.value().stats().start_assignments)
          << text << " @" << threads;
    }
  }
}

// deterministic=false may reorder emission but never changes the answer
// set (ExecuteAll sorts canonically, so equality is exact).
TEST(ParallelExecution, NonDeterministicModeSameAnswerSet) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(9100 + seed);
    GraphDb g = SmallDag(seed % 5);
    std::string text = RandomQuery(&rng);
    auto query = ParseQuery(text, g.alphabet());
    ASSERT_TRUE(query.ok()) << text;
    auto serial = RunAtThreads(g, query.value(), 1);
    ASSERT_TRUE(serial.ok());
    EvalOptions options;
    options.num_threads = 8;
    options.deterministic = false;
    options.build_path_answers = false;
    Evaluator evaluator(&g, options);
    auto loose = evaluator.Evaluate(query.value());
    ASSERT_TRUE(loose.ok()) << text;
    EXPECT_EQ(serial.value().tuples(), loose.value().tuples()) << text;
  }
}

// (b) One shared Database: 8 client threads × 50 executions each while a
// writer thread mutates the graph (MutateGraph) and invalidates the
// snapshot. Every execution must succeed against SOME consistent
// snapshot; the plan cache serves all clients. Run under TSan in CI.
TEST(ParallelServing, ConcurrentExecuteWithGraphMutation) {
  DatabaseOptions options;
  options.eval.num_threads = 2;  // intra-query lanes under inter-query load
  options.eval.build_path_answers = false;
  Rng rng(11);
  Database db(
      LayeredGraph(Alphabet::FromLabels({"a", "b"}), 8, 4, 2, &rng),
      options);

  const std::vector<std::string> texts = {
      "Ans(x, y) <- (x, p, y), a*(p)",
      "Ans(x, z) <- (x, p, y), (y, q, z), a*(p), b*(q)",
      "Ans(y, z) <- (x, p, y), (x, q, z), eq(p, q)",
  };

  constexpr int kClients = 8;
  constexpr int kPerClient = 50;
  std::atomic<int> failures{0};
  std::atomic<bool> writer_done{false};

  std::thread writer([&] {
    for (int i = 0; i < 25; ++i) {
      db.MutateGraph([&](GraphDb& g) {
        NodeId u = static_cast<NodeId>(i % g.num_nodes());
        NodeId v = static_cast<NodeId>((i * 7 + 3) % g.num_nodes());
        g.AddEdge(u, i % 2 == 0 ? "a" : "b", v);
      });
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    writer_done.store(true);
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const std::string& text = texts[(c + i) % texts.size()];
        auto prepared = db.Prepare(text);
        if (!prepared.ok()) {
          ++failures;
          continue;
        }
        if (i % 3 == 0) {
          // Cursor path (lazy Run under the read guard).
          ExecuteOptions exec;
          exec.limit = 5;
          auto cursor = prepared.value().Execute({}, exec);
          if (!cursor.ok()) {
            ++failures;
            continue;
          }
          while (cursor.value().Next()) {
          }
          if (!cursor.value().status().ok()) ++failures;
        } else {
          auto result = prepared.value().ExecuteAll();
          if (!result.ok()) ++failures;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  writer.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(writer_done.load());
  EXPECT_GT(db.plan_cache_hits(), 0u);
  // The mutated graph is visible to post-drain executions.
  auto after = db.Execute(texts[0]);
  ASSERT_TRUE(after.ok());
}

// MutateGraph invalidates the index snapshot and cached plans: answers
// reflect the new edges on the next execution.
TEST(ParallelServing, MutateGraphRefreshesSnapshot) {
  GraphDb g;
  NodeId a = g.AddNode("a0");
  NodeId b = g.AddNode("b0");
  g.AddNode("c0");
  g.AddEdge(a, "a", b);
  Database db(std::move(g));
  auto prepared = db.Prepare("Ans(x, y) <- (x, p, y), a+(p)");
  ASSERT_TRUE(prepared.ok());
  auto before = prepared.value().ExecuteAll();
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().tuples().size(), 1u);

  db.MutateGraph([](GraphDb& graph) {
    graph.AddEdge(*graph.FindNode("b0"), "a", *graph.FindNode("c0"));
  });
  auto after = prepared.value().ExecuteAll();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().tuples().size(), 3u);  // a→b, b→c, a→c
}

// (c) Cancellation. A token tripped before execution stops the engine at
// its first poll — deterministically Cancelled, with workers never
// ramping up.
TEST(ParallelCancellation, PreCancelledTokenStopsImmediately) {
  // Big enough that the planner does NOT cost-demote the eq component to
  // serial: the morsel driver itself must report Cancelled, not just the
  // serial path.
  GraphDb g = MediumRandom(120, 3);
  DatabaseOptions options;
  options.eval.num_threads = 4;
  options.eval.build_path_answers = false;
  Database db(std::move(g), options);
  auto prepared = db.Prepare("Ans(y, z) <- (x, p, y), (x, q, z), eq(p, q)");
  ASSERT_TRUE(prepared.ok());

  ExecuteOptions exec;
  exec.cancellation = std::make_shared<CancellationToken>();
  exec.cancellation->Cancel();
  auto cursor = prepared.value().Execute({}, exec);
  ASSERT_TRUE(cursor.ok());
  EXPECT_FALSE(cursor.value().Next());
  EXPECT_EQ(cursor.value().status().code(), StatusCode::kCancelled);
}

// Cancelling mid-flight unwinds all lanes promptly: the execution thread
// joins shortly after Cancel() even though the full search would run far
// longer (the workload is an eq-synchronized product over a dense graph).
TEST(ParallelCancellation, MidRunCancelUnwindsPromptly) {
  GraphDb g = MediumRandom(120, 5);
  DatabaseOptions options;
  options.eval.num_threads = 4;
  options.eval.max_configs = 500000000;  // never the stopping reason
  options.eval.build_path_answers = false;
  Database db(std::move(g), options);
  auto prepared = db.Prepare(
      "Ans(y, z) <- (x, p, y), (x, q, z), (y, r, z), eq(p, q), eq(q, r)");
  ASSERT_TRUE(prepared.ok());

  ExecuteOptions exec;
  exec.cancellation = std::make_shared<CancellationToken>();
  std::atomic<bool> done{false};
  Status status;
  std::thread runner([&] {
    auto cursor = prepared.value().Execute({}, exec);
    ASSERT_TRUE(cursor.ok());
    cursor.value().Next();
    status = cursor.value().status();
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  exec.cancellation->Cancel();
  auto cancel_time = std::chrono::steady_clock::now();
  runner.join();
  auto unwind = std::chrono::steady_clock::now() - cancel_time;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(unwind).count(),
            30);
  // Cancelled when the kill landed mid-run; OK only if the query finished
  // inside the 30ms head start (possible on a fast machine).
  if (done.load() && !status.ok()) {
    EXPECT_EQ(status.code(), StatusCode::kCancelled);
  }
}

// limit/exists pushdown still terminates early under parallel execution
// (the emitter trips the shared token so lanes do not keep expanding).
TEST(ParallelCancellation, LimitAndExistsUnderParallelism) {
  GraphDb g = MediumRandom(50, 9);
  DatabaseOptions options;
  options.eval.num_threads = 8;
  options.eval.build_path_answers = false;
  Database db(std::move(g), options);

  auto prepared = db.Prepare("Ans(x, y) <- (x, p, y), a*(p)");
  ASSERT_TRUE(prepared.ok());
  EXPECT_TRUE(prepared.value().Exists().value());

  ExecuteOptions exec;
  exec.limit = 3;
  auto cursor = prepared.value().Execute({}, exec);
  ASSERT_TRUE(cursor.ok());
  int rows = 0;
  while (cursor.value().Next()) ++rows;
  EXPECT_EQ(rows, 3);
  EXPECT_TRUE(cursor.value().status().ok());
}

// EvalStats::Merge: counters add, operator profiles append, the engine
// tag is adopted when unset — the barrier-point primitive behind all of
// the above.
TEST(ParallelStats, MergeAccumulates) {
  EvalStats a;
  a.engine = "product";
  a.configs_explored = 10;
  a.arcs_explored = 20;
  a.start_assignments = 3;
  OperatorStats op_a;
  op_a.op = "ProductExpand";
  op_a.threads = 4;
  a.operators.push_back(op_a);

  EvalStats b;
  b.configs_explored = 5;
  b.arcs_explored = 7;
  b.join_tuples = 2;
  OperatorStats op_b;
  op_b.op = "HashJoin";
  b.operators.push_back(op_b);

  EvalStats merged;
  merged.Merge(a);
  merged.Merge(b);
  EXPECT_EQ(merged.engine, "product");
  EXPECT_EQ(merged.configs_explored, 15u);
  EXPECT_EQ(merged.arcs_explored, 27u);
  EXPECT_EQ(merged.start_assignments, 3u);
  EXPECT_EQ(merged.join_tuples, 2u);
  ASSERT_EQ(merged.operators.size(), 2u);
  EXPECT_EQ(merged.operators[0].op, "ProductExpand");
  EXPECT_EQ(merged.operators[0].threads, 4);
  EXPECT_NE(merged.operators[0].Describe().find("threads=4"),
            std::string::npos);
}

// ShardedVisitedTable: concurrent inserters agree on exactly one winner
// per distinct configuration.
TEST(ParallelStats, ShardedVisitedTableDedup) {
  ConfigCodec codec(/*tracks=*/2, /*relations=*/1, /*num_nodes=*/64);
  ShardedVisitedTable table(codec, /*shards=*/8);
  constexpr int kConfigs = 2000;
  std::atomic<int> inserted{0};
  ThreadPool pool(3);
  pool.RunOnWorkers(4, [&](int lane) {
    (void)lane;
    for (int i = 0; i < kConfigs; ++i) {
      ProductConfig c;
      c.padmask = i % 3;
      c.nodes = {i % 64, (i / 2) % 64};
      c.subset_ids = {i % 5};
      if (table.Insert(c)) inserted.fetch_add(1);
    }
  });
  // Distinct (padmask, nodes, subset) triples generated above:
  std::set<std::tuple<uint32_t, NodeId, NodeId, int>> distinct;
  for (int i = 0; i < kConfigs; ++i) {
    distinct.insert({static_cast<uint32_t>(i % 3), i % 64, (i / 2) % 64,
                     i % 5});
  }
  EXPECT_EQ(inserted.load(), static_cast<int>(distinct.size()));
  EXPECT_EQ(table.size(), distinct.size());
}

// EpochVisitedSet: the lock-free packed-code set must hand out exactly
// one kNew per distinct code across racing lanes, park inserts at the
// occupancy gate as kDeferred (never losing or double-claiming them), and
// come back exact after barrier growth — including the all-ones code,
// whose stored form would wrap to the empty-slot marker and so lives in a
// dedicated side flag.
TEST(ParallelStats, EpochVisitedSetExactlyOnceAcrossDeferralAndGrowth) {
  EpochVisitedSet set;
  // 3000 distinct codes >> the initial gate (1024 - 256 = 768 slots), so
  // every lane hits deferrals mid-run; MixHash64 is a bijection, so the
  // codes really are distinct.
  std::vector<uint64_t> codes;
  for (uint64_t i = 0; i < 3000; ++i) codes.push_back(MixHash64(i));
  codes.push_back(~uint64_t{0});
  constexpr int kLanes = 4;
  std::atomic<int> news{0};
  std::vector<std::vector<uint64_t>> deferred(kLanes);
  ThreadPool pool(kLanes - 1);
  pool.RunOnWorkers(kLanes, [&](int lane) {
    // Each lane walks the universe at a different offset so the same code
    // races in from several lanes at once.
    for (size_t i = 0; i < codes.size(); ++i) {
      const uint64_t code = codes[(i + lane * 97) % codes.size()];
      switch (set.Insert(code)) {
        case VisitedInsert::kNew:
          news.fetch_add(1);
          break;
        case VisitedInsert::kPresent:
          break;
        case VisitedInsert::kDeferred:
          deferred[lane].push_back(code);
          break;
      }
    }
  });
  uint64_t pending = 0;
  for (const auto& d : deferred) pending += d.size();
  EXPECT_GT(pending, 0u);  // the gate actually engaged
  // The level-barrier protocol: one thread grows until the parked codes
  // fit, then retries them; none may defer again.
  while (set.ShouldGrow(pending)) set.Grow();
  for (const auto& d : deferred) {
    for (uint64_t code : d) {
      const VisitedInsert r = set.Insert(code);
      ASSERT_NE(r, VisitedInsert::kDeferred);
      if (r == VisitedInsert::kNew) news.fetch_add(1);
    }
  }
  EXPECT_EQ(news.load(), static_cast<int>(codes.size()));
  EXPECT_EQ(set.size(), codes.size());
}

// Partitioned-build / morsel-probe joins: above the row threshold the
// parallel HashJoinOp and SemiJoinFilterOp must produce bit-identical
// tables (rows AND order) to the serial implementations.
TEST(ParallelStats, PartitionedJoinsMatchSerial) {
  Rng rng(31);
  BindingTable left, right;
  left.vars = {0, 1};
  right.vars = {1, 2};
  for (int i = 0; i < 6000; ++i) {
    left.rows.push_back({static_cast<NodeId>(rng.Below(500)),
                         static_cast<NodeId>(rng.Below(200))});
    right.rows.push_back({static_cast<NodeId>(rng.Below(200)),
                          static_cast<NodeId>(rng.Below(500))});
  }
  // Distinct rows (the BindingTable contract).
  auto dedup = [](BindingTable* t) {
    std::set<std::vector<NodeId>> seen;
    std::vector<std::vector<NodeId>> rows;
    for (auto& row : t->rows) {
      if (seen.insert(row).second) rows.push_back(std::move(row));
    }
    t->rows = std::move(rows);
  };
  dedup(&left);
  dedup(&right);
  ASSERT_GE(left.rows.size() + right.rows.size(), 4096u);

  EvalStats serial_stats, parallel_stats;
  BindingTable serial_join = HashJoinOp(left, right, serial_stats, 1);
  BindingTable parallel_join = HashJoinOp(left, right, parallel_stats, 4);
  EXPECT_EQ(serial_join.vars, parallel_join.vars);
  EXPECT_EQ(serial_join.rows, parallel_join.rows);  // content AND order
  EXPECT_EQ(serial_stats.join_tuples, parallel_stats.join_tuples);
  ASSERT_EQ(parallel_stats.operators.size(), 1u);
  EXPECT_EQ(parallel_stats.operators[0].threads, 4);

  BindingTable serial_target = left, parallel_target = left;
  EvalStats semi_serial, semi_parallel;
  bool shrank_serial =
      SemiJoinFilterOp(&serial_target, right, semi_serial, 1);
  bool shrank_parallel =
      SemiJoinFilterOp(&parallel_target, right, semi_parallel, 4);
  EXPECT_EQ(shrank_serial, shrank_parallel);
  EXPECT_EQ(serial_target.rows, parallel_target.rows);
}

// The planner records its chosen per-operator parallelism in Explain.
TEST(ParallelPlanning, ExplainRecordsParallelism) {
  DatabaseOptions options;
  options.eval.num_threads = 4;
  Database db(MediumRandom(40, 2), options);
  auto prepared =
      db.Prepare("Ans(x, z) <- (x, p, y), (y, q, z), a*(p), b*(q)");
  ASSERT_TRUE(prepared.ok());
  Explanation explanation = prepared.value().Explain();
  ASSERT_NE(explanation.plan, nullptr);
  EXPECT_EQ(explanation.plan->num_threads, 4);
  for (const PlannedComponent& pc : explanation.plan->components) {
    EXPECT_GE(pc.threads, 1);
    EXPECT_LE(pc.threads, 4);
  }
  EXPECT_NE(explanation.plan_text.find("parallelism="), std::string::npos);
}

}  // namespace
}  // namespace ecrpq
