// The general ECRPQ product engine (Theorems 5.1, 6.1, 6.3) on the paper's
// own example queries.

#include <gtest/gtest.h>

#include "core/eval_product.h"
#include "core/evaluator.h"
#include "graph/generators.h"
#include "query/parser.h"

namespace ecrpq {
namespace {

QueryResult Eval(const GraphDb& g, std::string_view text,
                 Engine engine = Engine::kProduct) {
  auto query = ParseQuery(text, g.alphabet());
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  EvalOptions options;
  options.engine = engine;
  Evaluator evaluator(&g, options);
  auto result = evaluator.Evaluate(query.value());
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// The squared-strings ECRPQ of the introduction:
//   Ans(x, y) <- (x, π1, z), (z, π2, y), π1 = π2.
TEST(ProductEngine, SquaredStrings) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  // Word abab: squared (w=ab); word aba: not squared... (odd length).
  GraphDb squared = WordGraph(alphabet, {0, 1, 0, 1});
  QueryResult r = Eval(
      squared, "Ans(x, y) <- (x, pi1, z), (z, pi2, y), eq(pi1, pi2)");
  // Pairs (wi, wj) connected by a squared-string path: all (wi, wi) via
  // empty paths, plus (w0, w4) via abab, plus (w1,w3)? b vs a — no, plus
  // (w0,w2) via aa? label is ab|ab... (w0..w2) = "ab" split "a","b": not
  // equal. (w1, w3) = "ba" -> "b","a": no. (w2, w4) = "ab": no.
  // (w0, w4): split "ab"/"ab": yes.
  std::set<std::vector<NodeId>> expected;
  for (NodeId v = 0; v < squared.num_nodes(); ++v) expected.insert({v, v});
  expected.insert({*squared.FindNode("w0"), *squared.FindNode("w4")});
  std::set<std::vector<NodeId>> actual(r.tuples().begin(), r.tuples().end());
  EXPECT_EQ(actual, expected);
}

// Proposition 3.2's separating query: nodes connected by a^m b^m.
TEST(ProductEngine, EqualBlocksAmBm) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb good = WordGraph(alphabet, {0, 0, 1, 1});   // aabb
  GraphDb bad = WordGraph(alphabet, {0, 0, 1});       // aab
  const char* q =
      "Ans(x, y) <- (x, pi1, z), (z, pi2, y), a+(pi1), b+(pi2), "
      "el(pi1, pi2)";
  QueryResult r_good = Eval(good, q);
  ASSERT_EQ(r_good.tuples().size(), 2u);  // ab (w1..w3) and aabb (w0..w4)
  QueryResult r_bad = Eval(bad, q);
  ASSERT_EQ(r_bad.tuples().size(), 1u);   // only ab at (w1, w3)
}

// Section 4: a^n b^n c^n via two equal-length constraints.
TEST(ProductEngine, AnBnCn) {
  auto alphabet = Alphabet::FromLabels({"a", "b", "c"});
  GraphDb good = WordGraph(alphabet, {0, 0, 1, 1, 2, 2});  // aabbcc
  GraphDb bad = WordGraph(alphabet, {0, 0, 1, 1, 2});      // aabbc
  const char* q =
      "Ans(x, y) <- (x, p1, z1), (z1, p2, z2), (z2, p3, y), "
      "a*(p1), b*(p2), c*(p3), el(p1, p2), el(p2, p3)";
  // good: (w0, w6) with n=2, plus n=0 (empty everywhere) for all (v,v).
  // No other pair: aabbcc has no proper aⁿbⁿcⁿ substring (e.g. w1..w5
  // spells "abbc").
  QueryResult r_good = Eval(good, q);
  std::set<std::vector<NodeId>> actual(r_good.tuples().begin(),
                                       r_good.tuples().end());
  EXPECT_TRUE(actual.count({*good.FindNode("w0"), *good.FindNode("w6")}));
  EXPECT_FALSE(actual.count({*good.FindNode("w1"), *good.FindNode("w5")}));
  EXPECT_EQ(actual.size(), 7u + 1u);  // 7 diagonal pairs + (w0, w6)

  QueryResult r_bad = Eval(bad, q);
  std::set<std::vector<NodeId>> bad_actual(r_bad.tuples().begin(),
                                           r_bad.tuples().end());
  EXPECT_FALSE(
      bad_actual.count({*bad.FindNode("w0"), *bad.FindNode("w5")}));
}

TEST(ProductEngine, EmptyPathsAndBoolean) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g(alphabet);
  g.AddNode("only");
  // A single node with no edges: the empty path satisfies a*.
  QueryResult r = Eval(g, "Ans() <- (x, p, y), a*(p)");
  EXPECT_TRUE(r.AsBool());
  QueryResult r2 = Eval(g, "Ans() <- (x, p, y), a+(p)");
  EXPECT_FALSE(r2.AsBool());
}

TEST(ProductEngine, ConstantsPinNodes) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = WordGraph(alphabet, {0, 1});
  QueryResult r =
      Eval(g, R"(Ans(y) <- ("w0", p, y), a(p))");
  ASSERT_EQ(r.tuples().size(), 1u);
  EXPECT_EQ(r.tuples()[0][0], *g.FindNode("w1"));
  // Unknown constant is an error.
  auto query = ParseQuery(R"(Ans() <- ("nope", p, y), a(p))", g.alphabet());
  ASSERT_TRUE(query.ok());
  Evaluator evaluator(&g);
  auto result = evaluator.Evaluate(query.value());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ProductEngine, MultiComponentJoin) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  // Graph: x0 -a-> x1 -b-> x2.
  GraphDb g = WordGraph(alphabet, {0, 1});
  // Two independent atoms sharing node variable y:
  //   (x, p, y) with a(p), (y, q, z) with b(q): y must be w1.
  QueryResult r = Eval(g, "Ans(y) <- (x, p, y), (y, q, z), a(p), b(q)");
  ASSERT_EQ(r.tuples().size(), 1u);
  EXPECT_EQ(r.tuples()[0][0], *g.FindNode("w1"));
}

// Proposition 6.8 semantics: a repeated path variable must bind to one
// path satisfying all its atoms' endpoints and languages.
TEST(ProductEngine, RelationalRepetition) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g(alphabet);
  NodeId u = g.AddNode("u");
  NodeId v = g.AddNode("v");
  g.AddEdge(u, Symbol{0}, v);  // a
  g.AddEdge(u, Symbol{1}, v);  // b
  // (x, p, y), a(p), b(p): no single path is both a and b.
  QueryResult r1 = Eval(g, "Ans() <- (x, p, y), a(p), b(p)");
  EXPECT_FALSE(r1.AsBool());
  // Same path variable in two atoms: endpoints must agree.
  QueryResult r2 = Eval(g, "Ans(x, z) <- (x, p, y), (z, p, w), a(p)");
  // p binds one concrete path; x and z are both its start: x == z always.
  for (const auto& tuple : r2.tuples()) {
    EXPECT_EQ(tuple[0], tuple[1]);
  }
  EXPECT_FALSE(r2.tuples().empty());
}

// Theorem 6.3's REI reduction instance: Q_R on the universal word graph is
// true iff the intersection of the expressions is nonempty.
TEST(ProductEngine, ReiReduction) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = UniversalWordGraph(alphabet);
  // a(a|b)* ∩ (a|b)*b ∩ (ab)* = { ab, abab, ... } nonempty.
  QueryResult yes = Eval(
      g,
      "Ans() <- (x1, p1, y1), (x2, p2, y2), (x3, p3, y3), "
      "a.*(p1), .*b(p2), (ab)*(p3), eq(p1, p2), eq(p2, p3)");
  EXPECT_TRUE(yes.AsBool());
  // a(a|b)* ∩ b(a|b)* = ∅.
  QueryResult no = Eval(g,
                        "Ans() <- (x1, p1, y1), (x2, p2, y2), "
                        "a.*(p1), b.*(p2), eq(p1, p2)");
  EXPECT_FALSE(no.AsBool());
}

TEST(ProductEngine, CyclicGraphInfinitePaths) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g = CycleGraph(alphabet, 3, "a");
  // Nodes with an equal-length pair of paths to themselves: all of them.
  QueryResult r = Eval(
      g, "Ans(x) <- (x, p, x), (x, q, x), el(p, q), a+(p), a+(q)");
  EXPECT_EQ(r.tuples().size(), 3u);
}

TEST(ProductEngine, PrefixRelationAcrossTracks) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = WordGraph(alphabet, {0, 1, 0});  // aba
  // π1 strict prefix of π2, both from w0.
  QueryResult r = Eval(g,
                       "Ans(u, v) <- (x, p1, u), (x, p2, v), "
                       "strict_prefix(p1, p2)");
  // p1 = ε, p2 any nonempty: (w0, w1), (w0, w2), (w0, w3); p1 = a,
  // p2 = ab/aba: (w1, w2), (w1, w3); p1 = ab: (w2, w3).
  EXPECT_EQ(r.tuples().size(), 6u);
}

TEST(ProductEngine, RejectsLinearAtoms) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g = CycleGraph(alphabet, 2, "a");
  auto query = ParseQuery("Ans() <- (x, p, y), len(p) >= 1", g.alphabet());
  ASSERT_TRUE(query.ok());
  auto result = EvaluateProduct(g, query.value(), EvalOptions{});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ProductEngine, MaxConfigsGuard) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g = CycleGraph(alphabet, 5, "a");
  auto query = ParseQuery(
      "Ans() <- (x, p, y), (x, q, y), el(p, q)", g.alphabet());
  ASSERT_TRUE(query.ok());
  EvalOptions options;
  options.max_configs = 3;
  auto result = EvaluateProduct(g, query.value(), options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(ProductEngine, ComponentsMatchJointEvaluation) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  Rng rng(3);
  GraphDb g = RandomGraph(alphabet, 5, 12, &rng);
  const char* q =
      "Ans(x, y) <- (x, p, y), (x, q, y), el(p, q), (y, r, z), a*(r)";
  auto query = ParseQuery(q, g.alphabet());
  ASSERT_TRUE(query.ok());
  EvalOptions with;
  with.use_components = true;
  EvalOptions without;
  without.use_components = false;
  auto r1 = EvaluateProduct(g, query.value(), with);
  auto r2 = EvaluateProduct(g, query.value(), without);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r1.value().tuples(), r2.value().tuples());
}

}  // namespace
}  // namespace ecrpq
