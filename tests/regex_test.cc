// Regex parsing, printing, and round-trips.

#include <gtest/gtest.h>

#include "automata/operations.h"
#include "automata/regex.h"

namespace ecrpq {
namespace {

TEST(RegexParser, BasicForms) {
  Alphabet alphabet;
  auto re = ParseRegex("a(b|c)*d?", &alphabet);
  ASSERT_TRUE(re.ok()) << re.status().ToString();
  Nfa nfa = re.value()->ToNfa(alphabet.size());
  auto word = [&](std::string_view s) {
    return alphabet.WordFromChars(s).ValueOrDie();
  };
  EXPECT_TRUE(nfa.Accepts(word("a")));
  EXPECT_TRUE(nfa.Accepts(word("abcd")));
  EXPECT_TRUE(nfa.Accepts(word("accc")));
  EXPECT_FALSE(nfa.Accepts(word("ad" "d")));
  EXPECT_FALSE(nfa.Accepts(word("")));
}

TEST(RegexParser, QuotedMultiCharLabels) {
  Alphabet alphabet;
  auto re = ParseRegex("'advisor'+", &alphabet);
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(alphabet.size(), 1);
  EXPECT_EQ(alphabet.Label(0), "advisor");
  Nfa nfa = re.value()->ToNfa(1);
  EXPECT_TRUE(nfa.Accepts({0, 0}));
  EXPECT_FALSE(nfa.Accepts({}));
}

TEST(RegexParser, EpsilonAndEmptySet) {
  Alphabet alphabet;
  alphabet.Intern("a");
  auto eps = ParseRegex("\\e", &alphabet);
  ASSERT_TRUE(eps.ok());
  EXPECT_TRUE(eps.value()->ToNfa(1).AcceptsEmptyWord());
  auto empty = ParseRegex("\\0", &alphabet);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(IsEmpty(empty.value()->ToNfa(1)));
  // ε | a accepts both.
  auto mix = ParseRegex("\\e|a", &alphabet);
  ASSERT_TRUE(mix.ok());
  Nfa nfa = mix.value()->ToNfa(1);
  EXPECT_TRUE(nfa.AcceptsEmptyWord());
  EXPECT_TRUE(nfa.Accepts({0}));
}

TEST(RegexParser, AnySymbol) {
  Alphabet alphabet;
  alphabet.Intern("a");
  alphabet.Intern("b");
  auto re = ParseRegex(".*", &alphabet);
  ASSERT_TRUE(re.ok());
  Nfa nfa = re.value()->ToNfa(2);
  EXPECT_TRUE(nfa.Accepts({0, 1, 0}));
}

TEST(RegexParser, Errors) {
  Alphabet alphabet;
  EXPECT_FALSE(ParseRegex("(a", &alphabet).ok());
  EXPECT_FALSE(ParseRegex("a)", &alphabet).ok());
  EXPECT_FALSE(ParseRegex("'unterminated", &alphabet).ok());
  EXPECT_FALSE(ParseRegex("\\q", &alphabet).ok());
  Alphabet strict;
  strict.Intern("a");
  EXPECT_FALSE(ParseRegexStrict("b", strict).ok());
  EXPECT_TRUE(ParseRegexStrict("a", strict).ok());
}

TEST(RegexPrinter, RoundTrip) {
  Alphabet alphabet;
  const char* cases[] = {"a(b|c)*", "ab|cd", "(a|b)?c+", "a'long label'b"};
  for (const char* text : cases) {
    auto re = ParseRegex(text, &alphabet);
    ASSERT_TRUE(re.ok()) << text;
    std::string printed = re.value()->ToString(alphabet);
    auto reparsed = ParseRegex(printed, &alphabet);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_TRUE(AreEquivalent(re.value()->ToNfa(alphabet.size()),
                              reparsed.value()->ToNfa(alphabet.size())))
        << text << " vs " << printed;
  }
}

TEST(RegexBuilders, LiteralAndAll) {
  Alphabet alphabet;
  Symbol a = alphabet.Intern("a");
  Symbol b = alphabet.Intern("b");
  RegexPtr lit = Regex::Literal({a, b, a});
  Nfa nfa = lit->ToNfa(2);
  EXPECT_TRUE(nfa.Accepts({a, b, a}));
  EXPECT_FALSE(nfa.Accepts({a, b}));
  RegexPtr any_of = Regex::UnionAll({Regex::Letter(a), Regex::Letter(b)});
  EXPECT_TRUE(any_of->ToNfa(2).Accepts({b}));
  EXPECT_TRUE(IsEmpty(Regex::UnionAll({})->ToNfa(2)));
  EXPECT_TRUE(Regex::ConcatAll({})->ToNfa(2).AcceptsEmptyWord());
}

}  // namespace
}  // namespace ecrpq
