// Convolution encoding and the regular-relation algebra (Section 2).

#include <gtest/gtest.h>

#include "relations/builtin.h"
#include "relations/relation.h"
#include "relations/tuple_regex.h"

namespace ecrpq {
namespace {

Word W(std::initializer_list<int> symbols) {
  Word w;
  for (int s : symbols) w.push_back(s);
  return w;
}

TEST(Convolution, EncodeDecodeRoundTrip) {
  TupleAlphabet ta(2, 2);
  EXPECT_EQ(ta.num_symbols(), 9);
  TupleLetter letter = {0, kPad};
  Symbol id = ta.Encode(letter);
  EXPECT_EQ(ta.Decode(id), letter);
  EXPECT_EQ(ta.Component(id, 0), 0);
  EXPECT_EQ(ta.Component(id, 1), kPad);
  EXPECT_EQ(ta.PadMask(id), 2u);
}

TEST(Convolution, PaperExample) {
  // s1 = aba, s2 = babb => [(s1,s2)] = (a,b)(b,a)(a,b)(⊥,b).
  TupleAlphabet ta(2, 2);
  Symbol a = 0, b = 1;
  Word conv = Convolve(ta, {W({a, b, a}), W({b, a, b, b})});
  ASSERT_EQ(conv.size(), 4u);
  EXPECT_EQ(ta.Decode(conv[0]), TupleLetter({a, b}));
  EXPECT_EQ(ta.Decode(conv[3]), TupleLetter({kPad, b}));
  auto back = Deconvolve(ta, conv);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value()[0], W({a, b, a}));
  EXPECT_EQ(back.value()[1], W({b, a, b, b}));
}

TEST(Convolution, InvalidWords) {
  TupleAlphabet ta(2, 2);
  Word pad_then_letter = {ta.Encode({kPad, 0}), ta.Encode({0, 0})};
  EXPECT_FALSE(IsValidConvolution(ta, pad_then_letter));
  Word with_all_pad = {ta.Encode({0, 0}), ta.AllPadId()};
  EXPECT_FALSE(IsValidConvolution(ta, with_all_pad));
  Word fine = {ta.Encode({0, 0}), ta.Encode({kPad, 0})};
  EXPECT_TRUE(IsValidConvolution(ta, fine));
}

TEST(RegularRelation, ValidityEnforced) {
  // An NFA accepting an invalid word gets sanitized by the constructor.
  TupleAlphabet ta(2, 2);
  Nfa nfa(ta.num_symbols());
  StateId s0 = nfa.AddState();
  StateId s1 = nfa.AddState();
  StateId s2 = nfa.AddState();
  nfa.SetInitial(s0);
  nfa.SetAccepting(s2);
  nfa.AddTransition(s0, ta.Encode({kPad, 0}), s1);
  nfa.AddTransition(s1, ta.Encode({0, 0}), s2);  // letter after pad: invalid
  RegularRelation rel(2, 2, std::move(nfa));
  EXPECT_TRUE(rel.IsEmpty());
}

TEST(RegularRelation, MembershipAndEnumeration) {
  RegularRelation prefix = PrefixRelation(2);
  EXPECT_TRUE(prefix.Contains({W({}), W({})}));
  EXPECT_TRUE(prefix.Contains({W({}), W({0})}));
  EXPECT_TRUE(prefix.Contains({W({0, 1}), W({0, 1, 1})}));
  EXPECT_FALSE(prefix.Contains({W({1}), W({0, 1})}));
  EXPECT_FALSE(prefix.Contains({W({0, 0}), W({0})}));
  EXPECT_FALSE(prefix.IsEmpty());
  EXPECT_TRUE(prefix.IsInfinite());
  auto member = prefix.AnyMember();
  ASSERT_TRUE(member.has_value());
  EXPECT_TRUE(prefix.Contains(*member));
  auto members = prefix.EnumerateMembers(10, 2);
  EXPECT_EQ(members.size(), 10u);
  for (const auto& m : members) EXPECT_TRUE(prefix.Contains(m));
}

TEST(RelationAlgebra, IntersectUnionComplement) {
  RegularRelation eq = EqualityRelation(2);
  RegularRelation el = EqualLengthRelation(2);
  // eq ⊆ el, so eq ∩ el = eq and eq ∪ el = el.
  auto inter = RegularRelation::Intersect(eq, el);
  ASSERT_TRUE(inter.ok());
  EXPECT_TRUE(inter.value().Contains({W({0, 1}), W({0, 1})}));
  EXPECT_FALSE(inter.value().Contains({W({0, 1}), W({1, 1})}));

  auto uni = RegularRelation::Union(eq, el);
  ASSERT_TRUE(uni.ok());
  EXPECT_TRUE(uni.value().Contains({W({0, 1}), W({1, 1})}));
  EXPECT_FALSE(uni.value().Contains({W({0}), W({0, 0})}));

  // Complement of el within valid convolutions: different lengths.
  RegularRelation not_el = el.Complement();
  EXPECT_TRUE(not_el.Contains({W({0}), W({0, 0})}));
  EXPECT_FALSE(not_el.Contains({W({0}), W({1})}));
}

TEST(RelationAlgebra, ArityMismatchRejected) {
  RegularRelation eq = EqualityRelation(2);
  RegularRelation eq3 = AllEqualRelation(2, 3);
  EXPECT_FALSE(RegularRelation::Intersect(eq, eq3).ok());
  RegularRelation eq_other = EqualityRelation(3);
  EXPECT_FALSE(RegularRelation::Union(eq, eq_other).ok());
}

TEST(RelationAlgebra, PermuteTapes) {
  RegularRelation shorter = ShorterRelation(2);
  auto longer = shorter.PermuteTapes({1, 0});
  ASSERT_TRUE(longer.ok());
  EXPECT_TRUE(longer.value().Contains({W({0, 0}), W({0})}));
  EXPECT_FALSE(longer.value().Contains({W({0}), W({0, 0})}));
  EXPECT_FALSE(shorter.PermuteTapes({0, 0}).ok());
  EXPECT_FALSE(shorter.PermuteTapes({0}).ok());
}

TEST(RelationAlgebra, CylindrifyIgnoresOtherTapes) {
  RegularRelation eq = EqualityRelation(2);
  auto lifted = eq.Cylindrify(3, {0, 2});
  ASSERT_TRUE(lifted.ok());
  // Tapes 0 and 2 equal; tape 1 arbitrary (longer or shorter).
  EXPECT_TRUE(lifted.value().Contains({W({0, 1}), W({}), W({0, 1})}));
  EXPECT_TRUE(lifted.value().Contains(
      {W({0, 1}), W({1, 1, 1, 1, 1}), W({0, 1})}));
  EXPECT_FALSE(lifted.value().Contains({W({0, 1}), W({}), W({0, 0})}));
}

TEST(RelationAlgebra, ProjectDropsTapes) {
  // Project prefix(x, y) to y: all strings (any y has prefix ε).
  RegularRelation prefix = PrefixRelation(2);
  auto proj = prefix.Project({1});
  ASSERT_TRUE(proj.ok());
  EXPECT_TRUE(proj.value().Contains({W({0, 1, 1})}));
  EXPECT_TRUE(proj.value().Contains({W({})}));
  // Project strict-prefix(x, y) to x: x must extend to a longer y, always
  // possible, so again everything.
  auto proj2 = StrictPrefixRelation(2).Project({0});
  ASSERT_TRUE(proj2.ok());
  EXPECT_TRUE(proj2.value().Contains({W({1, 1})}));
}

TEST(RelationAlgebra, JoinSharesTape) {
  // join of shorter(x, y) and shorter(y, z) on y: |x| < |y| < |z|.
  RegularRelation shorter = ShorterRelation(2);
  auto joined = RegularRelation::Join(shorter, 1, shorter, 0);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined.value().arity(), 3);
  EXPECT_TRUE(joined.value().Contains({W({0}), W({0, 0}), W({0, 0, 0})}));
  EXPECT_FALSE(joined.value().Contains({W({0}), W({0, 0}), W({0, 0})}));
}

TEST(RelationAlgebra, ComposeShorter) {
  // shorter ∘ shorter = "shorter by at least 2".
  RegularRelation shorter = ShorterRelation(2);
  auto composed = RegularRelation::Compose(shorter, shorter);
  ASSERT_TRUE(composed.ok());
  EXPECT_TRUE(composed.value().Contains({W({0}), W({0, 0, 0})}));
  EXPECT_FALSE(composed.value().Contains({W({0}), W({0, 0})}));
}

TEST(RelationAlgebra, LengthAbstraction) {
  // Morphism a->b is length-preserving; its abstraction is equal-length.
  RegularRelation morph = MorphismRelation(2, {1, 0});
  RegularRelation abstracted = morph.LengthAbstraction();
  EXPECT_TRUE(abstracted.Contains({W({0, 0}), W({0, 1})}));
  EXPECT_FALSE(abstracted.Contains({W({0}), W({0, 1})}));
}

TEST(RelationAlgebra, UnaryLanguageRoundTrip) {
  Nfa lang(2);
  StateId s0 = lang.AddState();
  StateId s1 = lang.AddState();
  lang.SetInitial(s0);
  lang.SetAccepting(s1);
  lang.AddTransition(s0, 0, s1);
  RegularRelation rel = RegularRelation::FromLanguage(2, lang);
  EXPECT_TRUE(rel.Contains({W({0})}));
  EXPECT_FALSE(rel.Contains({W({1})}));
  auto back = rel.ToLanguageNfa();
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().Accepts(W({0})));
  EXPECT_FALSE(back.value().Accepts(W({1})));
}

TEST(TupleRegex, PrefixByHand) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  auto rel = ParseTupleRegex("([a,a]|[b,b])*([_,a]|[_,b])*", *alphabet);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  RegularRelation prefix = PrefixRelation(2);
  // Hand-built prefix relation equals the builtin on samples.
  for (const auto& m : prefix.EnumerateMembers(30, 3)) {
    EXPECT_TRUE(rel.value().Contains(m));
  }
  EXPECT_FALSE(rel.value().Contains({W({0}), W({1, 1})}));
}

TEST(TupleRegex, Errors) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  EXPECT_FALSE(ParseTupleRegex("[a,a", *alphabet).ok());
  EXPECT_FALSE(ParseTupleRegex("[a,c]*", *alphabet).ok());
  EXPECT_FALSE(ParseTupleRegex("[a,a][b]*", *alphabet).ok());  // arity clash
  EXPECT_FALSE(ParseTupleRegex("[_,_]", *alphabet).ok());      // all-pad
  EXPECT_FALSE(ParseTupleRegex("\\e", *alphabet).ok());        // no arity
  EXPECT_TRUE(ParseTupleRegex("[a,a]*", *alphabet, 2).ok());
  EXPECT_FALSE(ParseTupleRegex("[a,a]*", *alphabet, 3).ok());
}

}  // namespace
}  // namespace ecrpq
