// The Q_len length-abstraction engine (Lemma 6.6 / Theorem 6.7) and the
// arithmetic-progression machinery behind it.

#include <gtest/gtest.h>

#include "core/eval_qlen.h"
#include "core/eval_product.h"
#include "graph/generators.h"
#include "query/parser.h"
#include "relations/builtin.h"

namespace ecrpq {
namespace {

TEST(Qlen, EqualityAbstractsToEqualLength) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  // Word ab: under eq(p,q) with p,q splitting the word, only the empty
  // split works ("a" != "b"); under the length abstraction the middle
  // split (|p| = |q| = 1) works as well.
  GraphDb g = WordGraph(alphabet, {0, 1});
  auto query = ParseQuery(
      "Ans(x, y) <- (x, p, z), (z, q, y), eq(p, q)", g.alphabet());
  ASSERT_TRUE(query.ok());
  EvalOptions options;
  options.build_path_answers = false;
  auto exact = EvaluateProduct(g, query.value(), options);
  ASSERT_TRUE(exact.ok());
  auto qlen = EvaluateQlen(g, query.value(), options);
  ASSERT_TRUE(qlen.ok()) << qlen.status().ToString();
  EXPECT_EQ(qlen.value().stats().engine, "qlen");
  // Exact answers: diagonal only. Qlen: diagonal plus (w0, w2).
  EXPECT_LT(exact.value().tuples().size(), qlen.value().tuples().size());
  std::set<std::vector<NodeId>> qlen_set(qlen.value().tuples().begin(),
                                         qlen.value().tuples().end());
  EXPECT_TRUE(qlen_set.count(
      {*g.FindNode("w0"), *g.FindNode("w2")}));
  // Qlen over-approximates: every exact answer is a Qlen answer.
  for (const auto& t : exact.value().tuples()) {
    EXPECT_TRUE(qlen_set.count(t));
  }
}

TEST(Qlen, ElAbstractionIsExactForEl) {
  // el is already a length relation: Q_len must equal Q exactly.
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  Rng rng(17);
  GraphDb g = RandomGraph(alphabet, 5, 10, &rng);
  auto query = ParseQuery(
      "Ans(x, y) <- (x, p, y), (x, q, y), el(p, q)", g.alphabet());
  ASSERT_TRUE(query.ok());
  EvalOptions options;
  options.build_path_answers = false;
  options.max_configs = 500000;
  auto exact = EvaluateProduct(g, query.value(), options);
  ASSERT_TRUE(exact.ok());
  auto qlen = EvaluateQlen(g, query.value(), options);
  ASSERT_TRUE(qlen.ok());
  EXPECT_EQ(exact.value().tuples(), qlen.value().tuples());
}

TEST(Qlen, ReiInstanceCollapses) {
  // The PSPACE-hard REI family becomes easy under the abstraction: labels
  // are erased, so the intersection constraint turns into a length
  // constraint. Checks it *answers* (the exact engine also works here;
  // the collapse in SIZE is measured by bench_thm67_qlen).
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = UniversalWordGraph(alphabet);
  auto query = ParseQuery(
      "Ans() <- (x1, p1, y1), (x2, p2, y2), a.*(p1), .*b(p2), eq(p1, p2)",
      g.alphabet());
  ASSERT_TRUE(query.ok());
  EvalOptions options;
  options.build_path_answers = false;
  auto qlen = EvaluateQlen(g, query.value(), options);
  ASSERT_TRUE(qlen.ok());
  EXPECT_TRUE(qlen.value().AsBool());
}

TEST(Qlen, RejectsPathHeadsAndLinearAtoms) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g = CycleGraph(alphabet, 2, "a");
  auto with_path = ParseQuery("Ans(p) <- (x, p, y), a*(p)", g.alphabet());
  ASSERT_TRUE(with_path.ok());
  EXPECT_EQ(EvaluateQlen(g, with_path.value(), EvalOptions{}).status().code(),
            StatusCode::kUnimplemented);
  auto with_linear =
      ParseQuery("Ans() <- (x, p, y), len(p) >= 1", g.alphabet());
  ASSERT_TRUE(with_linear.ok());
  EXPECT_EQ(
      EvaluateQlen(g, with_linear.value(), EvalOptions{}).status().code(),
      StatusCode::kFailedPrecondition);
}

TEST(PathLengthSet, ChrobakOnGraphs) {
  auto alphabet = Alphabet::FromLabels({"a"});
  GraphDb g = CycleGraph(alphabet, 3, "a");
  // Lengths from node 0 to node 0: multiples of 3.
  SemilinearSet1D lengths = PathLengthSet(g, 0, 0);
  EXPECT_TRUE(lengths.Contains(0));
  EXPECT_TRUE(lengths.Contains(3));
  EXPECT_TRUE(lengths.Contains(300));
  EXPECT_FALSE(lengths.Contains(1));
  EXPECT_FALSE(lengths.Contains(2));
  // From node 0 to node 1: 1 mod 3.
  SemilinearSet1D to1 = PathLengthSet(g, 0, 1);
  EXPECT_TRUE(to1.Contains(1));
  EXPECT_TRUE(to1.Contains(4));
  EXPECT_FALSE(to1.Contains(3));
}

TEST(PathLengthSet, WithLanguageRestriction) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g(alphabet);
  NodeId u = g.AddNode("u");
  g.AddEdge(u, Symbol{0}, u);  // a loop
  g.AddEdge(u, Symbol{1}, u);  // b loop
  Nfa lang(2);
  {
    // (ab)*: even lengths only.
    StateId s0 = lang.AddState();
    StateId s1 = lang.AddState();
    lang.SetInitial(s0);
    lang.SetAccepting(s0);
    lang.AddTransition(s0, 0, s1);
    lang.AddTransition(s1, 1, s0);
  }
  RegularRelation rel = RegularRelation::FromLanguage(2, lang);
  SemilinearSet1D lengths = PathLengthSet(g, u, u, &rel);
  EXPECT_TRUE(lengths.Contains(0));
  EXPECT_TRUE(lengths.Contains(2));
  EXPECT_FALSE(lengths.Contains(1));
  EXPECT_FALSE(lengths.Contains(7));
}

TEST(IntersectSemilinear, CrtCases) {
  // (1 + 3N) ∩ (2 + 5N): solutions 7, 22, 37, ... = 7 + 15N.
  SemilinearSet1D a({{1, 3}});
  SemilinearSet1D b({{2, 5}});
  SemilinearSet1D inter = IntersectSemilinear(a, b);
  EXPECT_TRUE(inter.Contains(7));
  EXPECT_TRUE(inter.Contains(22));
  EXPECT_FALSE(inter.Contains(10));
  EXPECT_FALSE(inter.Contains(1));
  // Incompatible residues: (0 + 2N) ∩ (1 + 2N) = ∅.
  SemilinearSet1D even({{0, 2}});
  SemilinearSet1D odd({{1, 2}});
  EXPECT_TRUE(IntersectSemilinear(even, odd).IsEmpty());
  // Singleton intersections.
  SemilinearSet1D single({{6, 0}});
  SemilinearSet1D multiples({{0, 3}});
  SemilinearSet1D both = IntersectSemilinear(single, multiples);
  EXPECT_TRUE(both.Contains(6));
  EXPECT_FALSE(both.Contains(9));
  EXPECT_FALSE(both.IsInfinite());
}

// Property: Qlen equals the product engine on length-only relations.
class QlenAgreement : public ::testing::TestWithParam<int> {};

TEST_P(QlenAgreement, MatchesProductOnLengthRelations) {
  Rng rng(GetParam());
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g = RandomGraph(alphabet, 4, 9, &rng);
  for (const char* text :
       {"Ans(x, y) <- (x, p, y), (x, q, y), el(p, q)",
        "Ans(x) <- (x, p, y), (x, q, z), shorter(p, q)",
        "Ans() <- (x, p, y), (y, q, z), shorter_eq(p, q)"}) {
    SCOPED_TRACE(text);
    auto query = ParseQuery(text, g.alphabet());
    ASSERT_TRUE(query.ok());
    EvalOptions options;
    options.build_path_answers = false;
    options.max_configs = 1000000;
    auto exact = EvaluateProduct(g, query.value(), options);
    auto qlen = EvaluateQlen(g, query.value(), options);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    ASSERT_TRUE(qlen.ok()) << qlen.status().ToString();
    EXPECT_EQ(exact.value().tuples(), qlen.value().tuples());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QlenAgreement, ::testing::Range(0, 8));

}  // namespace
}  // namespace ecrpq
