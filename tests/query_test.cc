// Query AST, builder validation, text parser, and structural analysis.

#include <gtest/gtest.h>

#include "query/analysis.h"
#include "query/builder.h"
#include "query/parser.h"
#include "relations/builtin.h"

namespace ecrpq {
namespace {

AlphabetPtr Ab() { return Alphabet::FromLabels({"a", "b"}); }

TEST(Builder, BasicEcrpq) {
  auto alphabet = Ab();
  auto eq = std::make_shared<RegularRelation>(EqualityRelation(2));
  auto query = QueryBuilder()
                   .Atom("x", "pi1", "z")
                   .Atom("z", "pi2", "y")
                   .Relation(eq, {"pi1", "pi2"}, "eq")
                   .Head({"x", "y"})
                   .Build();
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query.value().path_atoms().size(), 2u);
  EXPECT_EQ(query.value().node_variables(),
            (std::vector<std::string>{"x", "z", "y"}));
  EXPECT_EQ(query.value().path_variables(),
            (std::vector<std::string>{"pi1", "pi2"}));
  EXPECT_FALSE(query.value().IsBoolean());
  EXPECT_NE(query.value().ToString().find("eq(pi1, pi2)"),
            std::string::npos);
}

TEST(Builder, ValidationErrors) {
  auto alphabet = Ab();
  auto eq = std::make_shared<RegularRelation>(EqualityRelation(2));
  // No path atoms.
  EXPECT_FALSE(QueryBuilder().Head({}).Build().ok());
  // Arity mismatch.
  EXPECT_FALSE(QueryBuilder()
                   .Atom("x", "p", "y")
                   .Relation(eq, {"p"})
                   .Build()
                   .ok());
  // Unbound path variable in a relation atom.
  EXPECT_FALSE(QueryBuilder()
                   .Atom("x", "p", "y")
                   .Relation(eq, {"p", "q"})
                   .Build()
                   .ok());
  // Head variable not in the body.
  EXPECT_FALSE(
      QueryBuilder().Atom("x", "p", "y").Head({"w"}).Build().ok());
  // Head path variable not in the body.
  EXPECT_FALSE(
      QueryBuilder().Atom("x", "p", "y").Head({}, {"q"}).Build().ok());
  // Mixed alphabets.
  auto eq3 = std::make_shared<RegularRelation>(EqualityRelation(3));
  EXPECT_FALSE(QueryBuilder()
                   .Atom("x", "p", "y")
                   .Atom("x", "q", "y")
                   .Relation(eq, {"p", "q"})
                   .Relation(eq3, {"p", "q"})
                   .Build()
                   .ok());
  // Unbound variable in a linear atom.
  LinearAtom atom;
  atom.terms.push_back({1, "nope", -1});
  EXPECT_FALSE(
      QueryBuilder().Atom("x", "p", "y").Linear(atom).Build().ok());
}

TEST(Parser, SquaredStringsQuery) {
  auto alphabet = Ab();
  auto query =
      ParseQuery("Ans(x, y) <- (x, pi1, z), (z, pi2, y), eq(pi1, pi2)",
                 *alphabet);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query.value().head_nodes().size(), 2u);
  EXPECT_EQ(query.value().relation_atoms().size(), 1u);
  EXPECT_EQ(query.value().relation_atoms()[0].relation->arity(), 2);
}

TEST(Parser, RegexAtomsAndPathHead) {
  auto alphabet = Ab();
  auto query = ParseQuery("Ans(x, p) <- (x, p, y), a*b+(p)", *alphabet);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query.value().head_paths(), std::vector<std::string>{"p"});
  EXPECT_EQ(query.value().head_nodes().size(), 1u);
}

TEST(Parser, TupleRegexAtom) {
  auto alphabet = Ab();
  auto query = ParseQuery(
      "Ans() <- (x, p, y), (x, q, y), ([a,a]|[b,b])*(p, q)", *alphabet);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_TRUE(query.value().IsBoolean());
  EXPECT_EQ(query.value().relation_atoms()[0].relation->arity(), 2);
}

TEST(Parser, ConstantsAndBoolean) {
  auto alphabet = Ab();
  auto query = ParseQuery(R"(Ans() <- ("London", p, "Sydney"), a*(p))",
                          *alphabet);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_TRUE(query.value().path_atoms()[0].from.is_constant);
  EXPECT_EQ(query.value().path_atoms()[0].from.name, "London");
  EXPECT_TRUE(query.value().node_variables().empty());
}

TEST(Parser, LinearAtoms) {
  auto alphabet = Ab();
  auto query = ParseQuery(
      "Ans(x) <- (x, p, y), occ(p, a) - 4*occ(p, b) >= 0, len(p) <= 9",
      *alphabet);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_EQ(query.value().linear_atoms().size(), 2u);
  const LinearAtom& occ = query.value().linear_atoms()[0];
  EXPECT_EQ(occ.terms.size(), 2u);
  EXPECT_EQ(occ.terms[1].coef, -4);
  EXPECT_EQ(occ.cmp, Cmp::kGe);
  const LinearAtom& len = query.value().linear_atoms()[1];
  EXPECT_EQ(len.terms[0].symbol, -1);
  EXPECT_EQ(len.cmp, Cmp::kLe);
  EXPECT_EQ(len.rhs, 9);
}

TEST(Parser, Errors) {
  auto alphabet = Ab();
  EXPECT_FALSE(ParseQuery("Answer(x) <- (x, p, y)", *alphabet).ok());
  EXPECT_FALSE(ParseQuery("Ans(x) (x, p, y)", *alphabet).ok());
  EXPECT_FALSE(ParseQuery("Ans(x) <- (x, p)", *alphabet).ok());
  EXPECT_FALSE(ParseQuery("Ans(x) <- (x, p, y), zzz(q)", *alphabet).ok());
  EXPECT_FALSE(
      ParseQuery("Ans(x) <- (x, p, y), occ(p, zz) >= 1", *alphabet).ok());
  EXPECT_FALSE(ParseQuery("Ans(w) <- (x, p, y)", *alphabet).ok());
}

TEST(Registry, BuiltinsResolve) {
  RelationRegistry registry = RelationRegistry::Default();
  EXPECT_TRUE(registry.Contains("eq"));
  EXPECT_TRUE(registry.Contains("el"));
  EXPECT_TRUE(registry.Contains("prefix"));
  EXPECT_TRUE(registry.Contains("edit2"));
  auto rel = registry.Resolve("el", 3);
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->base_size(), 3);
  // Memoization returns the same instance.
  EXPECT_EQ(registry.Resolve("el", 3).get(), rel.get());
  EXPECT_EQ(registry.Resolve("missing", 2), nullptr);
}

TEST(Analysis, CrpqVsEcrpq) {
  auto alphabet = Ab();
  auto crpq = ParseQuery("Ans(x) <- (x, p, y), a*(p)", *alphabet);
  ASSERT_TRUE(crpq.ok());
  EXPECT_TRUE(Analyze(crpq.value()).is_crpq);

  auto ecrpq = ParseQuery("Ans(x) <- (x, p, y), (x, q, y), el(p, q)",
                          *alphabet);
  ASSERT_TRUE(ecrpq.ok());
  QueryAnalysis analysis = Analyze(ecrpq.value());
  EXPECT_FALSE(analysis.is_crpq);
  EXPECT_EQ(analysis.components.size(), 1u);
}

TEST(Analysis, AcyclicityForest) {
  auto alphabet = Ab();
  // Chain: acyclic.
  auto chain = ParseQuery("Ans(x) <- (x, p, y), (y, q, z)", *alphabet);
  ASSERT_TRUE(chain.ok());
  EXPECT_TRUE(Analyze(chain.value()).is_acyclic);
  // Two parallel atoms between x and y: cyclic (multi-edge).
  auto parallel = ParseQuery("Ans(x) <- (x, p, y), (x, q, y)", *alphabet);
  ASSERT_TRUE(parallel.ok());
  EXPECT_FALSE(Analyze(parallel.value()).is_acyclic);
  // Self-loop atom: cyclic.
  auto loop = ParseQuery("Ans(x) <- (x, p, x)", *alphabet);
  ASSERT_TRUE(loop.ok());
  EXPECT_FALSE(Analyze(loop.value()).is_acyclic);
  // Triangle: cyclic.
  auto triangle = ParseQuery(
      "Ans(x) <- (x, p, y), (y, q, z), (z, r, x)", *alphabet);
  ASSERT_TRUE(triangle.ok());
  EXPECT_FALSE(Analyze(triangle.value()).is_acyclic);
  // Star: acyclic.
  auto star = ParseQuery(
      "Ans(x) <- (x, p, y), (x, q, z), (x, r, w)", *alphabet);
  ASSERT_TRUE(star.ok());
  EXPECT_TRUE(Analyze(star.value()).is_acyclic);
}

TEST(Analysis, Components) {
  auto alphabet = Ab();
  // Two el-linked pairs plus one free atom: 3 components... the two el
  // atoms tie (p,q) and (r,s); t stands alone.
  auto query = ParseQuery(
      "Ans() <- (a, p, b), (c, q, d), (e, r, f), (g, s, h), (i, t, j), "
      "el(p, q), el(r, s)",
      *alphabet);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  QueryAnalysis analysis = Analyze(query.value());
  EXPECT_EQ(analysis.components.size(), 3u);
}

TEST(Analysis, Repetitions) {
  auto alphabet = Ab();
  auto relational = ParseQuery("Ans() <- (x, p, y), (z, p, w)", *alphabet);
  ASSERT_TRUE(relational.ok());
  EXPECT_TRUE(Analyze(relational.value()).has_relational_repetition);

  auto eq = std::make_shared<RegularRelation>(EqualityRelation(2));
  auto regular = QueryBuilder()
                     .Atom("x", "p", "y")
                     .Relation(eq, {"p", "p"})
                     .Build();
  ASSERT_TRUE(regular.ok());
  EXPECT_TRUE(Analyze(regular.value()).has_regular_repetition);
}

TEST(Analysis, LinearAtomsMergeComponents) {
  auto alphabet = Ab();
  auto query = ParseQuery(
      "Ans() <- (a, p, b), (c, q, d), len(p) - len(q) >= 1", *alphabet);
  ASSERT_TRUE(query.ok());
  QueryAnalysis analysis = Analyze(query.value());
  EXPECT_EQ(analysis.components.size(), 1u);
  EXPECT_TRUE(analysis.has_linear_atoms);
  EXPECT_TRUE(analysis.linear_atoms_lengths_only);
}

}  // namespace
}  // namespace ecrpq
