// The Database / PreparedQuery / ResultCursor facade: compile-once /
// stream-many behavior, $parameter binding, cursor early termination, and
// plan-cache hit/eviction behavior.

#include <gtest/gtest.h>

#include "api/api.h"
#include "relations/builtin.h"

namespace ecrpq {
namespace {

// The quickstart advisor graph.
GraphDb AdvisorGraph() {
  GraphDb g;
  NodeId ann = g.AddNode("ann");
  NodeId bob = g.AddNode("bob");
  NodeId eva = g.AddNode("eva");
  NodeId leo = g.AddNode("leo");
  g.AddEdge(ann, "advisor", eva);
  g.AddEdge(bob, "advisor", eva);
  g.AddEdge(eva, "advisor", leo);
  g.AddEdge(bob, "coauthor", ann);
  return g;
}

// A chain a-graph with many reachable pairs, for limit tests.
GraphDb ChainGraph(int n) {
  GraphDb g;
  for (int i = 0; i < n; ++i) g.AddNode("v" + std::to_string(i));
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, "a", i + 1);
  return g;
}

std::vector<std::string> Names(const GraphDb& g,
                               const std::vector<NodeId>& tuple) {
  std::vector<std::string> out;
  for (NodeId v : tuple) out.push_back(g.NodeName(v));
  return out;
}

TEST(Database, PrepareOnceExecuteTwice) {
  Database db(AdvisorGraph());
  auto prepared = db.Prepare(R"(Ans(y) <- ("ann", p, y), 'advisor'+(p))");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  auto first = prepared.value().ExecuteAll();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = prepared.value().ExecuteAll();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first.value().tuples(), second.value().tuples());
  ASSERT_EQ(first.value().tuples().size(), 2u);  // eva, leo
  EXPECT_EQ(Names(db.graph(), first.value().tuples()[0]),
            (std::vector<std::string>{"eva"}));
  EXPECT_EQ(Names(db.graph(), first.value().tuples()[1]),
            (std::vector<std::string>{"leo"}));
}

TEST(Database, MatchesEvaluatorSemantics) {
  // The facade must agree with the engine-level Evaluator on a nontrivial
  // ECRPQ (equal-length paths to a common node).
  GraphDb g = AdvisorGraph();
  auto query = ParseQuery(
      R"(Ans(x, y) <- (x, p, "leo"), (y, q, "leo"), )"
      R"('advisor'+(p), 'advisor'+(q), el(p, q))",
      g.alphabet());
  ASSERT_TRUE(query.ok());
  auto direct = Evaluator(&g).Evaluate(query.value());
  ASSERT_TRUE(direct.ok());

  Database db(AdvisorGraph());
  auto via_facade = db.Execute(
      R"(Ans(x, y) <- (x, p, "leo"), (y, q, "leo"), )"
      R"('advisor'+(p), 'advisor'+(q), el(p, q))");
  ASSERT_TRUE(via_facade.ok()) << via_facade.status().ToString();
  EXPECT_EQ(via_facade.value().tuples(), direct.value().tuples());
}

TEST(PreparedQuery, ParameterBinding) {
  Database db(AdvisorGraph());
  auto prepared = db.Prepare("Ans(y) <- ($who, p, y), 'advisor'+(p)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared.value().parameter_names(),
            (std::vector<std::string>{"who"}));

  auto from_ann = prepared.value().ExecuteAll(Params().Set("who", "ann"));
  ASSERT_TRUE(from_ann.ok()) << from_ann.status().ToString();
  EXPECT_EQ(from_ann.value().tuples().size(), 2u);  // eva, leo

  auto from_eva = prepared.value().ExecuteAll(Params().Set("who", "eva"));
  ASSERT_TRUE(from_eva.ok()) << from_eva.status().ToString();
  ASSERT_EQ(from_eva.value().tuples().size(), 1u);  // leo
  EXPECT_EQ(Names(db.graph(), from_eva.value().tuples()[0]),
            (std::vector<std::string>{"leo"}));
}

TEST(PreparedQuery, ParameterErrors) {
  Database db(AdvisorGraph());
  auto prepared = db.Prepare("Ans(y) <- ($who, p, y), 'advisor'+(p)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  // Unbound parameter.
  auto unbound = prepared.value().ExecuteAll();
  ASSERT_FALSE(unbound.ok());
  EXPECT_EQ(unbound.status().code(), StatusCode::kFailedPrecondition);

  // Bound to a node that does not exist.
  auto unknown_node =
      prepared.value().ExecuteAll(Params().Set("who", "nobody"));
  ASSERT_FALSE(unknown_node.ok());
  EXPECT_EQ(unknown_node.status().code(), StatusCode::kNotFound);

  // Binding a parameter the query does not have.
  auto unknown_param = prepared.value().ExecuteAll(
      Params().Set("who", "ann").Set("other", "bob"));
  ASSERT_FALSE(unknown_param.ok());
  EXPECT_EQ(unknown_param.status().code(), StatusCode::kInvalidArgument);

  // Evaluating a parameterized query through the engine layer directly is
  // a FailedPrecondition, not a crash.
  auto raw = Evaluator(&db.graph()).Evaluate(prepared.value().query());
  ASSERT_FALSE(raw.ok());
  EXPECT_EQ(raw.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ResultCursor, StreamsAndStops) {
  const int n = 12;
  Database db(ChainGraph(n));
  auto prepared = db.Prepare("Ans(x, y) <- (x, p, y), a+(p)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  // Full run: n*(n-1)/2 reachable ordered pairs.
  auto all = prepared.value().ExecuteAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().tuples().size(), static_cast<size_t>(n * (n - 1) / 2));

  // Limited cursor: exactly `limit` rows, then exhausted.
  ExecuteOptions limited;
  limited.limit = 3;
  auto cursor = prepared.value().Execute({}, limited);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  int rows = 0;
  while (cursor.value().Next()) {
    EXPECT_EQ(cursor.value().tuple().size(), 2u);
    ++rows;
  }
  EXPECT_EQ(rows, 3);
  EXPECT_TRUE(cursor.value().status().ok());
  // Early termination did less join work than the full run.
  EXPECT_LT(cursor.value().stats().join_tuples,
            all.value().stats().join_tuples);
}

TEST(ResultCursor, ExistsShortCircuits) {
  Database db(ChainGraph(16));
  auto prepared = db.Prepare("Ans(x, y) <- (x, p, y), a+(p)");
  ASSERT_TRUE(prepared.ok());

  auto cursor = prepared.value().Execute();
  ASSERT_TRUE(cursor.ok());
  EXPECT_TRUE(cursor.value().exists());
  // exists() ran with limit 1: at most one row was materialized.
  EXPECT_EQ(cursor.value().stats().join_tuples, 1u);

  auto yes = prepared.value().Exists();
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(yes.value());

  auto never = db.Exists("Ans() <- (x, p, x), a+(p)");  // no cycles in chain
  ASSERT_TRUE(never.ok());
  EXPECT_FALSE(never.value());
}

TEST(ResultCursor, DefaultConstructedIsExhausted) {
  ResultCursor cursor;
  EXPECT_FALSE(cursor.Next());
  EXPECT_FALSE(cursor.exists());
  EXPECT_TRUE(cursor.status().ok());
}

TEST(Database, ReRegisteringRelationDropsStaleState) {
  Database db(ChainGraph(4));
  // p is forced to length 1 and q to length 2, so equal-length is
  // unsatisfiable; after overriding 'el' with the universal relation the
  // SAME text must re-resolve (plan cache AND relation memoization) and
  // become satisfiable.
  const std::string text =
      R"(Ans() <- ("v0", p, "v1"), ("v0", q, "v2"), el(p, q))";
  auto before = db.Exists(text);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_FALSE(before.value());
  db.RegisterRelation(
      "el", std::make_shared<RegularRelation>(UniversalRelation(1, 2)));
  auto after = db.Exists(text);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(after.value());
  EXPECT_EQ(db.plan_cache_misses(), 2u);  // both runs compiled fresh
}

TEST(ResultCursor, PathAnswersStreamed) {
  Database db(AdvisorGraph());
  auto prepared = db.Prepare(R"(Ans(y, p) <- ("ann", p, y), 'advisor'+(p))");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto cursor = prepared.value().Execute();
  ASSERT_TRUE(cursor.ok());
  int rows = 0;
  while (cursor.value().Next()) {
    ASSERT_NE(cursor.value().path_answers(), nullptr);
    EXPECT_FALSE(cursor.value().path_answers()->IsEmpty());
    ++rows;
  }
  EXPECT_EQ(rows, 2);
}

TEST(Database, PlanCacheHits) {
  Database db(AdvisorGraph());
  const std::string text = R"(Ans(y) <- ("ann", p, y), 'advisor'+(p))";
  ASSERT_TRUE(db.Prepare(text).ok());
  EXPECT_EQ(db.plan_cache_misses(), 1u);
  EXPECT_EQ(db.plan_cache_hits(), 0u);

  ASSERT_TRUE(db.Prepare(text).ok());
  EXPECT_EQ(db.plan_cache_misses(), 1u);
  EXPECT_EQ(db.plan_cache_hits(), 1u);

  // One-shot Execute goes through the same cache.
  ASSERT_TRUE(db.Execute(text).ok());
  EXPECT_EQ(db.plan_cache_hits(), 2u);
  EXPECT_EQ(db.plan_cache_size(), 1u);
}

TEST(Database, PlanCacheEviction) {
  DatabaseOptions options;
  options.plan_cache_capacity = 2;
  Database db(AdvisorGraph(), options);
  const std::string a = "Ans(x) <- (x, p, y), 'advisor'(p)";
  const std::string b = "Ans(x) <- (x, p, y), 'advisor'+(p)";
  const std::string c = "Ans(x) <- (x, p, y), 'coauthor'(p)";
  ASSERT_TRUE(db.Prepare(a).ok());
  ASSERT_TRUE(db.Prepare(b).ok());
  ASSERT_TRUE(db.Prepare(c).ok());  // evicts a (LRU)
  EXPECT_EQ(db.plan_cache_size(), 2u);

  ASSERT_TRUE(db.Prepare(b).ok());  // still cached
  EXPECT_EQ(db.plan_cache_hits(), 1u);
  ASSERT_TRUE(db.Prepare(a).ok());  // recompiled
  EXPECT_EQ(db.plan_cache_misses(), 4u);
}

TEST(Database, CustomRelationsAndCountingEngine) {
  // The facade routes linear-atom queries to the counting engine and
  // supports per-session relation registration.
  Database db(ChainGraph(6));
  db.RegisterRelation("same_len", std::make_shared<RegularRelation>(
                                         EqualLengthRelation(1)));
  auto counting =
      db.Execute(R"(Ans() <- ("v0", p, "v3"), len(p) >= 3, len(p) <= 3)");
  ASSERT_TRUE(counting.ok()) << counting.status().ToString();
  EXPECT_TRUE(counting.value().AsBool());
  EXPECT_EQ(counting.value().stats().engine, "counting");

  auto prepared =
      db.Prepare("Ans(x, y) <- (x, p, z), (z, q, y), same_len(p, q)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
}

TEST(Database, StaticallyEmptyPlanSkipsEngine) {
  Database db(ChainGraph(4));
  // {a} ∩ {aa} is empty: the optimizer proves it statically.
  auto prepared = db.Prepare("Ans(x, y) <- (x, p, y), a(p), aa(p)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_TRUE(prepared.value().optimizer_report().proven_empty);
  auto result = prepared.value().ExecuteAll();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().AsBool());
  EXPECT_EQ(result.value().stats().engine, "static-empty");
}

TEST(PreparedQuery, ExplainReportsPlanAndEstimates) {
  Database db(AdvisorGraph());
  auto prepared = db.Prepare(
      "Ans(x, u) <- (x, p, z), (z, q, y), (u, r, v), eq(p, q), "
      "'advisor'*(r)");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  Explanation explanation = prepared.value().Explain();
  EXPECT_EQ(explanation.engine, prepared.value().engine());
  EXPECT_EQ(explanation.engine_name, "product");
  ASSERT_NE(explanation.plan, nullptr);
  EXPECT_TRUE(explanation.plan->costed);
  ASSERT_EQ(explanation.plan->components.size(), 2u);
  for (const PlannedComponent& pc : explanation.plan->components) {
    EXPECT_GE(pc.est_rows, 0.0);
  }
  std::string text = explanation.ToString();
  EXPECT_NE(text.find("engine: product"), std::string::npos);
  EXPECT_NE(text.find("est_rows"), std::string::npos);
  EXPECT_NE(text.find("analysis:"), std::string::npos);
}

TEST(PreparedQuery, PhysicalPlanCachedAndRecostedOnIndexInvalidation) {
  Database db(AdvisorGraph());
  auto prepared = db.Prepare("Ans(x, y) <- (x, p, z), (z, q, y), eq(p, q)");
  ASSERT_TRUE(prepared.ok());

  PhysicalPlanPtr first = prepared.value().plan();
  PhysicalPlanPtr again = prepared.value().plan();
  EXPECT_EQ(first.get(), again.get());  // cached per query text

  // A second handle for the same text shares the costed plan.
  auto sibling = db.Prepare("Ans(x, y) <- (x, p, z), (z, q, y), eq(p, q)");
  ASSERT_TRUE(sibling.ok());
  EXPECT_EQ(sibling.value().plan().get(), first.get());

  // Graph mutation invalidates the index; the plan must be re-costed.
  // (mutable_graph clears the plan cache, but the outstanding handle keeps
  // its CompiledPlan — exactly the path the weak_ptr re-cost covers.)
  db.mutable_graph().AddEdge(0, "advisor", 3);
  PhysicalPlanPtr recosted = prepared.value().plan();
  EXPECT_NE(recosted.get(), first.get());
  EXPECT_TRUE(recosted->costed);
}

TEST(ResultCursor, PerOperatorStatsExposed) {
  Database db(AdvisorGraph());
  auto prepared = db.Prepare("Ans(x, y) <- (x, p, z), (z, q, y), eq(p, q)");
  ASSERT_TRUE(prepared.ok());
  auto cursor = prepared.value().Execute();
  ASSERT_TRUE(cursor.ok());
  while (cursor.value().Next()) {
  }
  ASSERT_TRUE(cursor.value().status().ok());
  ASSERT_FALSE(cursor.value().stats().operators.empty());
  uint64_t total_rows_out = 0;
  for (const OperatorStats& op : cursor.value().stats().operators) {
    EXPECT_FALSE(op.op.empty());
    total_rows_out += op.rows_out;
  }
  EXPECT_GT(total_rows_out, 0u);
}

}  // namespace
}  // namespace ecrpq
