// Planner correctness: the cost-based conjunct planner (core/planner.h)
// and the operator layer it drives (core/ops.h) must preserve reference
// semantics under every join order, and its cardinality estimates must be
// monotone in the index's label statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/eval_bruteforce.h"
#include "core/eval_product.h"
#include "core/evaluator.h"
#include "core/ops.h"
#include "core/planner.h"
#include "graph/generators.h"
#include "graph/index.h"
#include "query/parser.h"
#include "util/random.h"

namespace ecrpq {
namespace {

// Layered DAGs keep every path short, so brute force with a generous
// bound is exact (see property_test.cc for the same technique).
GraphDb SmallDag(uint64_t seed) {
  Rng rng(seed);
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  return LayeredGraph(alphabet, 4, 2, 2, &rng);
}

// ---- random multi-component query generation ------------------------------

// One component is either a single unary-language atom (a ReachabilityScan
// leaf) or an eq-synchronized pair of atoms (a ProductExpand leaf). Node
// variables are drawn from a small shared pool, so components frequently
// share variables — exercising the HashJoin and sideways-seeding paths.
// Total path atoms are capped at 3: the brute-force reference enumerates
// |paths|^atoms assignments, so the cap keeps the reference exact AND fast.
std::string RandomQuery(Rng* rng, int* num_components) {
  static const char* kLanguages[] = {"a*", "b*", "a+", "ab", "(ab)*",
                                     "(a|b)*", "a(a|b)*"};
  // Component shapes (atom counts): total atoms <= 3, >= 2 components.
  static const std::vector<std::vector<int>> kShapes = {
      {1, 1}, {2, 1}, {1, 2}, {1, 1, 1}};
  const std::vector<int>& shape = kShapes[rng->Next() % kShapes.size()];
  *num_components = static_cast<int>(shape.size());
  auto var = [&](int i) { return "x" + std::to_string(i % 4); };
  auto lang = [&]() { return kLanguages[rng->Next() % 7]; };

  std::string body;
  std::set<std::string> used_vars;
  int next_var = 0;
  int next_path = 0;
  for (size_t c = 0; c < shape.size(); ++c) {
    if (c > 0) body += ", ";
    // Bias toward fresh variables but reuse ~1 in 3 draws: reuse creates
    // cross-component joins and seeding opportunities.
    auto pick_var = [&]() {
      std::string v;
      if (!used_vars.empty() && rng->Next() % 3 == 0) {
        auto it = used_vars.begin();
        std::advance(it, rng->Next() % used_vars.size());
        v = *it;
      } else {
        v = var(next_var++);
      }
      used_vars.insert(v);
      return v;
    };
    if (shape[c] == 1) {
      // Single-atom component.
      std::string p = "p" + std::to_string(next_path++);
      body += "(" + pick_var() + ", " + p + ", " + pick_var() + "), ";
      body += std::string(lang()) + "(" + p + ")";
    } else {
      // eq-synchronized two-atom component.
      std::string p = "p" + std::to_string(next_path++);
      std::string q = "p" + std::to_string(next_path++);
      body += "(" + pick_var() + ", " + p + ", " + pick_var() + "), ";
      body += "(" + pick_var() + ", " + q + ", " + pick_var() + "), ";
      body += "eq(" + p + ", " + q + ")";
    }
  }
  // Head: up to two of the used variables (deterministic pick).
  std::vector<std::string> vars(used_vars.begin(), used_vars.end());
  std::string head;
  const size_t head_arity = std::min<size_t>(vars.size(), 2);
  for (size_t i = 0; i < head_arity; ++i) {
    if (i > 0) head += ", ";
    head += vars[(rng->Next() % vars.size())];
    // duplicates in the head are fine (projection repeats the column)
  }
  return "Ans(" + head + ") <- " + body;
}

// Recomputes the order-dependent plan annotations (shared variables and
// the sideways flag) after an externally imposed component permutation.
void RecomputeSharing(PhysicalPlan* plan, bool randomize_sideways,
                      Rng* rng) {
  std::set<int> bound;
  for (PlannedComponent& pc : plan->components) {
    pc.shared_vars.clear();
    for (int v : pc.vars) {
      if (bound.count(v)) pc.shared_vars.push_back(v);
    }
    pc.sideways = !pc.shared_vars.empty() &&
                  (!randomize_sideways || rng->Next() % 2 == 0);
    for (int v : pc.vars) bound.insert(v);
  }
}

std::vector<std::vector<NodeId>> RunWithPlan(const GraphDb& g,
                                             const Query& query,
                                             const EvalOptions& options,
                                             const PhysicalPlan* plan) {
  auto result = MaterializeResult([&](ResultSink& sink, EvalStats& stats) {
    return EvaluateProduct(g, query, options, sink, stats, nullptr, nullptr,
                           plan);
  });
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result.value().tuples()
                     : std::vector<std::vector<NodeId>>{};
}

// 100 random multi-component queries: the planned product engine (default
// plan AND randomly permuted join orders with randomized seeding flags)
// must produce exactly the brute-force tuple set.
TEST(PlannerProperty, RandomQueriesMatchBruteForceUnderAnyJoinOrder) {
  int ran = 0;
  for (uint64_t seed = 0; ran < 100; ++seed) {
    Rng rng(seed * 7919 + 13);
    GraphDb g = SmallDag(seed % 10);
    int components = 0;
    std::string text = RandomQuery(&rng, &components);
    auto query = ParseQuery(text, g.alphabet());
    ASSERT_TRUE(query.ok()) << text << ": " << query.status().ToString();

    EvalOptions options;
    options.build_path_answers = false;
    options.bruteforce_max_len = 4;  // layered graph: max path length 3
    options.max_configs = 2000000;

    auto brute = EvaluateBruteForce(g, query.value(), options);
    ASSERT_TRUE(brute.ok()) << text;
    ++ran;
    SCOPED_TRACE(text + " (seed " + std::to_string(seed) + ")");

    // Default planned execution.
    auto planned = EvaluateProduct(g, query.value(), options);
    ASSERT_TRUE(planned.ok()) << planned.status().ToString();
    EXPECT_EQ(brute.value().tuples(), planned.value().tuples());

    // The join-pipeline determinism contract: tuples AND merged engine
    // counters are byte-identical at every worker-lane count, because
    // every pipeline choice (streamed vs folded join, partition counts,
    // morsel boundaries) is a pure function of the plan and input sizes —
    // never the lane count. The explicit serial run is the reference;
    // OperatorStats::threads legitimately reports the lane count and is
    // the only field allowed to differ.
    EvalOptions serial_opts = options;
    serial_opts.num_threads = 1;
    auto serial = EvaluateProduct(g, query.value(), serial_opts);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    EXPECT_EQ(brute.value().tuples(), serial.value().tuples());
    const EvalStats& ref = serial.value().stats();
    for (int threads : {2, 4, 8}) {
      EvalOptions thread_opts = options;
      thread_opts.num_threads = threads;
      auto run = EvaluateProduct(g, query.value(), thread_opts);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_EQ(serial.value().tuples(), run.value().tuples())
          << "threads=" << threads;
      const EvalStats& s = run.value().stats();
      EXPECT_EQ(s.configs_explored, ref.configs_explored)
          << "threads=" << threads;
      EXPECT_EQ(s.arcs_explored, ref.arcs_explored)
          << "threads=" << threads;
      EXPECT_EQ(s.start_assignments, ref.start_assignments)
          << "threads=" << threads;
      EXPECT_EQ(s.join_tuples, ref.join_tuples) << "threads=" << threads;
      ASSERT_EQ(s.operators.size(), ref.operators.size())
          << "threads=" << threads;
      for (size_t k = 0; k < s.operators.size(); ++k) {
        const OperatorStats& a = s.operators[k];
        const OperatorStats& b = ref.operators[k];
        SCOPED_TRACE("operator " + std::to_string(k) + " (" + b.op +
                     ") threads=" + std::to_string(threads));
        EXPECT_EQ(a.op, b.op);
        EXPECT_EQ(a.detail, b.detail);
        EXPECT_EQ(a.rows_in, b.rows_in);
        EXPECT_EQ(a.rows_out, b.rows_out);
        EXPECT_EQ(a.build_rows, b.build_rows);
        EXPECT_EQ(a.probe_rows, b.probe_rows);
      }
    }

    // Randomly permuted join order with randomized seeding decisions.
    auto compiled = CompileQuery(query.value(), g.alphabet().size());
    ASSERT_TRUE(compiled.ok());
    GraphIndexPtr index = GraphIndex::Build(g);
    EvalOptions planning = options;
    planning.engine = Engine::kProduct;
    PhysicalPlan plan = PlanQuery(query.value(), *compiled.value(),
                                  index.get(), planning);
    for (size_t i = plan.components.size(); i > 1; --i) {
      std::swap(plan.components[i - 1],
                plan.components[rng.Next() % i]);
    }
    RecomputeSharing(&plan, /*randomize_sideways=*/true, &rng);
    EXPECT_EQ(brute.value().tuples(),
              RunWithPlan(g, query.value(), options, &plan));
  }
}

// Forced execution modes agree with brute force too: the monolithic
// product (decomposition forbidden) and the legacy unplanned path.
TEST(PlannerProperty, MonolithicAndLegacyPathsMatchBruteForce) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed * 104729 + 7);
    GraphDb g = SmallDag(seed % 6);
    int components = 0;
    std::string text = RandomQuery(&rng, &components);
    auto query = ParseQuery(text, g.alphabet());
    ASSERT_TRUE(query.ok()) << text;
    SCOPED_TRACE(text);

    EvalOptions options;
    options.build_path_answers = false;
    options.bruteforce_max_len = 4;
    options.max_configs = 2000000;
    auto brute = EvaluateBruteForce(g, query.value(), options);
    ASSERT_TRUE(brute.ok());

    EvalOptions monolithic = options;
    monolithic.use_components = false;
    auto mono = EvaluateProduct(g, query.value(), monolithic);
    ASSERT_TRUE(mono.ok()) << mono.status().ToString();
    EXPECT_EQ(brute.value().tuples(), mono.value().tuples());

    EvalOptions legacy = options;
    legacy.use_planner = false;
    auto unplanned = EvaluateProduct(g, query.value(), legacy);
    ASSERT_TRUE(unplanned.ok());
    EXPECT_EQ(brute.value().tuples(), unplanned.value().tuples());
  }
}

// Sideways seeding corner cases: shared start variables, shared end-only
// variables, constants anchoring one component.
TEST(PlannerProperty, SidewaysSeedingCornerShapes) {
  const char* kShapes[] = {
      // Shared start var across two scan components.
      "Ans(x, w) <- (x, p, y), (x, q, w), a*(p), b*(q)",
      // Shared end-only var.
      "Ans(y, z) <- (y, p, x), (z, q, x), a+(p), (a|b)*(q)",
      // Start var of one component is the end var of another.
      "Ans(x, z) <- (x, p, y), (y, q, z), ab(p), b*(q)",
      // A ProductExpand component seeded by a scan component.
      "Ans(x, u) <- (x, p, y), (x, q, z), (u, r, z), eq(p, q), a*(r)",
      // Loop atom plus independent component.
      "Ans(x, u) <- (x, p, x), (u, q, v), (a|b)*(p), a*(q)",
  };
  for (uint64_t seed = 0; seed < 8; ++seed) {
    GraphDb g = SmallDag(seed);
    for (const char* text : kShapes) {
      SCOPED_TRACE(std::string(text) + " seed " + std::to_string(seed));
      auto query = ParseQuery(text, g.alphabet());
      ASSERT_TRUE(query.ok());
      EvalOptions options;
      options.build_path_answers = false;
      options.bruteforce_max_len = 4;
      auto brute = EvaluateBruteForce(g, query.value(), options);
      ASSERT_TRUE(brute.ok());
      auto planned = EvaluateProduct(g, query.value(), options);
      ASSERT_TRUE(planned.ok()) << planned.status().ToString();
      EXPECT_EQ(brute.value().tuples(), planned.value().tuples());
    }
  }
}

// ---- cardinality estimation ------------------------------------------------

// Adding edges with a label must never lower the estimate of a component
// whose languages read that label.
TEST(PlannerEstimates, MonotoneInLabelCounts) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  const char* kTexts[] = {
      "Ans(x, y) <- (x, p, y), a+(p)",
      "Ans(x, y) <- (x, p, y), (a|b)*(p)",
      "Ans() <- (x, p, z), (z, q, y), eq(p, q)",
  };
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    for (const char* text : kTexts) {
      SCOPED_TRACE(text);
      Rng rng(seed);
      GraphDb grown = RandomGraph(alphabet, 12, 20, &rng);
      auto query = ParseQuery(text, grown.alphabet());
      ASSERT_TRUE(query.ok());
      auto compiled = CompileQuery(query.value(), grown.alphabet().size());
      ASSERT_TRUE(compiled.ok());
      std::vector<int> atoms(query.value().path_atoms().size());
      for (size_t i = 0; i < atoms.size(); ++i) atoms[i] = i;
      double prev = -1.0;
      for (int round = 0; round < 4; ++round) {
        auto index = GraphIndex::Build(grown);
        double est = EstimateComponentCardinality(query.value(),
                                                  *compiled.value(), atoms,
                                                  *index);
        if (prev >= 0.0) {
          EXPECT_GE(est, prev) << "round " << round;
        }
        prev = est;
        // Grow only label "a": estimates must not decrease.
        for (int e = 0; e < 6; ++e) {
          grown.AddEdge(static_cast<NodeId>((round * 6 + e) % 12), "a",
                        static_cast<NodeId>((round + e * 5 + 1) % 12));
        }
      }
    }
  }
}

// A selective label (few edges) must estimate below a pervasive one on
// the same graph — the ordering decision the planner exists to make.
TEST(PlannerEstimates, SelectiveLabelRanksCheaper) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g;
  for (int i = 0; i < 20; ++i) g.AddNode("n" + std::to_string(i));
  Rng rng(3);
  for (int e = 0; e < 60; ++e) {
    g.AddEdge(static_cast<NodeId>(rng.Next() % 20), "a",
              static_cast<NodeId>(rng.Next() % 20));
  }
  g.AddEdge(0, "b", 1);  // label b: a single edge
  auto index = GraphIndex::Build(g);

  auto estimate_for = [&](const char* text) {
    auto query = ParseQuery(text, g.alphabet());
    EXPECT_TRUE(query.ok());
    auto compiled = CompileQuery(query.value(), g.alphabet().size());
    EXPECT_TRUE(compiled.ok());
    return EstimateComponentCardinality(query.value(), *compiled.value(),
                                        {0}, *index);
  };
  EXPECT_LT(estimate_for("Ans(x, y) <- (x, p, y), b+(p)"),
            estimate_for("Ans(x, y) <- (x, p, y), a+(p)"));
}

// The planner puts the cheapest component first and marks later
// components that share variables for sideways seeding.
TEST(PlannerPlans, OrdersCheapestFirstAndMarksSeeding) {
  auto alphabet = Alphabet::FromLabels({"a", "b"});
  GraphDb g;
  for (int i = 0; i < 20; ++i) g.AddNode("n" + std::to_string(i));
  Rng rng(5);
  for (int e = 0; e < 80; ++e) {
    g.AddEdge(static_cast<NodeId>(rng.Next() % 20), "a",
              static_cast<NodeId>(rng.Next() % 20));
  }
  g.AddEdge(2, "b", 3);
  auto index = GraphIndex::Build(g);

  // Atom 0 reads the pervasive label, atom 1 the selective one; both
  // start at x.
  auto query = ParseQuery("Ans(y, w) <- (x, p, y), (x, q, w), a+(p), b+(q)",
                          g.alphabet());
  ASSERT_TRUE(query.ok());
  auto compiled = CompileQuery(query.value(), g.alphabet().size());
  ASSERT_TRUE(compiled.ok());
  EvalOptions options;
  options.engine = Engine::kProduct;
  options.use_planner = true;  // the subject under test, even in the
                               // ECRPQ_NO_PLANNER ablation run
  PhysicalPlan plan =
      PlanQuery(query.value(), *compiled.value(), index.get(), options);
  ASSERT_EQ(plan.components.size(), 2u);
  EXPECT_TRUE(plan.costed);
  // The selective (b) component, atom index 1, must run first.
  EXPECT_EQ(plan.components[0].atom_indices, std::vector<int>{1});
  EXPECT_LT(plan.components[0].est_rows, plan.components[1].est_rows);
  // The second component shares start var x and must be marked sideways.
  EXPECT_TRUE(plan.components[1].sideways);
  ASSERT_EQ(plan.components[1].shared_vars.size(), 1u);
  const std::string& shared_name =
      query.value().node_variables()[plan.components[1].shared_vars[0]];
  EXPECT_EQ(shared_name, "x");
  // Describe renders the operator tree.
  std::string text = plan.Describe(query.value());
  EXPECT_NE(text.find("ReachabilityScan"), std::string::npos);
  EXPECT_NE(text.find("HashJoin"), std::string::npos);
  EXPECT_NE(text.find("est_rows"), std::string::npos);
}

// ---- engine-selection regression (compile-once fix) ------------------------

// Evaluator::Evaluate must select the same engine whether or not a
// CompiledQuery is supplied (it used to re-run Analyze in the unsupplied
// path; both paths now share one compiled analysis).
TEST(EvaluatorDispatch, EngineSelectionIdenticalWithAndWithoutCompiled) {
  GraphDb g = SmallDag(1);
  const char* kTexts[] = {
      "Ans(x, y) <- (x, p, y), a*(p)",                      // crpq
      "Ans(x, y) <- (x, p, z), (z, q, y), eq(p, q)",        // product
      "Ans() <- (x, p, y), len(p) >= 1",                    // counting
      "Ans(x, w) <- (x, p, y), (z, p, w), a*(p)",           // repetition
  };
  for (const char* text : kTexts) {
    SCOPED_TRACE(text);
    auto query = ParseQuery(text, g.alphabet());
    ASSERT_TRUE(query.ok());
    Evaluator evaluator(&g);

    MaterializingSink sink_without;
    EvalStats stats_without;
    ASSERT_TRUE(
        evaluator.Evaluate(query.value(), sink_without, stats_without).ok());

    auto compiled = CompileQuery(query.value(), g.alphabet().size());
    ASSERT_TRUE(compiled.ok());
    MaterializingSink sink_with;
    EvalStats stats_with;
    ASSERT_TRUE(evaluator
                    .Evaluate(query.value(), sink_with, stats_with,
                              compiled.value())
                    .ok());

    EXPECT_EQ(stats_without.engine, stats_with.engine);
    sink_without.SortRows();
    sink_with.SortRows();
    EXPECT_EQ(sink_without.tuples, sink_with.tuples);
  }
}

// ---- binding-table operators ------------------------------------------------

TEST(BindingTableOps, HashJoinOnSharedVarsAndCross) {
  BindingTable left;
  left.vars = {0, 1};
  left.rows = {{10, 20}, {11, 21}, {12, 22}};
  BindingTable right;
  right.vars = {1, 2};
  right.rows = {{20, 30}, {20, 31}, {21, 32}, {99, 33}};
  EvalStats stats;
  BindingTable joined = HashJoinOp(left, right, stats);
  EXPECT_EQ(joined.vars, (std::vector<int>{0, 1, 2}));
  std::set<std::vector<NodeId>> rows(joined.rows.begin(), joined.rows.end());
  EXPECT_EQ(rows, (std::set<std::vector<NodeId>>{
                      {10, 20, 30}, {10, 20, 31}, {11, 21, 32}}));
  ASSERT_EQ(stats.operators.size(), 1u);
  EXPECT_EQ(stats.operators[0].op, "HashJoin");
  EXPECT_EQ(stats.operators[0].rows_out, 3u);

  // No shared vars: Cartesian product.
  BindingTable disjoint;
  disjoint.vars = {5};
  disjoint.rows = {{1}, {2}};
  BindingTable cross = HashJoinOp(left, disjoint, stats);
  EXPECT_EQ(cross.rows.size(), 6u);
}

TEST(BindingTableOps, SemiJoinFilterAndProjectDistinct) {
  BindingTable target;
  target.vars = {0, 1};
  target.rows = {{1, 5}, {2, 6}, {3, 7}};
  BindingTable filter;
  filter.vars = {1};
  filter.rows = {{5}, {7}};
  EvalStats stats;
  EXPECT_TRUE(SemiJoinFilterOp(&target, filter, stats));
  EXPECT_EQ(target.rows, (std::vector<std::vector<NodeId>>{{1, 5}, {3, 7}}));
  ASSERT_EQ(stats.operators.size(), 1u);
  EXPECT_EQ(stats.operators[0].op, "SemiJoinFilter");
  // Second application is a no-op and records nothing.
  EXPECT_FALSE(SemiJoinFilterOp(&target, filter, stats));
  EXPECT_EQ(stats.operators.size(), 1u);
  // No shared variables: untouched.
  BindingTable unrelated;
  unrelated.vars = {9};
  unrelated.rows = {{1}};
  EXPECT_FALSE(SemiJoinFilterOp(&target, unrelated, stats));
  EXPECT_EQ(target.rows.size(), 2u);

  BindingTable projected = ProjectDistinct(target, {1});
  EXPECT_EQ(projected.vars, (std::vector<int>{1}));
  EXPECT_EQ(projected.rows,
            (std::vector<std::vector<NodeId>>{{5}, {7}}));
}

// Non-product engines choose their own execution order, so their plans
// must not claim cost ordering or sideways seeding (Explain honesty).
TEST(PlannerPlans, NonProductEnginesKeepAtomOrderWithoutSeeding) {
  GraphDb g = SmallDag(4);
  auto query = ParseQuery(
      "Ans(x, z) <- (x, p, y), (y, q, z), (ab)*(p), b*(q)", g.alphabet());
  ASSERT_TRUE(query.ok());
  auto compiled = CompileQuery(query.value(), g.alphabet().size());
  ASSERT_TRUE(compiled.ok());
  auto index = GraphIndex::Build(g);
  EvalOptions options;
  options.use_planner = true;
  PhysicalPlan plan =
      PlanQuery(query.value(), *compiled.value(), index.get(), options);
  EXPECT_EQ(plan.engine, Engine::kCrpq);
  ASSERT_EQ(plan.components.size(), 2u);
  // Atom order preserved, no seeding claims.
  EXPECT_EQ(plan.components[0].atom_indices, std::vector<int>{0});
  EXPECT_EQ(plan.components[1].atom_indices, std::vector<int>{1});
  EXPECT_FALSE(plan.components[0].sideways);
  EXPECT_FALSE(plan.components[1].sideways);
}

// Per-operator counters are populated by the operator layer.
TEST(OperatorStatsTest, PopulatedByProductAndCrpq) {
  GraphDb g = SmallDag(2);
  EvalOptions options;
  options.build_path_answers = false;

  auto product_query = ParseQuery(
      "Ans(x, u) <- (x, p, z), (z, q, y), (u, r, v), eq(p, q), a*(r)",
      g.alphabet());
  ASSERT_TRUE(product_query.ok());
  MaterializingSink sink;
  EvalStats stats;
  ASSERT_TRUE(EvaluateProduct(g, product_query.value(), options, sink, stats)
                  .ok());
  ASSERT_GE(stats.operators.size(), 2u);
  bool saw_expand = false, saw_join = false;
  for (const OperatorStats& op : stats.operators) {
    if (op.op == "ProductExpand") saw_expand = true;
    if (op.op == "HashJoin") saw_join = true;
    EXPECT_FALSE(op.Describe().empty());
  }
  EXPECT_TRUE(saw_expand);
  EXPECT_TRUE(saw_join);

  auto crpq_query =
      ParseQuery("Ans(x, z) <- (x, p, y), (y, q, z), a+(p), b*(q)",
                 g.alphabet());
  ASSERT_TRUE(crpq_query.ok());
  Evaluator evaluator(&g, options);
  MaterializingSink crpq_sink;
  EvalStats crpq_stats;
  ASSERT_TRUE(
      evaluator.Evaluate(crpq_query.value(), crpq_sink, crpq_stats).ok());
  EXPECT_EQ(crpq_stats.engine, "crpq");
  bool saw_scan = false;
  for (const OperatorStats& op : crpq_stats.operators) {
    if (op.op == "ReachabilityScan") saw_scan = true;
  }
  EXPECT_TRUE(saw_scan);
}

}  // namespace
}  // namespace ecrpq
