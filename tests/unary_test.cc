// Chrobak/Sawa-style decomposition of accepted lengths into progressions.

#include <gtest/gtest.h>

#include "automata/operations.h"
#include "automata/regex.h"
#include "automata/unary.h"
#include "util/random.h"

namespace ecrpq {
namespace {

// Reference: accepted lengths by explicit DP.
std::vector<bool> LengthsByDp(const Nfa& nfa_in, int up_to) {
  Nfa nfa = RemoveEpsilons(nfa_in);
  std::vector<bool> current(nfa.num_states(), false);
  for (StateId s : nfa.InitialStates()) current[s] = true;
  std::vector<bool> out(up_to + 1, false);
  for (int l = 0; l <= up_to; ++l) {
    for (StateId s = 0; s < nfa.num_states(); ++s) {
      if (current[s] && nfa.IsAccepting(s)) out[l] = true;
    }
    std::vector<bool> next(nfa.num_states(), false);
    for (StateId s = 0; s < nfa.num_states(); ++s) {
      if (!current[s]) continue;
      for (const Nfa::Arc& arc : nfa.ArcsFrom(s)) next[arc.second] = true;
    }
    current = std::move(next);
  }
  return out;
}

void ExpectDecompositionMatches(const Nfa& nfa, int up_to) {
  SemilinearSet1D set = AcceptedLengths(nfa);
  std::vector<bool> reference = LengthsByDp(nfa, up_to);
  for (int l = 0; l <= up_to; ++l) {
    EXPECT_EQ(set.Contains(l), reference[l])
        << "length " << l << " in " << set.ToString();
  }
}

Nfa FromRegex(std::string_view text) {
  Alphabet alphabet;
  alphabet.Intern("a");
  alphabet.Intern("b");
  auto re = ParseRegexStrict(text, alphabet);
  EXPECT_TRUE(re.ok());
  return re.value()->ToNfa(2);
}

TEST(AcceptedLengths, SimpleSets) {
  ExpectDecompositionMatches(FromRegex("a*"), 40);
  ExpectDecompositionMatches(FromRegex("aaa(aa)*"), 60);
  ExpectDecompositionMatches(FromRegex("a|aaaa"), 40);
  ExpectDecompositionMatches(FromRegex("\\0"), 10);
  ExpectDecompositionMatches(FromRegex("\\e"), 10);
}

TEST(AcceptedLengths, MixedPeriods) {
  // Lengths {2} ∪ {3 + 5k}: two cycles of different sizes.
  ExpectDecompositionMatches(FromRegex("aa|aaa(aaaaa)*"), 80);
  // Union of residues mod 2 and mod 3.
  ExpectDecompositionMatches(FromRegex("(aa)*|(aaa)*"), 80);
}

TEST(AcceptedLengths, LabelsIgnored) {
  // Lengths of (ab)* are the even numbers, labels don't matter.
  SemilinearSet1D set = AcceptedLengths(FromRegex("(ab)*"));
  EXPECT_TRUE(set.Contains(0));
  EXPECT_FALSE(set.Contains(1));
  EXPECT_TRUE(set.Contains(10));
  EXPECT_TRUE(set.IsInfinite());
}

TEST(AcceptedLengths, EmptyLanguage) {
  SemilinearSet1D set = AcceptedLengths(EmptyNfa(2));
  EXPECT_TRUE(set.IsEmpty());
  EXPECT_EQ(set.Min(), std::nullopt);
}

TEST(SemilinearSet, Queries) {
  SemilinearSet1D set({{3, 0}, {5, 4}});
  EXPECT_TRUE(set.Contains(3));
  EXPECT_TRUE(set.Contains(5));
  EXPECT_TRUE(set.Contains(13));
  EXPECT_FALSE(set.Contains(4));
  EXPECT_EQ(set.Min(), 3);
  EXPECT_EQ(set.MinAtLeast(6), 9);
  EXPECT_TRUE(set.IsInfinite());
}

TEST(SemilinearSet, NormalizeSubsumption) {
  SemilinearSet1D set({{5, 4}, {9, 4}, {13, 8}, {7, 0}});
  set.Normalize();
  // 9+4N and 13+8N are subsumed by 5+4N; {7} is not.
  EXPECT_EQ(set.progressions().size(), 2u);
  EXPECT_TRUE(set.Contains(7));
  EXPECT_TRUE(set.Contains(13));
  EXPECT_FALSE(set.Contains(8));
}

// Property: random unary NFAs decompose exactly.
class RandomUnaryTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomUnaryTest, MatchesDp) {
  Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.Below(6));
  Nfa nfa(1);
  nfa.AddStates(n);
  for (int e = 0; e < 2 * n; ++e) {
    nfa.AddTransition(static_cast<StateId>(rng.Below(n)), 0,
                      static_cast<StateId>(rng.Below(n)));
  }
  nfa.SetInitial(static_cast<StateId>(rng.Below(n)));
  nfa.SetAccepting(static_cast<StateId>(rng.Below(n)));
  if (rng.Chance(0.5)) {
    nfa.SetAccepting(static_cast<StateId>(rng.Below(n)));
  }
  ExpectDecompositionMatches(nfa, 3 * n * n + 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomUnaryTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace ecrpq
